"""Legacy shim so `pip install -e . --no-use-pep517` works offline
(the sandbox lacks the `wheel` package needed for PEP 517 editables)."""

from setuptools import setup

setup()
