"""Command-line interface: regenerate any of the paper's artifacts.

Usage (after ``pip install -e .``)::

    python -m repro table3              # the headline evaluation
    python -m repro table2              # the attack taxonomy
    python -m repro fig1 --vendor TP-LINK
    python -m repro fig2 | fig3 | fig4
    python -m repro attack "E-Link Smart" A4-1
    python -m repro audit D-LINK        # Section VII lint for one vendor
    python -m repro entropy             # device-ID enumerability table
    python -m repro sweep               # design-space sweep
    python -m repro secure              # attack the recommended designs
    python -m repro obs                 # traced fleet campaign run report
    python -m repro slo                 # SLO report: burn rates, latency
    python -m repro slo --chaos cloud-brownout   # score an outage window
    python -m repro campaign --workers 4 --households 400
    python -m repro campaign --workers 4 --pool --repeat 3   # warm-started
    python -m repro campaign --households 8 --chaos lossy-lan
    python -m repro chaos list                 # fault-plan catalog
    python -m repro chaos run cloud-restart --seconds 120
    python -m repro detect --vendor OZWI       # detector precision/recall
    python -m repro detect --attack A4 --chaos flaky-wan
    python -m repro snapshot save /tmp/cloud.json --vendor OZWI
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_table1(args: argparse.Namespace) -> str:
    from repro.core.notation import render_table_i

    return render_table_i()


def _cmd_table2(args: argparse.Namespace) -> str:
    from repro.analysis.surface import render_table_ii

    return render_table_ii()


def _cmd_table3(args: argparse.Namespace) -> str:
    from repro.analysis.evaluator import evaluate_all_vendors
    from repro.analysis.export import to_csv, to_json, to_markdown
    from repro.analysis.report import render_agreement, render_table_iii

    evaluations = evaluate_all_vendors(seed=args.seed)
    if args.format == "json":
        return to_json(evaluations)
    if args.format == "csv":
        return to_csv(evaluations)
    if args.format == "markdown":
        return to_markdown(evaluations)
    return render_table_iii(evaluations) + "\n\n" + render_agreement(evaluations)


def _cmd_fig1(args: argparse.Namespace) -> str:
    from repro.analysis.traces import trace_lifecycle
    from repro.vendors import vendor

    return trace_lifecycle(vendor(args.vendor), seed=args.seed)


def _cmd_fig2(args: argparse.Namespace) -> str:
    from repro.core.model import check_paper_properties, render_figure_2

    properties = check_paper_properties()
    checks = "\n".join(
        f"  {name:<36} {'OK' if ok else 'VIOLATED'}"
        for name, ok in properties.items()
    )
    return render_figure_2() + "\n\nmodel properties:\n" + checks


def _cmd_fig3(args: argparse.Namespace) -> str:
    from repro.analysis.traces import trace_device_auth

    return trace_device_auth(seed=args.seed)


def _cmd_fig4(args: argparse.Namespace) -> str:
    from repro.analysis.traces import trace_binding_creation

    return trace_binding_creation(seed=args.seed)


def _cmd_attack(args: argparse.Namespace) -> str:
    from repro.attacks.runner import run_attack
    from repro.vendors import vendor

    report = run_attack(vendor(args.vendor), args.attack_id, seed=args.seed)
    lines = [
        f"attack {report.attack_id} against {report.vendor}: {report.outcome.value}",
        f"  {report.reason}",
    ]
    for key, value in report.evidence.items():
        lines.append(f"  evidence {key}: {value}")
    return "\n".join(lines)


def _cmd_audit(args: argparse.Namespace) -> str:
    from repro.analysis.recommendations import render_findings
    from repro.vendors import vendor

    return render_findings(vendor(args.vendor))


def _cmd_entropy(args: argparse.Namespace) -> str:
    from repro.identity.device_ids import MacDeviceId, RandomDeviceId, SerialDeviceId
    from repro.identity.entropy import analyze, render_report

    schemes = [
        SerialDeviceId(digits=6),
        SerialDeviceId(digits=7),
        MacDeviceId("a4:77:33"),
        RandomDeviceId(hex_chars=32),
    ]
    return render_report([analyze(s) for s in schemes], rate=args.rate)


def _cmd_witness(args: argparse.Namespace) -> str:
    from repro.analysis.protocol_model import check_safety
    from repro.vendors import vendor

    return check_safety(vendor(args.vendor)).render()


def _cmd_fix(args: argparse.Namespace) -> str:
    from repro.analysis.advisor import advise, verify_advice
    from repro.vendors import vendor

    advice = advise(vendor(args.vendor))
    text = advice.render()
    if advice.fixed_design is not None and not advice.already_secure:
        verified = verify_advice(advice, seed=args.seed)
        text += f"\n  simulation re-check: {'pass' if verified else 'FAIL'}"
    return text


def _cmd_sweep(args: argparse.Namespace) -> str:
    from repro.analysis.design_space import sweep_design_space

    return sweep_design_space().render()


def _cmd_report(args: argparse.Namespace) -> str:
    from repro.analysis.full_report import render_full_report

    return render_full_report(seed=args.seed)


def _cmd_secure(args: argparse.Namespace) -> str:
    from repro.secure import verify_all_baselines

    return "\n\n".join(v.render() for v in verify_all_baselines(seed=args.seed))


def _cmd_obs(args: argparse.Namespace) -> str:
    from repro.obs import Observability, render_report, to_json
    from repro.vendors import vendor

    obs = Observability(trace_messages=not args.no_messages)
    design = vendor(args.vendor)
    if args.mode == "attacks":
        from repro.attacks.runner import run_all_attacks

        reports = run_all_attacks(design, seed=args.seed, observer=obs)
        summary = "\n".join(r.line() for r in reports.values())
        audit = None
    else:
        from repro.attacks.campaign import campaign_binding_dos, campaign_mass_unbind
        from repro.fleet import FleetDeployment

        fleet = FleetDeployment(
            design, households=args.households, seed=args.seed, observer=obs
        )
        if args.mode == "mass-unbind":
            fleet.setup_all()
            fleet.run(12.0)
            report = campaign_mass_unbind(fleet, max_probes=args.probes)
        else:
            report = campaign_binding_dos(fleet, max_probes=args.probes)
        summary = report.render()
        audit = fleet.cloud.audit
    if args.format == "json":
        return to_json(obs)
    text = render_report(obs) + "\n\n== run summary ==\n" + summary
    if audit is not None:
        consistent = obs.matches_audit(audit)
        text += (
            f"\n\nmetrics vs audit log: "
            f"{'consistent' if consistent else 'MISMATCH'} "
            f"({len(audit)} audit entries)"
        )
    return text


def _cmd_slo(args: argparse.Namespace) -> str:
    import json

    from repro.fleet import FleetDeployment
    from repro.obs import Observability
    from repro.obs.export import render_red
    from repro.obs.slo import SLOSpec, evaluate_slo
    from repro.vendors import vendor

    design = vendor(args.vendor)
    obs = Observability(trace_messages=False)
    fleet = FleetDeployment(
        design, households=args.households, seed=args.seed, observer=obs
    )
    plan = None
    if args.chaos is not None:
        from repro.chaos import ChaosSpec, apply_chaos
        from repro.chaos.faults import plan_from_name, plan_names

        if args.chaos not in plan_names():
            from repro.core.errors import ConfigurationError

            raise ConfigurationError(
                f"unknown fault plan {args.chaos!r}; see 'repro chaos list'"
            )
        apply_chaos(fleet, ChaosSpec(
            plan=args.chaos,
            intensity=args.intensity,
            resilience=not args.no_resilience,
        ))
        plan = plan_from_name(args.chaos, args.intensity)
    fleet.setup_all()
    fleet.run(args.seconds)
    spec = SLOSpec(objective=args.objective, latency_us=args.latency_us)
    report = evaluate_slo(
        obs.slo, spec,
        sketch=obs.red.combined_sketch(design.name),
        plan=plan,
    )
    if args.format == "json":
        payload = report.to_dict()
        payload["vendor"] = design.name
        payload["households"] = args.households
        payload["seconds"] = args.seconds
        payload["chaos"] = (
            {"plan": args.chaos, "intensity": args.intensity}
            if args.chaos is not None else None
        )
        payload["red"] = {
            "requests": obs.red.snapshot(),
            "pdp": obs.pdp_red.snapshot(),
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    header = (
        f"slo run: vendor={design.name} households={args.households} "
        f"seconds={args.seconds:g}"
        + (f" chaos={args.chaos} intensity={args.intensity:g}"
           if args.chaos is not None else " (calm)")
    )
    return "\n".join([
        header,
        report.render(),
        "",
        "== RED (rate / errors / duration) ==",
        render_red(obs),
    ])


def _cmd_campaign(args: argparse.Namespace) -> str:
    import json

    from repro.parallel import run_campaign
    from repro.vendors import vendor

    chaos = None
    if args.chaos is not None:
        from repro.chaos import ChaosSpec

        chaos = ChaosSpec(
            plan=args.chaos,
            intensity=args.intensity,
            resilience=not args.no_resilience,
        )
    campaign_kwargs = dict(
        campaign=args.mode,
        households=args.households,
        max_probes=args.probes,
        workers=args.workers,
        seed=args.seed,
        build=args.build,
        snapshot_max_spans=args.max_spans,
        chaos=chaos,
        detect=args.detect,
    )
    design = vendor(args.vendor)
    repeats = max(1, args.repeat)
    results = []
    if args.pool:
        from repro.parallel import WorkerPool

        with WorkerPool(
            workers=args.workers, warm_start=not args.no_warm_start
        ) as pool:
            for _ in range(repeats):
                results.append(
                    run_campaign(design, worker_pool=pool, **campaign_kwargs)
                )
    else:
        for _ in range(repeats):
            results.append(run_campaign(design, **campaign_kwargs))
    result = results[-1]
    if args.format == "json":
        payload = {
            "report": result.to_dict(include_pool=args.pool),
            "snapshot": result.snapshot,
        }
        if repeats > 1:
            payload["repeats"] = [r.wall_seconds for r in results]
        return json.dumps(payload, indent=2, sort_keys=True)
    text = result.render()
    if repeats > 1:
        walls = "  ".join(
            f"#{index}={r.wall_seconds:.2f}s" for index, r in enumerate(results)
        )
        text += f"\nrepeat walls: {walls}"
    return text


def _cmd_chaos(args: argparse.Namespace) -> str:
    from repro.chaos import plan_from_name, plan_names
    from repro.chaos.faults import plan_catalog

    if args.action == "list":
        catalog = plan_catalog()
        width = max(len(name) for name in catalog)
        return "\n".join(
            f"{name:<{width}}  {description}"
            for name, description in catalog.items()
        )
    if args.action == "describe":
        return plan_from_name(args.plan, args.intensity).describe()

    # action == "run": one chaos-enabled fleet, time actually advancing,
    # so windowed faults (partitions, brownouts, restarts) fire.
    from repro.chaos import ChaosSpec, apply_chaos, binding_liveness
    from repro.fleet import FleetDeployment
    from repro.vendors import vendor

    if args.plan not in plan_names():
        from repro.core.errors import ConfigurationError

        raise ConfigurationError(
            f"unknown fault plan {args.plan!r}; see 'repro chaos list'"
        )
    fleet = FleetDeployment(
        vendor(args.vendor), households=args.households, seed=args.seed
    )
    spec = ChaosSpec(
        plan=args.plan,
        intensity=args.intensity,
        resilience=not args.no_resilience,
    )
    controller = apply_chaos(fleet, spec)
    bound = fleet.setup_all()
    fleet.run(args.seconds)
    liveness = binding_liveness(fleet)
    summary = controller.summary()
    injector = summary["injector"]
    if getattr(args, "format", "text") == "json":
        import json

        return json.dumps(
            {
                "plan": args.plan,
                "intensity": args.intensity,
                "vendor": fleet.design.name,
                "households": args.households,
                "seconds": args.seconds,
                "setup_succeeded": bound,
                "injector": injector,
                "restarts": summary["restarts"],
                "restart_entries_applied": summary["restart_entries_applied"],
                "liveness": liveness,
                "resilience": summary["resilience"],
            },
            indent=2,
            sort_keys=True,
        )
    lines = [
        f"chaos run: plan={args.plan} intensity={args.intensity:g} "
        f"vendor={fleet.design.name} households={args.households} "
        f"seconds={args.seconds:g}",
        f"  setup succeeded: {bound}/{args.households}",
        f"  injector: requests={injector['requests']} "
        f"dropped={injector['dropped']} delayed={injector['delayed']} "
        f"timeouts={injector['timeouts']} duplicates={injector['duplicates']}",
        f"  cloud restarts: {summary['restarts']} "
        f"(journal entries replayed: {summary['restart_entries_applied']})",
        f"  binding liveness: bound {liveness['bound']}/{liveness['households']} "
        f"({liveness['bound_fraction']:.0%})  online {liveness['online']}/"
        f"{liveness['households']} ({liveness['online_fraction']:.0%})",
    ]
    resilience = summary["resilience"]
    if resilience:
        lines.append(
            f"  resilience: attempts={resilience.get('attempts', 0):g} "
            f"retries={resilience.get('retries', 0):g} "
            f"giveups={resilience.get('giveups', 0):g} "
            f"short_circuits={resilience.get('short_circuits', 0):g} "
            f"modelled backoff={resilience.get('backoff_seconds', 0.0):.1f}s"
        )
    return "\n".join(lines)


def _cmd_detect(args: argparse.Namespace) -> str:
    import json

    from repro.obs.detect.harness import (
        ATTACK_CAMPAIGNS,
        detection_matrix,
        render_detection,
        run_detection,
    )
    from repro.vendors import vendor

    chaos = None
    if args.chaos is not None:
        from repro.chaos import ChaosSpec

        chaos = ChaosSpec(
            plan=args.chaos,
            intensity=args.intensity,
            resilience=not args.no_resilience,
        )
    attacks = (
        tuple(sorted(ATTACK_CAMPAIGNS)) if args.attack == "all" else (args.attack,)
    )
    design = vendor(args.vendor)
    runs = run_detection(
        design,
        attacks=attacks,
        households=args.households,
        max_probes=args.probes,
        workers=args.workers,
        seed=args.seed,
        chaos=chaos,
    )
    if args.format == "json":
        return json.dumps(detection_matrix(runs), indent=2, sort_keys=True)
    return render_detection(design, runs, chaos=chaos)


def _cmd_designs(args: argparse.Namespace) -> str:
    import json

    from repro.cloud.pdp import PolicySpec
    from repro.secure import SECURE_BASELINES
    from repro.vendors import STUDIED_VENDORS

    catalog = list(STUDIED_VENDORS) + list(SECURE_BASELINES)

    if args.action == "list":
        rows = []
        for design in catalog:
            spec = PolicySpec.from_design(design)
            rows.append({
                "name": design.name,
                "kind": ("baseline" if design in tuple(SECURE_BASELINES)
                         else "vendor"),
                "rules": sum(len(refs) for refs in spec.actions.values()),
                "digest": spec.digest()[:12],
            })
        if args.format == "json":
            return json.dumps(rows, indent=2, sort_keys=True)
        width = max(len(row["name"]) for row in rows)
        lines = [f"{'design':<{width}}  kind      rules  spec digest"]
        lines.extend(
            f"{row['name']:<{width}}  {row['kind']:<8}  {row['rules']:>5}  "
            f"{row['digest']}"
            for row in rows
        )
        return "\n".join(lines)

    if args.action == "describe":
        matches = [d for d in catalog if d.name == args.name]
        if not matches:
            from repro.core.errors import ConfigurationError

            known = ", ".join(d.name for d in catalog)
            raise ConfigurationError(
                f"unknown design {args.name!r} (known: {known})"
            )
        spec = PolicySpec.from_design(matches[0])
        if args.format == "json":
            return json.dumps(spec.to_data(), indent=2, sort_keys=True)
        lines = [f"policy spec of {spec.name} (digest {spec.digest()[:12]}):"]
        for action, refs in spec.to_data()["actions"].items():
            lines.append(f"  {action}:")
            for index, ref in enumerate(refs, start=1):
                from repro.cloud.pdp.spec import RuleRef

                lines.append(
                    f"    {index}. {RuleRef(ref['rule'], ref.get('params')).render()}"
                )
        return "\n".join(lines)

    if args.action == "enumerate":
        from repro.analysis.policy_space import enumerate_policy_space

        digests = set()
        count = 0
        for point in enumerate_policy_space(limit=args.limit):
            count += 1
            digests.add(point.rules_digest)
        if args.format == "json":
            return json.dumps(
                {"policies": count, "distinct_rule_sets": len(digests)},
                indent=2, sort_keys=True,
            )
        return (
            f"enumerated {count} consistent policies "
            f"({len(digests)} distinct rule sets)"
        )

    # action == "diff": predictor vs Figure-2 model checker, per policy.
    from repro.analysis.policy_space import differential_check

    report = differential_check(limit=args.limit)
    if args.format == "json":
        return json.dumps(report.to_data(), indent=2, sort_keys=True)
    return report.render()


def _cmd_snapshot(args: argparse.Namespace) -> str:
    import json

    from repro.cloud.persistence import snapshot_json
    from repro.cloud.service import CloudService
    from repro.cloud.state import migrate_snapshot, snapshot_store_counts
    from repro.fleet import FleetDeployment
    from repro.net.network import Network
    from repro.sim.environment import Environment
    from repro.vendors import vendor

    if args.action == "save":
        fleet = FleetDeployment(
            vendor(args.vendor), households=args.households, seed=args.seed
        )
        bound = fleet.setup_all()
        fleet.run(args.run_seconds)
        document = snapshot_json(fleet.cloud)
        with open(args.path, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
        return (
            f"saved {fleet.design.name} snapshot to {args.path} "
            f"({bound}/{args.households} household(s) bound, "
            f"{len(document)} bytes)"
        )

    with open(args.path, "r", encoding="utf-8") as handle:
        data = json.load(handle)

    if args.action == "inspect":
        migrated = migrate_snapshot(data)
        counts = snapshot_store_counts(data)
        lines = [
            f"snapshot {args.path}:",
            f"  version: {data.get('version')}"
            + ("" if data.get("version") == migrated["version"]
               else f" (migrates to v{migrated['version']})"),
            f"  design:  {migrated.get('design')}",
            f"  time:    t={migrated.get('time', 0.0):.3f}",
            "  stores:",
        ]
        lines.extend(
            f"    {name:<10} {count} record(s)" for name, count in counts.items()
        )
        return "\n".join(lines)

    # action == "load": restore into a fresh world and round-trip check.
    design = vendor(data.get("design"))
    env = Environment(seed=args.seed)
    network = Network(env)
    cloud = CloudService.restore(env, network, design, data)
    resaved = json.loads(snapshot_json(cloud))
    round_trip = resaved["stores"] == migrate_snapshot(data)["stores"]
    lines = [
        f"restored {design.name} snapshot from {args.path}:",
    ]
    lines.extend(
        f"  {name:<10} {store.record_count()} record(s)"
        for name, store in cloud.state_stores().items()
        if store.durable
    )
    lines.append(f"  shadows rebuilt: {cloud.shadows.record_count()}")
    lines.append(
        "  round-trip: "
        + ("stores byte-identical" if round_trip else "MISMATCH after re-save")
    )
    return "\n".join(lines)


def _cmd_fuzz(args: argparse.Namespace) -> str:
    import json
    import time

    from repro.core.errors import ConfigurationError
    from repro.fuzz import (
        all_designs,
        design_named,
        load_corpus,
        replay_corpus,
        save_witness,
    )

    if args.action == "run":
        from repro.fuzz import fuzz_design, fuzz_differential

        designs = (
            [design_named(name) for name in args.designs]
            if args.designs else all_designs()
        )
        deadline = (
            time.monotonic() + args.budget if args.budget is not None else None
        )
        found_by = f"repro fuzz run --seed {args.seed}"
        witnesses = []
        for design in designs:
            if deadline is not None and time.monotonic() >= deadline:
                break
            witnesses.extend(fuzz_design(
                design, seed=args.seed, max_examples=args.max_examples,
                deadline=deadline, found_by=found_by,
            ))
        witnesses.extend(fuzz_differential(
            designs, seed=args.seed, deadline=deadline, found_by=found_by,
        ))
        lines = [
            f"fuzzed {len(designs)} designs (seed {args.seed}): "
            f"{len(witnesses)} minimal witnesses"
        ]
        for witness in witnesses:
            lines.append(
                f"  {witness.name:<52} {' -> '.join(witness.sequence)}"
            )
            if args.out:
                path = save_witness(witness, args.out)
                lines.append(f"    saved {path}")
        if len(witnesses) < args.min_findings:
            raise ConfigurationError(
                f"found {len(witnesses)} witnesses, "
                f"expected at least {args.min_findings}"
            )
        return "\n".join(lines)

    if args.action == "replay":
        results = replay_corpus(args.corpus, seed=args.replay_seed)
        lines = [result.render() for result in results]
        failed = [result for result in results if not result.ok]
        lines.append(
            f"{len(results) - len(failed)}/{len(results)} witnesses replayed ok"
        )
        if failed:
            raise ConfigurationError(
                "\n".join(lines) + "\ncorpus replay failed: "
                + ", ".join(result.witness for result in failed)
            )
        return "\n".join(lines)

    if args.action == "score":
        from repro.analysis.fuzz_generalization import (
            render,
            score_corpus,
            write_bench,
        )

        result = score_corpus(args.corpus)
        if args.out:
            write_bench(result, args.out)
        if args.format == "json":
            return json.dumps(result, indent=2, sort_keys=True)
        text = render(result)
        if args.out:
            text += f"\nwrote {args.out}"
        return text

    # list
    witnesses = load_corpus(args.corpus)
    lines = [f"{len(witnesses)} witnesses in {args.corpus}:"]
    for witness in witnesses:
        lines.append(
            f"  {witness.name:<52} [{witness.kind}] "
            f"{'+'.join(witness.designs)}: {' -> '.join(witness.sequence)}"
        )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (one subcommand per artifact)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the artifacts of 'Your IoTs Are (Not) Mine' (DSN 2019)",
    )
    parser.add_argument("--seed", type=int, default=3, help="simulation seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table I: notation").set_defaults(run=_cmd_table1)
    sub.add_parser("table2", help="Table II: attack taxonomy").set_defaults(run=_cmd_table2)
    table3 = sub.add_parser("table3", help="Table III: ten-vendor evaluation")
    table3.add_argument("--format", choices=["text", "json", "csv", "markdown"],
                        default="text")
    table3.set_defaults(run=_cmd_table3)

    fig1 = sub.add_parser("fig1", help="Figure 1: binding life cycle trace")
    fig1.add_argument("--vendor", default="Belkin")
    fig1.set_defaults(run=_cmd_fig1)
    sub.add_parser("fig2", help="Figure 2: shadow state machine").set_defaults(run=_cmd_fig2)
    sub.add_parser("fig3", help="Figure 3: device auth designs").set_defaults(run=_cmd_fig3)
    sub.add_parser("fig4", help="Figure 4: binding creation designs").set_defaults(run=_cmd_fig4)

    attack = sub.add_parser("attack", help="run one attack against one vendor")
    attack.add_argument("vendor")
    attack.add_argument("attack_id", choices=[
        "A1", "A2", "A3-1", "A3-2", "A3-3", "A3-4", "A4-1", "A4-2", "A4-3",
    ])
    attack.set_defaults(run=_cmd_attack)

    audit = sub.add_parser("audit", help="Section VII design lint for one vendor")
    audit.add_argument("vendor")
    audit.set_defaults(run=_cmd_audit)

    entropy = sub.add_parser("entropy", help="device-ID enumerability table")
    entropy.add_argument("--rate", type=float, default=3000.0,
                         help="attacker requests per second")
    entropy.set_defaults(run=_cmd_entropy)

    witness = sub.add_parser("witness", help="model-checked attack witnesses")
    witness.add_argument("vendor")
    witness.set_defaults(run=_cmd_witness)

    fix = sub.add_parser("fix", help="minimal redesign that closes every attack")
    fix.add_argument("vendor")
    fix.set_defaults(run=_cmd_fix)

    obs = sub.add_parser(
        "obs", help="run a traced fleet campaign / attack battery and report"
    )
    obs.add_argument("--vendor", default="OZWI")
    obs.add_argument("--mode", choices=["binding-dos", "mass-unbind", "attacks"],
                     default="binding-dos",
                     help="what to execute under the tracer")
    obs.add_argument("--households", type=int, default=10)
    obs.add_argument("--probes", type=int, default=64,
                     help="ID-space probes for campaign runs")
    obs.add_argument("--format", choices=["text", "json"], default="text")
    obs.add_argument("--no-messages", action="store_true",
                     help="skip per-request exchange spans (aggregates only)")
    obs.set_defaults(run=_cmd_obs)

    slo = sub.add_parser(
        "slo",
        help="score one fleet run against a latency/availability SLO "
             "(RED series, burn rates, chaos breach verdicts)",
    )
    slo.add_argument("--vendor", default="OZWI")
    slo.add_argument("--households", type=int, default=10)
    slo.add_argument("--seconds", type=float, default=120.0,
                     help="virtual seconds of steady-state traffic to score")
    slo.add_argument("--chaos", default=None, metavar="PLAN",
                     help="score under a named fault plan "
                          "(see 'repro chaos list')")
    slo.add_argument("--intensity", type=float, default=1.0,
                     help="fault-plan intensity scale (0 = inert)")
    slo.add_argument("--no-resilience", action="store_true",
                     help="leave devices/apps without retry/backoff "
                          "clients under chaos")
    slo.add_argument("--objective", type=float, default=0.999,
                     help="availability objective (fraction served)")
    slo.add_argument("--latency-us", type=float, default=1000.0,
                     help="per-request wall-latency compliance threshold")
    slo.add_argument("--format", choices=["text", "json"], default="text")
    slo.set_defaults(run=_cmd_slo)

    campaign = sub.add_parser(
        "campaign", help="sharded parallel fleet campaign across worker processes"
    )
    campaign.add_argument("--vendor", default="OZWI")
    campaign.add_argument("--mode",
                          choices=["binding-dos", "mass-unbind",
                                   "shadow-probe", "mass-rebind"],
                          default="binding-dos")
    campaign.add_argument("--households", type=int, default=100)
    campaign.add_argument("--probes", type=int, default=256,
                          help="fleet-wide ID-space probe budget")
    campaign.add_argument("--workers", type=int, default=1,
                          help="worker processes (1 = in-process serial path)")
    campaign.add_argument("--build", choices=["replay", "clone"], default="replay",
                          help="household construction: replay Figure 1 per "
                               "household, or clone one bound template "
                               "(mass-unbind only)")
    campaign.add_argument("--max-spans", type=int, default=None,
                          help="cap exported spans in JSON output")
    campaign.add_argument("--format", choices=["text", "json"], default="text")
    campaign.add_argument("--chaos", default=None, metavar="PLAN",
                          help="run under a named fault plan "
                               "(see 'repro chaos list')")
    campaign.add_argument("--intensity", type=float, default=1.0,
                          help="fault-plan intensity scale (0 = inert)")
    campaign.add_argument("--no-resilience", action="store_true",
                          help="leave devices/apps without retry/backoff "
                               "clients under chaos")
    campaign.add_argument("--detect", action="store_true",
                          help="attach the read-only detection pipeline "
                               "and score it against ground truth")
    campaign.add_argument("--pool", action="store_true",
                          help="run shards through a persistent worker pool "
                               "(heartbeats, crash-respawn, warm-started "
                               "worlds) instead of spawn-per-shard")
    campaign.add_argument("--no-warm-start", action="store_true",
                          help="with --pool: always rebuild worlds cold "
                               "instead of restoring cached world images")
    campaign.add_argument("--repeat", type=int, default=1,
                          help="run the campaign N times (with --pool the "
                               "pool persists across repeats, so repeats "
                               "warm-start); reports the last run")
    campaign.set_defaults(run=_cmd_campaign)

    chaos = sub.add_parser(
        "chaos", help="fault-plan catalog and chaos-enabled fleet runs"
    )
    chaos.add_argument("action", choices=["list", "describe", "run"])
    chaos.add_argument("plan", nargs="?", default=None,
                       help="fault plan name (describe/run)")
    chaos.add_argument("--vendor", default="OZWI")
    chaos.add_argument("--households", type=int, default=10)
    chaos.add_argument("--seconds", type=float, default=120.0,
                       help="virtual seconds to run (run action)")
    chaos.add_argument("--intensity", type=float, default=1.0)
    chaos.add_argument("--no-resilience", action="store_true")
    chaos.add_argument("--format", choices=["text", "json"], default="text",
                       help="run action: emit the same dict the "
                            "benchmarks consume")
    chaos.set_defaults(run=_cmd_chaos)

    detect = sub.add_parser(
        "detect",
        help="score the cloud-side detectors against labelled attack campaigns",
    )
    detect.add_argument("--vendor", default="OZWI")
    detect.add_argument("--attack", choices=["A1", "A2", "A3", "A4", "all"],
                        default="all",
                        help="Table II attack class to evaluate")
    detect.add_argument("--households", type=int, default=12)
    detect.add_argument("--probes", type=int, default=32,
                        help="fleet-wide ID-space probe budget")
    detect.add_argument("--workers", type=int, default=1)
    detect.add_argument("--chaos", default=None, metavar="PLAN",
                        help="evaluate under a named fault plan "
                             "(false-positive rate under faults)")
    detect.add_argument("--intensity", type=float, default=1.0)
    detect.add_argument("--no-resilience", action="store_true")
    detect.add_argument("--format", choices=["text", "json"], default="text")
    detect.set_defaults(run=_cmd_detect)

    designs = sub.add_parser(
        "designs",
        help="declarative policy specs: catalog, rule lists, space diff",
    )
    designs.add_argument("action",
                         choices=["list", "describe", "enumerate", "diff"])
    designs.add_argument("name", nargs="?", default=None,
                         help="design name (describe)")
    designs.add_argument("--limit", type=int, default=None,
                         help="cap enumerated policies (enumerate/diff)")
    designs.add_argument("--format", choices=["text", "json"], default="text")
    designs.set_defaults(run=_cmd_designs)

    snapshot = sub.add_parser(
        "snapshot", help="save / inspect / load a cloud state snapshot (v2)"
    )
    snapshot.add_argument("action", choices=["save", "load", "inspect"])
    snapshot.add_argument("path", help="snapshot JSON file")
    snapshot.add_argument("--vendor", default="OZWI",
                          help="vendor design to build before saving")
    snapshot.add_argument("--households", type=int, default=3,
                          help="households to set up before saving")
    snapshot.add_argument("--run-seconds", type=float, default=12.0,
                          help="virtual seconds to run before saving")
    snapshot.set_defaults(run=_cmd_snapshot)

    fuzz = sub.add_parser(
        "fuzz",
        help="generative protocol fuzzing with model/differential/safety oracles",
    )
    fuzz_sub = fuzz.add_subparsers(dest="action", required=True)
    fuzz_run = fuzz_sub.add_parser(
        "run", help="search all designs for minimal oracle counterexamples"
    )
    fuzz_run.add_argument("--budget", type=float, default=None,
                          help="wall-clock budget in seconds (safety net)")
    fuzz_run.add_argument("--designs", nargs="*", default=None,
                          help="restrict to these design names")
    fuzz_run.add_argument("--max-examples", type=int, default=150,
                          help="hypothesis examples per search round")
    fuzz_run.add_argument("--min-findings", type=int, default=0,
                          help="exit 2 unless at least this many witnesses")
    fuzz_run.add_argument("--out", default=None,
                          help="directory to save minimized witnesses into")
    fuzz_replay = fuzz_sub.add_parser(
        "replay", help="re-execute a witness corpus; exit 2 on any mismatch"
    )
    fuzz_replay.add_argument("corpus", nargs="?",
                             default="tests/fixtures/fuzz_corpus")
    fuzz_replay.add_argument("--replay-seed", type=int, default=None,
                             help="override the recorded world seed")
    fuzz_score = fuzz_sub.add_parser(
        "score", help="detector generalization over the witness corpus"
    )
    fuzz_score.add_argument("--corpus", default="tests/fixtures/fuzz_corpus")
    fuzz_score.add_argument("--out", default=None,
                            help="also write BENCH_fuzz.json here")
    fuzz_score.add_argument("--format", choices=["text", "json"],
                            default="text")
    fuzz_list = fuzz_sub.add_parser("list", help="list the witness corpus")
    fuzz_list.add_argument("corpus", nargs="?",
                           default="tests/fixtures/fuzz_corpus")
    fuzz.set_defaults(run=_cmd_fuzz)

    sub.add_parser("sweep", help="closed-form design-space sweep").set_defaults(run=_cmd_sweep)
    sub.add_parser("secure", help="attack the recommended designs").set_defaults(run=_cmd_secure)
    sub.add_parser("report", help="compile every artifact into one report").set_defaults(run=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.core.errors import ConfigurationError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        print(args.run(args))
    except (KeyError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI shim
    sys.exit(main())
