"""Low-power (Zigbee/BLE-style) end devices and their local radio.

The paper's Section VIII asks whether its analysis "could be
generalized to other communication architectures that involve four
parties: the Zigbee/Bluetooth device, the IP-based hub device, the user,
and the cloud".  This package builds that architecture.

A :class:`ZigbeeDevice` has no IP stack at all: it can only exchange
frames with a hub over the short-range :class:`ZigbeeAir` (pairing
requires physical co-location, like the provisioning radio).  Everything
it says to the cloud goes *through* the hub — which is the party that
participates in remote binding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.core.errors import ProtocolError
from repro.sim.environment import Environment


@dataclass(frozen=True)
class ZigbeeFrame:
    """One frame on the low-power radio."""

    src: str           # zigbee short address
    kind: str          # "announce" | "report" | "command" | "ack"
    payload: Mapping[str, Any] = field(default_factory=dict)


class ZigbeeAir:
    """The short-range mesh medium: frames reach only co-located radios."""

    def __init__(self) -> None:
        self._radios: Dict[str, List[Callable[[ZigbeeFrame], None]]] = {}
        self._address_counter = 0

    def next_address(self) -> str:
        """Deterministic short-address assignment for joining devices."""
        self._address_counter += 1
        return f"zb-{self._address_counter:04x}"

    def attach(self, location: str, receiver: Callable[[ZigbeeFrame], None]) -> Callable[[], None]:
        """Join the medium at *location*; returns a detach callable."""
        if not location:
            raise ProtocolError("a radio needs a physical location")
        self._radios.setdefault(location, []).append(receiver)

        def detach() -> None:
            receivers = self._radios.get(location, [])
            if receiver in receivers:
                receivers.remove(receiver)

        return detach

    def transmit(self, location: str, frame: ZigbeeFrame,
                 skip: Optional[Callable[[ZigbeeFrame], None]] = None) -> int:
        """Broadcast *frame* at *location*; returns radios reached."""
        receivers = [r for r in self._radios.get(location, []) if r is not skip]
        for receiver in receivers:
            receiver(frame)
        return len(receivers)


class ZigbeeDevice:
    """A battery sensor/actuator that only speaks the local mesh."""

    #: override per concrete type
    kind: str = "generic"

    def __init__(self, env: Environment, air: ZigbeeAir, location: str,
                 short_address: Optional[str] = None) -> None:
        self.env = env
        self.air = air
        self.location = location
        self.short_address = short_address or air.next_address()
        self.paired_hub: Optional[str] = None
        self.state: Dict[str, Any] = self.initial_state()
        self.received_commands: List[ZigbeeFrame] = []
        # bind the receiver once: ``air`` filters self-reception by
        # identity, and bound methods are fresh objects on every access
        self._receiver = self._receive
        self._detach = air.attach(location, self._receiver)

    # -- subclass surface -------------------------------------------------

    def initial_state(self) -> Dict[str, Any]:
        return {"on": False}

    def read_measurement(self) -> Dict[str, Any]:
        return {}

    def apply_command(self, command: str, arguments: Mapping[str, Any]) -> None:
        if command in ("on", "off"):
            self.state["on"] = command == "on"
        else:
            self.state[command] = dict(arguments) if arguments else True

    # -- mesh behaviour -----------------------------------------------------

    def announce(self) -> int:
        """Pairing-mode announce (the user pressed the pairing button)."""
        return self.air.transmit(
            self.location,
            ZigbeeFrame(self.short_address, "announce", {"kind": self.kind}),
            skip=self._receiver,
        )

    def report(self) -> int:
        """Send a measurement frame toward whatever hub is listening."""
        return self.air.transmit(
            self.location,
            ZigbeeFrame(self.short_address, "report", self.read_measurement()),
            skip=self._receiver,
        )

    def _receive(self, frame: ZigbeeFrame) -> None:
        if frame.kind == "command" and frame.payload.get("target") == self.short_address:
            self.received_commands.append(frame)
            self.apply_command(
                frame.payload.get("command", ""), frame.payload.get("arguments", {})
            )
        elif frame.kind == "ack" and frame.payload.get("target") == self.short_address:
            self.paired_hub = frame.payload.get("hub")

    def remove(self) -> None:
        """Take the device out of the mesh (battery removed)."""
        self._detach()


class ZigbeeContactSensor(ZigbeeDevice):
    """A door/window contact sensor."""

    kind = "contact-sensor"

    def initial_state(self) -> Dict[str, Any]:
        return {"open": False}

    def read_measurement(self) -> Dict[str, Any]:
        return {"open": self.state["open"]}

    def set_open(self, is_open: bool) -> None:
        self.state["open"] = is_open


class ZigbeeSwitch(ZigbeeDevice):
    """A relay switch (light/appliance)."""

    kind = "switch"

    def read_measurement(self) -> Dict[str, Any]:
        return {"on": self.state["on"]}
