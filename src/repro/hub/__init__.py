"""Four-party architecture: Zigbee/BLE devices behind an IP hub.

The paper's Section VIII extension: device + hub + user + cloud.
"""

from repro.hub.hub import HubFirmware, pair_child
from repro.hub.zigbee import (
    ZigbeeAir,
    ZigbeeContactSensor,
    ZigbeeDevice,
    ZigbeeFrame,
    ZigbeeSwitch,
)

__all__ = [
    "HubFirmware",
    "ZigbeeAir",
    "ZigbeeContactSensor",
    "ZigbeeDevice",
    "ZigbeeFrame",
    "ZigbeeSwitch",
    "pair_child",
]
