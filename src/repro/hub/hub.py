"""The IP-based hub: the fourth party of the extended architecture.

The hub is an ordinary :class:`~repro.device.base.DeviceFirmware` from
the cloud's point of view — it provisions, authenticates and binds like
any other device, so *every* Table II attack applies to it unchanged.
Locally it owns a Zigbee mesh: children pair over the short-range radio
(physical co-location required) and are reachable remotely only through
the hub's binding.

The security consequence, which the tests make precise: the hub's
binding is an *aggregation point*.  Hijacking one hub (A4) hijacks every
paired child; unbinding it (A3) disconnects the whole home; forging its
status (A1) forges every child's data at once.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.device.base import DeviceFirmware
from repro.hub.zigbee import ZigbeeAir, ZigbeeDevice, ZigbeeFrame


class HubFirmware(DeviceFirmware):
    """A Zigbee-to-cloud bridge."""

    model = "zigbee-hub"
    firmware_version = "5.2.0"

    def initial_state(self) -> Dict[str, Any]:
        """Hub bookkeeping plus the on/off relay state."""
        # Late-bound: attach_mesh() wires the radio after construction,
        # because the base constructor runs before hub-specific fields.
        self._mesh_air: Optional[ZigbeeAir] = None
        self._mesh_detach = None
        self.pairing_mode = False
        self.children: Dict[str, Dict[str, Any]] = {}
        self._child_reports: Dict[str, Mapping[str, Any]] = {}
        return {"on": True}

    # ------------------------------------------------------------------
    # mesh side
    # ------------------------------------------------------------------

    def attach_mesh(self, air: ZigbeeAir) -> None:
        """Join the local Zigbee medium at the hub's physical location."""
        if self._mesh_air is not None:
            return
        self._mesh_air = air
        self._mesh_receiver = self._receive_frame  # stable identity for skip
        self._mesh_detach = air.attach(self.location, self._mesh_receiver)

    def enter_pairing_mode(self) -> None:
        """Accept child announces (the app's 'add device' button)."""
        self.pairing_mode = True

    def leave_pairing_mode(self) -> None:
        self.pairing_mode = False

    def _receive_frame(self, frame: ZigbeeFrame) -> None:
        if frame.kind == "announce" and self.pairing_mode:
            self.children[frame.src] = {"kind": frame.payload.get("kind", "?")}
            self._mesh_air.transmit(
                self.location,
                ZigbeeFrame(
                    self.node_name, "ack",
                    {"target": frame.src, "hub": self.device_id},
                ),
                skip=self._mesh_receiver,
            )
        elif frame.kind == "report" and frame.src in self.children:
            self._child_reports[frame.src] = dict(frame.payload)

    def paired_children(self) -> List[str]:
        return sorted(self.children)

    # ------------------------------------------------------------------
    # cloud side
    # ------------------------------------------------------------------

    def read_telemetry(self) -> Dict[str, Any]:
        """The hub reports every child's latest measurement upstream."""
        return {
            "children": {
                address: dict(report)
                for address, report in sorted(self._child_reports.items())
            }
        }

    def apply_command(self, command: str, arguments: Mapping[str, Any]) -> None:
        """Relay ``child`` commands onto the mesh; handle the rest locally."""
        if command == "child":
            target = arguments.get("target")
            if self._mesh_air is None or target not in self.children:
                return  # unknown child: drop, like a real bridge
            self._mesh_air.transmit(
                self.location,
                ZigbeeFrame(
                    self.node_name, "command",
                    {
                        "target": target,
                        "command": arguments.get("command", ""),
                        "arguments": dict(arguments.get("arguments", {})),
                    },
                ),
                skip=self._mesh_receiver,
            )
            return
        if command == "pairing":
            self.pairing_mode = bool(arguments.get("enable", True))
            return
        super().apply_command(command, arguments)

    def factory_reset(self) -> None:
        """A hub reset also forgets the whole mesh."""
        super().factory_reset()
        self.children.clear()
        self._child_reports.clear()
        self.pairing_mode = False


def pair_child(hub: HubFirmware, child: ZigbeeDevice) -> bool:
    """The user's pairing gesture: hub into pairing mode, child announces.

    Requires both radios at the same physical location — a remote
    attacker cannot inject children into a victim's mesh.
    """
    hub.enter_pairing_mode()
    child.announce()
    hub.leave_pairing_mode()
    return child.paired_hub == hub.device_id
