"""Fleet scenarios: one vendor cloud, many customers.

Section V-C warns that sequential device IDs enable "scalable
denial-of-service attacks to the entire product series of a vendor".
A :class:`FleetDeployment` builds that world: N independent victim
households (own LAN, phone, account, device) against one cloud, plus
the usual remote attacker.  The campaign tooling in
``repro.attacks.campaign`` then measures product-line-wide damage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.app.mobile import MobileApp
from repro.cloud.policy import DeviceAuthMode, VendorDesign
from repro.cloud.service import CloudService
from repro.core.errors import ConfigurationError, RequestRejected
from repro.device import DEVICE_CLASSES
from repro.device.base import DeviceFirmware
from repro.identity.device_ids import scheme_from_name
from repro.identity.keys import generate_keypair
from repro.net.network import Network
from repro.net.provisioning import ProvisioningAir
from repro.obs.observer import Observer
from repro.sim.environment import Environment


@dataclass
class Household:
    """One customer: account, phone/app, device, home network."""

    index: int
    user_id: str
    password: str
    app: MobileApp
    device: DeviceFirmware
    lan_id: str
    ssid: str
    wifi_passphrase: str
    location: str


class FleetDeployment:
    """A vendor cloud serving *households* customers, plus an attacker."""

    def __init__(
        self,
        design: VendorDesign,
        households: int = 5,
        seed: int = 0,
        observer: Optional[Observer] = None,
    ) -> None:
        if households < 1:
            raise ConfigurationError("a fleet needs at least one household")
        self.design = design
        self.env = Environment(seed=seed, observer=observer)
        self.network = Network(self.env)
        self.air = ProvisioningAir()
        self.cloud = CloudService(self.env, self.network, design)
        self.id_scheme = scheme_from_name(
            design.id_scheme, oui=design.id_oui, digits=design.id_serial_digits
        )
        with self.env.observer.span(
            "fleet:build", kind="phase", vendor=design.name, households=households
        ):
            self.households: List[Household] = [
                self._build_household(index) for index in range(households)
            ]
        # The attacker: an account and an internet-facing host, no LAN
        # access to anyone.
        self.attacker_user = "mallory@example.com"
        self.attacker_password = "mallory-pw"
        self.cloud.accounts.register(self.attacker_user, self.attacker_password)
        self.network.add_internet_node("attacker:host", None, "198.51.100.99")
        self._attacker_token: Optional[str] = None

    # ------------------------------------------------------------------

    def _build_household(self, index: int) -> Household:
        design = self.design
        user_id = f"user{index}@example.com"
        password = f"pw-{index}"
        lan_id = f"lan:home-{index}"
        ssid = f"home-wifi-{index}"
        passphrase = f"wifi pass {index}"
        location = f"home:{index}"
        self.network.create_lan(
            lan_id, ssid, passphrase,
            public_ip=f"203.0.{113 + index // 200}.{10 + index % 200}",
            subnet_prefix="192.168.1",
        )
        self.cloud.accounts.register(user_id, password)
        device_id = self.id_scheme.issue(self.env.rng)
        keypair = None
        if design.device_auth is DeviceAuthMode.PUBKEY:
            keypair = generate_keypair(self.env.rng.fork(f"keys-{device_id}"), device_id)
            self.cloud.manufacture_device(device_id, design.device_type, keypair.public)
        else:
            self.cloud.manufacture_device(device_id, design.device_type)
        device = DEVICE_CLASSES[design.device_type](
            env=self.env, network=self.network, air=self.air, design=design,
            device_id=device_id, location=location, keypair=keypair,
            node_name=f"device:{index}",
        )
        app = MobileApp(
            env=self.env, network=self.network, air=self.air, design=design,
            user_id=user_id, password=password, location=location,
            node_name=f"app:{index}",
        )
        app.join_wifi(lan_id, passphrase)
        return Household(index, user_id, password, app, device,
                         lan_id, ssid, passphrase, location)

    # ------------------------------------------------------------------

    def attacker_token(self) -> str:
        if self._attacker_token is None:
            from repro.core.messages import LoginRequest

            response = self.network.request(
                "attacker:host", self.cloud.node_name,
                LoginRequest(self.attacker_user, self.attacker_password),
            )
            self._attacker_token = response.user_token
        return self._attacker_token

    def setup_household(self, household: Household) -> bool:
        """Run the Figure 1 flow for one customer; True on success."""
        obs = self.env.observer
        with obs.profile("fleet.setup_household"), obs.span(
            f"household:{household.index}", kind="phase", user=household.user_id
        ):
            return self._setup_household(household)

    def _setup_household(self, household: Household) -> bool:
        app, device = household.app, household.device
        try:
            if app.user_token is None:
                app.login()
            device.power_on()
            app.provision_wifi(household.ssid, household.wifi_passphrase)
            try:
                app.local_configure(device)
            except RequestRejected:
                return False
            if self.design.ip_match_required:
                device.press_button()
            return app.bind_device(device)
        except RequestRejected:
            return False

    def setup_all(self) -> int:
        """Set up every household; returns how many succeeded."""
        with self.env.observer.span("fleet:setup", kind="phase"):
            return sum(
                1 for household in self.households if self.setup_household(household)
            )

    def run(self, seconds: float) -> None:
        """Advance the whole fleet's world by *seconds* virtual seconds."""
        with self.env.observer.span("fleet:run", kind="phase", seconds=seconds):
            self.env.run_for(seconds)

    def bound_users(self) -> Dict[str, Optional[str]]:
        """device_id -> bound account, fleet-wide."""
        return {
            household.device.device_id: self.cloud.bound_user_of(
                household.device.device_id
            )
            for household in self.households
        }
