"""Fleet scenarios: one vendor cloud, many customers.

Section V-C warns that sequential device IDs enable "scalable
denial-of-service attacks to the entire product series of a vendor".
A :class:`FleetDeployment` builds that world: N independent victim
households (own LAN, phone, account, device) against one cloud, plus
the usual remote attacker.  The campaign tooling in
``repro.attacks.campaign`` then measures product-line-wide damage.

Two build modes exist (``docs/parallelism.md`` discusses the trade-off):

* ``build="replay"`` (default) — every household is factory fresh and
  must run the full Figure 1 flow through :meth:`setup_all`, exactly as
  the paper's experiments did;
* ``build="clone"`` — one *template* household runs Figure 1 once
  (login + provision + bind), and the remaining households are cloned
  from its resulting state snapshot: per-household identities and
  tokens are still unique and cloud-registered, but the per-household
  message flow is skipped.  The fleet comes up already bound, which is
  what pre-deployed campaigns (mass unbind) and capacity benchmarks
  need at 100+ households.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.app.mobile import KnownDevice, MobileApp
from repro.cloud.policy import DeviceAuthMode, VendorDesign
from repro.cloud.service import CloudService
from repro.core.errors import ConfigurationError, NetworkError, RequestRejected
from repro.device import DEVICE_CLASSES
from repro.device.base import DeviceFirmware
from repro.identity.device_ids import scheme_from_name
from repro.identity.keys import cached_keypair
from repro.identity.tokens import TokenKind
from repro.net.address import FleetIpAllocator
from repro.net.network import Network
from repro.net.provisioning import ProvisioningAir, WifiCredentials
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer
from repro.sim.environment import Environment

#: Addresses a fleet's router IP allocator must never hand out.
RESERVED_FLEET_IPS = ("198.51.100.99", "52.0.0.1")  # attacker host, cloud

#: Valid values for :class:`FleetDeployment`'s *build* parameter.
BUILD_MODES = ("replay", "clone")


@dataclass
class Household:
    """One customer: account, phone/app, device, home network."""

    index: int
    user_id: str
    password: str
    app: MobileApp
    device: DeviceFirmware
    lan_id: str
    ssid: str
    wifi_passphrase: str
    location: str


@dataclass
class WorldImage:
    """A picklable capture of a deployed fleet, ready to warm-start.

    Taken by :meth:`FleetDeployment.capture_image` after the Figure 1
    setup and a settling :meth:`FleetDeployment.run` — i.e. at exactly
    the point a deployed campaign (mass unbind, shadow probe, mass
    rebind) begins.  :meth:`FleetDeployment.from_image` turns it back
    into a live world whose every subsequent output is bit-identical to
    the captured one's.

    The image is *not* a pickled object graph: it carries the cloud's
    genuine snapshot-v2 state plus the volatile overlays a snapshot
    deliberately sheds (see
    :meth:`~repro.cloud.service.CloudService.capture_campaign_state`),
    per-household device/app field sets, and the RNG / trace-counter
    stream positions.  Restoring structurally rebuilds the fleet — all
    identities and keys derive from the seed, so the rebuild reproduces
    the build exactly — and overlays the captured dynamics on top.
    Worker processes cache these per world key and replay them instead
    of re-running setup for every shard (``docs/performance.md``).
    """

    design: VendorDesign
    households: int
    seed: int
    build: str
    time: float
    cloud_state: Dict[str, Any]
    env_rng_state: Any
    trace_state: Dict[str, int]
    metrics: Optional[Dict[str, Any]]
    attacker_token: Optional[str]
    device_states: List[Dict[str, Any]] = field(default_factory=list)
    app_states: List[Dict[str, Any]] = field(default_factory=list)


class FleetDeployment:
    """A vendor cloud serving *households* customers, plus an attacker."""

    def __init__(
        self,
        design: VendorDesign,
        households: int = 5,
        seed: int = 0,
        observer: Optional[Observer] = None,
        build: str = "replay",
    ) -> None:
        if households < 1:
            raise ConfigurationError("a fleet needs at least one household")
        if build not in BUILD_MODES:
            raise ConfigurationError(f"unknown fleet build mode {build!r}")
        self.design = design
        self.build = build
        #: True once every household is bound at construction time
        #: (clone mode); replay fleets flip this in :meth:`setup_all`.
        self.prebound = False
        self.env = Environment(seed=seed, observer=observer)
        self.network = Network(self.env)
        self.air = ProvisioningAir()
        self.cloud = CloudService(self.env, self.network, design)
        self.id_scheme = scheme_from_name(
            design.id_scheme, oui=design.id_oui, digits=design.id_serial_digits
        )
        self._ips = FleetIpAllocator(reserved=RESERVED_FLEET_IPS)
        with self.env.observer.span(
            "fleet:build", kind="phase", vendor=design.name,
            households=households, build=build,
        ):
            if build == "clone":
                self.households = self._build_cloned(households)
            else:
                self.households: List[Household] = [
                    self._build_household(index) for index in range(households)
                ]
        # The attacker: an account and an internet-facing host, no LAN
        # access to anyone.
        self.attacker_user = "mallory@example.com"
        self.attacker_password = "mallory-pw"
        self.cloud.accounts.register(self.attacker_user, self.attacker_password)
        self.network.add_internet_node("attacker:host", None, "198.51.100.99")
        self._attacker_token: Optional[str] = None

    # ------------------------------------------------------------------

    def _build_household(self, index: int) -> Household:
        design = self.design
        user_id = f"user{index}@example.com"
        password = f"pw-{index}"
        lan_id = f"lan:home-{index}"
        ssid = f"home-wifi-{index}"
        passphrase = f"wifi pass {index}"
        location = f"home:{index}"
        self.network.create_lan(
            lan_id, ssid, passphrase,
            public_ip=self._ips.allocate(),
            subnet_prefix="192.168.1",
        )
        self.cloud.accounts.register(user_id, password)
        device_id = self.id_scheme.issue(self.env.rng)
        keypair = None
        if design.device_auth is DeviceAuthMode.PUBKEY:
            keypair = cached_keypair(self.env.rng.fork(f"keys-{device_id}"), device_id)
            self.cloud.manufacture_device(device_id, design.device_type, keypair.public)
        else:
            self.cloud.manufacture_device(device_id, design.device_type)
        device = DEVICE_CLASSES[design.device_type](
            env=self.env, network=self.network, air=self.air, design=design,
            device_id=device_id, location=location, keypair=keypair,
            node_name=f"device:{index}",
        )
        app = MobileApp(
            env=self.env, network=self.network, air=self.air, design=design,
            user_id=user_id, password=password, location=location,
            node_name=f"app:{index}",
        )
        app.join_wifi(lan_id, passphrase)
        return Household(index, user_id, password, app, device,
                         lan_id, ssid, passphrase, location)

    # -- template cloning (the fleet-construction fast path) -------------

    def _build_cloned(self, households: int) -> List[Household]:
        """Build one bound template household, then clone its state N-1 times."""
        template = self._build_household(0)
        if not self.setup_household(template):
            raise ConfigurationError(
                f"template household setup failed on {self.design.name}; "
                "a clone-built fleet needs a bindable design"
            )
        built = [template]
        with self.env.observer.span(
            "fleet:clone", kind="phase", clones=households - 1
        ):
            for index in range(1, households):
                built.append(self._clone_household(index, template))
        self.prebound = True
        return built

    def _clone_household(self, index: int, template: Household) -> Household:
        """One already-bound household, built without the Figure 1 flow."""
        household = self._build_household(index)
        self._install_bound_state(household, template)
        return household

    def _install_bound_state(self, household: Household, template: Household) -> None:
        """Store-level clone of the post-Figure-1 state the template reached.

        The app and firmware sides are written directly (a live session
        token, Wi-Fi membership, fresh per-clone authentication material
        — tokens are never shared between households); the *cloud* side
        goes through the state layer: the template's binding and shadow
        records are cloned per record via
        :meth:`~repro.cloud.state.protocol.RecordStoreBase.clone_record`
        with a transform that re-keys them to this household.  The
        shadow store decodes its record by replaying events, so the
        clone still takes real Figure 2 transitions (1) then (4) and
        fires the same observer hooks the message flow would.
        """
        design, cloud, env = self.design, self.cloud, self.env
        app, device = household.app, household.device
        device_id = device.device_id
        now = env.now
        t_device = template.device
        t_binding = cloud.bindings.get(t_device.device_id)
        # App side: a live session without the login round trip.
        app.user_token = cloud.accounts.login(
            household.user_id, household.password, now
        )
        # Device side: provisioned, associated, connected.
        device.powered = True
        device.wifi = WifiCredentials(household.ssid, household.wifi_passphrase)
        self.network.join_lan(
            device.node_name, household.lan_id, household.wifi_passphrase
        )
        device._lan_id = household.lan_id
        device.connected = t_device.connected
        device.state = copy.deepcopy(t_device.state)
        device.schedule = dict(t_device.schedule)
        if design.device_auth is DeviceAuthMode.DEV_TOKEN:
            device.dev_token = cloud.registry.issue_dev_token(
                device_id, household.user_id, now
            )
        # Fresh per-clone post-binding token, drawn in the same RNG order
        # the replay flow uses (login, DevToken, then post token).
        post_token: Optional[str] = None
        if t_binding is not None and t_binding.post_token is not None:
            post_token = cloud.tokens.issue(
                TokenKind.POST_BINDING, f"{device_id}:{household.user_id}", now
            )
        lan = self.network.lan(household.lan_id)

        if t_binding is not None:

            def rekey_binding(record: dict) -> dict:
                """Re-key the template binding to this household."""
                record.update(
                    device_id=device_id,
                    user_id=household.user_id,
                    created_at=now,
                    post_token=post_token,
                )
                return record

            cloud.bindings.clone_record(t_device.device_id, rekey_binding)

        def rekey_shadow(record: dict) -> dict:
            """Re-key the template shadow; replay re-takes (1) and (4)."""
            record.update(
                device_id=device_id,
                time=now,
                connection_id=device.node_name,
                reported_model=device.model,
                reported_firmware=device.firmware_version,
            )
            if record.get("bound_user") is not None:
                record["bound_user"] = household.user_id
            record["registration"] = {
                "time": now,
                "source_ip": str(lan.router.public_ip),
            }
            return record

        cloud.shadows.clone_record(t_device.device_id, rekey_shadow)

        if t_binding is not None:
            if t_device.post_binding_token is not None:
                device.post_binding_token = post_token
            t_known = template.app.devices.get(t_device.device_id)
            if t_known is not None:
                app.devices[device_id] = KnownDevice(
                    device_id,
                    device.model,
                    post_token if t_known.post_binding_token is not None else None,
                )
            cloud.notify(household.user_id, "binding-created", device_id)
        device._start_heartbeats()

    # ------------------------------------------------------------------

    def attacker_token(self) -> str:
        if self._attacker_token is None:
            from repro.core.messages import LoginRequest

            response = self.network.request(
                "attacker:host", self.cloud.node_name,
                LoginRequest(self.attacker_user, self.attacker_password),
            )
            self._attacker_token = response.user_token
        return self._attacker_token

    def setup_household(self, household: Household) -> bool:
        """Run the Figure 1 flow for one customer; True on success."""
        obs = self.env.observer
        with obs.profile("fleet.setup_household"), obs.span(
            f"household:{household.index}", kind="phase", user=household.user_id
        ):
            return self._setup_household(household)

    def _setup_household(self, household: Household) -> bool:
        app, device = household.app, household.device
        try:
            if app.user_token is None:
                app.login()
            device.power_on()
            app.provision_wifi(household.ssid, household.wifi_passphrase)
            try:
                app.local_configure(device)
            except RequestRejected:
                return False
            if self.design.ip_match_required:
                device.press_button()
            return app.bind_device(device)
        except (RequestRejected, NetworkError):
            # Chaos (loss, partitions, brownouts) failing the Figure 1
            # flow is a real denial, not an experiment-script crash.
            return False

    def setup_all(self) -> int:
        """Set up every household; returns how many succeeded.

        Clone-built fleets come up already bound, so this is a no-op for
        them (it reports every household as succeeded).
        """
        if self.prebound:
            return len(self.households)
        with self.env.observer.span("fleet:setup", kind="phase"):
            return sum(
                1 for household in self.households if self.setup_household(household)
            )

    def run(self, seconds: float) -> None:
        """Advance the whole fleet's world by *seconds* virtual seconds."""
        with self.env.observer.span("fleet:run", kind="phase", seconds=seconds):
            self.env.run_for(seconds)

    # -- world images (campaign warm start) -----------------------------

    def capture_image(self) -> WorldImage:
        """Freeze this deployed world as a :class:`WorldImage`.

        Call after :meth:`setup_all` + :meth:`run` — the deployed-
        campaign start line.  Worlds with resilience clients installed
        (chaos shards) are refused: their retry RNGs and breaker state
        are mid-flight machinery the image format deliberately omits,
        and chaos shards always run cold anyway.
        """
        for household in self.households:
            if household.device._client is not None or household.app._client is not None:
                raise ConfigurationError(
                    "cannot capture a world image with resilience clients "
                    "installed; chaos shards run cold"
                )
        device_states: List[Dict[str, Any]] = []
        app_states: List[Dict[str, Any]] = []
        for household in self.households:
            device = household.device
            device_states.append(
                {
                    "powered": device.powered,
                    "wifi": device.wifi,
                    "lan_id": device._lan_id,
                    "dev_token": device.dev_token,
                    "post_binding_token": device.post_binding_token,
                    "pending_user_credential": device._pending_user_credential,
                    "listening": device._stop_listening is not None,
                    "connected": device.connected,
                    "last_error": device.last_error,
                    "executed_commands": list(device.executed_commands),
                    "schedule": dict(device.schedule),
                    "last_schedule_check": device._last_schedule_check,
                    "state": copy.deepcopy(device.state),
                    "heartbeat_next": (
                        device._heartbeat_handle.time
                        if device._heartbeat_handle is not None
                        else None
                    ),
                }
            )
            app = household.app
            app_states.append(
                {
                    "user_token": app.user_token,
                    "devices": {
                        device_id: KnownDevice(
                            known.device_id, known.model, known.post_binding_token
                        )
                        for device_id, known in app.devices.items()
                    },
                }
            )
        observer = self.env.observer
        metrics = (
            observer.metrics.snapshot() if hasattr(observer, "metrics") else None
        )
        return WorldImage(
            design=self.design,
            households=len(self.households),
            seed=self.env.rng.seed,
            build=self.build,
            time=self.env.now,
            cloud_state=self.cloud.capture_campaign_state(),
            env_rng_state=self.env.rng.getstate(),
            trace_state=self.network.trace_state(),
            metrics=metrics,
            attacker_token=self._attacker_token,
            device_states=device_states,
            app_states=app_states,
        )

    @classmethod
    def from_image(
        cls, image: WorldImage, observer: Optional[Observer] = None
    ) -> "FleetDeployment":
        """Resume a captured world: structural rebuild + overlays.

        The constructor rebuild reproduces the original build exactly
        (identities, keys and addresses all derive from the seed); the
        overlays then install everything setup and run changed — cloud
        state through the campaign fast path, device/app fields,
        scheduler phases, RNG and trace-counter positions — and finally
        replace the observer's metrics registry with the captured
        snapshot, discarding whatever the restore itself emitted.  A
        campaign run on the result is bit-identical to one run on the
        captured world.
        """
        fleet = cls(
            image.design,
            image.households,
            seed=image.seed,
            observer=observer,
            build=image.build,
        )
        fleet.cloud.restore_campaign_state(image.cloud_state)
        now = fleet.env.now
        for household, device_state, app_state in zip(
            fleet.households, image.device_states, image.app_states
        ):
            device = household.device
            if device._heartbeat_handle is not None:
                # clone builds arm heartbeats at t=0; re-arm below with
                # the captured phase instead
                device._heartbeat_handle.cancel()
                device._heartbeat_handle = None
            device.powered = device_state["powered"]
            device.wifi = device_state["wifi"]
            device.dev_token = device_state["dev_token"]
            device.post_binding_token = device_state["post_binding_token"]
            device._pending_user_credential = device_state["pending_user_credential"]
            device.connected = device_state["connected"]
            device.last_error = device_state["last_error"]
            device.executed_commands = list(device_state["executed_commands"])
            device.schedule = dict(device_state["schedule"])
            device._last_schedule_check = device_state["last_schedule_check"]
            device.state = copy.deepcopy(device_state["state"])
            lan_id = device_state["lan_id"]
            if device._lan_id != lan_id:
                if device._lan_id is not None:
                    fleet.network.leave_lan(device.node_name)
                if lan_id is not None:
                    fleet.network.join_lan(
                        device.node_name, lan_id, household.wifi_passphrase
                    )
                device._lan_id = lan_id
            heartbeat_next = device_state["heartbeat_next"]
            if heartbeat_next is not None:
                device._heartbeat_handle = fleet.env.every(
                    device.design.heartbeat_interval,
                    device.heartbeat,
                    start_delay=heartbeat_next - now,
                )
            if device_state["listening"] and device.wifi is None:
                device.enter_provisioning_mode()
            app = household.app
            app.user_token = app_state["user_token"]
            app.devices = {
                device_id: KnownDevice(
                    known.device_id, known.model, known.post_binding_token
                )
                for device_id, known in app_state["devices"].items()
            }
        fleet.network.restore_trace_state(image.trace_state)
        fleet.env.rng.setstate(image.env_rng_state)
        fleet._attacker_token = image.attacker_token
        fleet.prebound = True
        obs = fleet.env.observer
        if image.metrics is not None and hasattr(obs, "metrics"):
            registry = MetricsRegistry()
            registry.merge_snapshot(image.metrics)
            obs.metrics = registry
        return fleet

    def bound_users(self) -> Dict[str, Optional[str]]:
        """device_id -> bound account, fleet-wide."""
        return {
            household.device.device_id: self.cloud.bound_user_of(
                household.device.device_id
            )
            for household in self.households
        }
