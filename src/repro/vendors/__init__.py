"""The ten studied vendors: design profiles and published ground truth."""

from repro.vendors.catalog import PAPER_ROWS_BY_VENDOR, PAPER_TABLE_III, PaperRow
from repro.vendors.profiles import (
    BELKIN,
    BROADLINK,
    DLINK,
    ELINK,
    KONKE,
    LIGHTSTORY,
    ORVIBO,
    OZWI,
    PHILIPS_HUE,
    STUDIED_VENDORS,
    TPLINK,
    VENDORS_BY_NAME,
    vendor,
)

__all__ = [
    "BELKIN",
    "BROADLINK",
    "DLINK",
    "ELINK",
    "KONKE",
    "LIGHTSTORY",
    "ORVIBO",
    "OZWI",
    "PAPER_ROWS_BY_VENDOR",
    "PAPER_TABLE_III",
    "PHILIPS_HUE",
    "PaperRow",
    "STUDIED_VENDORS",
    "TPLINK",
    "VENDORS_BY_NAME",
    "PaperRow",
    "vendor",
]
