"""The ten studied vendor designs (Table III, "Designs" columns).

Each profile is a :class:`~repro.cloud.policy.VendorDesign` whose knobs
were derived from the paper's per-device observations (Sections IV and
VI-B); DESIGN.md §4 walks through the derivation.  Vendor and product
names follow Table III.  Nothing in a profile states an attack outcome —
outcomes emerge from simulating the attacks against a cloud configured
with the profile.

ID-scheme assignments follow Section VI-A: five vendors use MAC-derived
IDs (vendor OUI + 3 free bytes), six print the ID on the device label,
and the camera vendors use short sequential serials like the incidents
the paper cites (7-digit and 6-digit).
"""

from __future__ import annotations

from typing import Dict, List

from repro.cloud.policy import BindSender, DeviceAuthMode, VendorDesign

BELKIN = VendorDesign(
    name="Belkin",
    device_type="smart-plug",
    device_auth=DeviceAuthMode.DEV_TOKEN,
    device_auth_known=DeviceAuthMode.DEV_TOKEN,  # firmware reverse engineered
    firmware_available=True,
    unbind_checks_bound_user=False,  # A3-2: unbind does not verify the bound user
    id_scheme="mac-address",
    id_oui="94:10:3e",
    id_label_on_device=True,
)

BROADLINK = VendorDesign(
    name="BroadLink",
    device_type="smart-plug",
    device_auth=DeviceAuthMode.DEV_TOKEN,
    device_auth_known=None,  # "O": no firmware, status design undetermined
    firmware_available=False,
    id_scheme="mac-address",
    id_oui="78:0f:77",
)

KONKE = VendorDesign(
    name="KONKE",
    device_type="smart-socket",
    device_auth=DeviceAuthMode.DEV_TOKEN,
    device_auth_known=DeviceAuthMode.DEV_TOKEN,  # inferred from attack behaviour
    firmware_available=False,
    unbind_supported=False,           # N.A.: no revocation endpoint at all
    rebind_replaces_existing=True,    # a new binding replaces the previous one
    id_scheme="serial-number",
    id_serial_digits=8,
)

LIGHTSTORY = VendorDesign(
    name="Lightstory",
    device_type="smart-plug",
    device_auth=DeviceAuthMode.DEV_TOKEN,
    device_auth_known=DeviceAuthMode.DEV_TOKEN,  # documented in the vendor API
    firmware_available=False,
    id_scheme="serial-number",
    id_serial_digits=8,
    id_label_on_device=True,
)

ORVIBO = VendorDesign(
    name="Orvibo",
    device_type="smart-plug",
    device_auth=DeviceAuthMode.DEV_TOKEN,
    device_auth_known=None,  # "O"
    firmware_available=False,
    unbind_checks_bound_user=False,  # A3-2
    id_scheme="mac-address",
    id_oui="ac:cf:23",
)

OZWI = VendorDesign(
    name="OZWI",
    device_type="ip-camera",
    device_auth=DeviceAuthMode.DEV_ID,
    device_auth_known=DeviceAuthMode.DEV_ID,  # confirmed via binding attacks
    firmware_available=False,                 # A1 "O": cannot craft device msgs
    id_scheme="serial-number",
    id_serial_digits=7,                       # the 7-digit camera incident
    id_label_on_device=True,
)

PHILIPS_HUE = VendorDesign(
    name="Philips Hue",
    device_type="bulb-bridge",
    device_auth=DeviceAuthMode.DEV_TOKEN,
    device_auth_known=None,  # "O"
    firmware_available=False,
    ip_match_required=True,        # button press + source-IP comparison
    bind_window_seconds=30.0,      # "within 30 seconds"
    id_scheme="mac-address",
    id_oui="00:17:88",
)

TPLINK = VendorDesign(
    name="TP-LINK",
    device_type="smart-bulb",
    device_auth=DeviceAuthMode.DEV_ID,
    device_auth_known=DeviceAuthMode.DEV_ID,  # firmware reverse engineered
    firmware_available=True,
    status_yields_user_data=False,  # forged status accepted, but A1 still failed
    bind_sender=BindSender.DEVICE,  # the one device-initiated binding
    bind_requires_online_device=True,
    unbind_accepts_bare_dev_id=True,      # Type-2 Unbind:DevId (A3-1)
    single_connection_per_device=True,    # new device connection evicts old (A3-4)
    id_scheme="mac-address",
    id_oui="50:c7:bf",
    id_label_on_device=True,
)

ELINK = VendorDesign(
    name="E-Link Smart",
    device_type="ip-camera",
    device_auth=DeviceAuthMode.DEV_ID,
    device_auth_known=DeviceAuthMode.DEV_ID,  # confirmed via hijacking attack
    firmware_available=False,                 # A1 "O"
    bind_requires_online_device=True,
    rebind_replaces_existing=True,            # new Bind replaces the binding (A4-1)
    id_scheme="serial-number",
    id_serial_digits=6,                       # the 6-digit baby-monitor incident
    id_label_on_device=True,
)

DLINK = VendorDesign(
    name="D-LINK",
    device_type="smart-plug",
    device_auth=DeviceAuthMode.DEV_ID,
    device_auth_known=DeviceAuthMode.DEV_ID,  # firmware reverse engineered
    firmware_available=True,
    status_yields_user_data=True,             # A1 demonstrated on this device
    post_binding_token=True,                  # post-binding token blocks hijack
    id_scheme="serial-number",
    id_serial_digits=10,
    id_label_on_device=True,
)

#: Table III row order.
STUDIED_VENDORS: List[VendorDesign] = [
    BELKIN,
    BROADLINK,
    KONKE,
    LIGHTSTORY,
    ORVIBO,
    OZWI,
    PHILIPS_HUE,
    TPLINK,
    ELINK,
    DLINK,
]

VENDORS_BY_NAME: Dict[str, VendorDesign] = {v.name: v for v in STUDIED_VENDORS}


def vendor(name: str) -> VendorDesign:
    """Look up one of the ten studied designs by Table III name."""
    try:
        return VENDORS_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown vendor {name!r}; choose from {sorted(VENDORS_BY_NAME)}"
        ) from None
