"""Table III ground truth: the paper's published evaluation cells.

The reproduction *computes* its Table III by running every attack
against every vendor profile (``repro.analysis.evaluator``); this module
records what the paper printed, so tests can assert cell-for-cell
agreement.  Cell vocabulary:

* ``"yes"`` — attack successfully launched (paper: check mark)
* ``"no"`` — attack failed to launch (paper: cross)
* ``"O"`` — unable to confirm due to firmware challenges
* ``"N.A."`` — not applicable
* A3/A4 cells name the successful variants (e.g. ``"A3-1 & A3-4"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class PaperRow:
    """One published row of Table III."""

    index: int
    vendor: str
    device_type: str
    status: str      # "DevToken" | "DevId" | "O"
    bind: str        # "Sent by the app" | "Sent by the device"
    unbind: str      # e.g. "(DevId,UserToken)" | "N.A." | "... & DevId"
    a1: str
    a2: str
    a3: str
    a4: str


PAPER_TABLE_III: Tuple[PaperRow, ...] = (
    PaperRow(1, "Belkin", "Smart Plug", "DevToken", "Sent by the app",
             "(DevId,UserToken)", "no", "yes", "A3-2", "no"),
    PaperRow(2, "BroadLink", "Smart Plug", "O", "Sent by the app",
             "(DevId,UserToken)", "O", "yes", "no", "no"),
    PaperRow(3, "KONKE", "Smart Socket", "DevToken", "Sent by the app",
             "N.A.", "no", "no", "A3-3", "no"),
    PaperRow(4, "Lightstory", "Smart Plug", "DevToken", "Sent by the app",
             "(DevId,UserToken)", "no", "yes", "no", "no"),
    PaperRow(5, "Orvibo", "Smart Plug", "O", "Sent by the app",
             "(DevId,UserToken)", "O", "yes", "A3-2", "no"),
    PaperRow(6, "OZWI", "IP Camera", "DevId", "Sent by the app",
             "(DevId,UserToken)", "O", "yes", "no", "A4-2"),
    PaperRow(7, "Philips Hue", "Smart Bulb", "O", "Sent by the app",
             "(DevId,UserToken)", "O", "no", "no", "no"),
    PaperRow(8, "TP-LINK", "Smart Bulb", "DevId", "Sent by the device",
             "(DevId,UserToken) & DevId", "no", "no", "A3-1 & A3-4", "A4-3"),
    PaperRow(9, "E-Link Smart", "IP Camera", "DevId", "Sent by the app",
             "(DevId,UserToken)", "O", "no", "no", "A4-1"),
    PaperRow(10, "D-LINK", "Smart Plug", "DevId", "Sent by the app",
             "(DevId,UserToken)", "yes", "yes", "no", "no"),
)

PAPER_ROWS_BY_VENDOR: Dict[str, PaperRow] = {row.vendor: row for row in PAPER_TABLE_III}
