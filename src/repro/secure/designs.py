"""Reference secure designs (the paper's recommendations, Section VII).

Three baselines, each published with full protocol knowledge
(``firmware_available=True`` — security must not rest on obscurity):

* :data:`SECURE_DEVTOKEN` — the paper's "more promising approach":
  dynamic device tokens requested by the user and delivered locally,
  strict revocation checks, post-binding authorization.
* :data:`SECURE_CAPABILITY` — SmartThings-style capability binding: the
  BindToken is the authority and must travel through the device,
  proving local co-presence (ownership confirmation).
* :data:`SECURE_PUBKEY` — the AWS/IBM/Google infrastructure design:
  per-device key pairs, every device message signed.
"""

from __future__ import annotations

from typing import List

from repro.cloud.policy import BindSchema, BindSender, DeviceAuthMode, VendorDesign

SECURE_DEVTOKEN = VendorDesign(
    name="Secure-DevToken",
    device_type="smart-plug",
    device_auth=DeviceAuthMode.DEV_TOKEN,
    device_auth_known=DeviceAuthMode.DEV_TOKEN,
    firmware_available=True,
    post_binding_token=True,
    id_scheme="random-hex",
)

SECURE_CAPABILITY = VendorDesign(
    name="Secure-Capability",
    device_type="smart-plug",
    device_auth=DeviceAuthMode.DEV_TOKEN,
    device_auth_known=DeviceAuthMode.DEV_TOKEN,
    firmware_available=True,
    bind_schema=BindSchema.CAPABILITY,
    bind_sender=BindSender.DEVICE,
    id_scheme="random-hex",
)

SECURE_PUBKEY = VendorDesign(
    name="Secure-PubKey",
    device_type="smart-plug",
    device_auth=DeviceAuthMode.PUBKEY,
    device_auth_known=DeviceAuthMode.PUBKEY,
    firmware_available=True,
    post_binding_token=True,
    id_scheme="random-hex",
)

SECURE_BASELINES: List[VendorDesign] = [
    SECURE_DEVTOKEN,
    SECURE_CAPABILITY,
    SECURE_PUBKEY,
]
