"""Reference secure binding designs and their verification."""

from repro.secure.designs import (
    SECURE_BASELINES,
    SECURE_CAPABILITY,
    SECURE_DEVTOKEN,
    SECURE_PUBKEY,
)
from repro.secure.verifier import SecurityVerdict, verify_all_baselines, verify_design

__all__ = [
    "SECURE_BASELINES",
    "SECURE_CAPABILITY",
    "SECURE_DEVTOKEN",
    "SECURE_PUBKEY",
    "SecurityVerdict",
    "verify_all_baselines",
    "verify_design",
]
