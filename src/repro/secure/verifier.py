"""Verify that the recommended designs defeat the whole attack battery.

The paper's assessments (Sections IV and VII) claim that dynamic device
tokens, capability-based binding and proper revocation checks close the
A1–A4 surfaces.  The verifier runs the *same* attack battery used for
Table III against the secure baselines and demands zero successes —
including no UNCONFIRMED cells, since the baselines publish their
protocol (no security through firmware obscurity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.attacks.results import AttackReport, Outcome
from repro.attacks.runner import run_all_attacks
from repro.cloud.policy import BindSchema, VendorDesign
from repro.secure.designs import SECURE_BASELINES


def expected_surviving_attacks(design: VendorDesign) -> List[str]:
    """Which attacks a design is *expected* to leave open.

    Section IV-B: a random (post-binding or device) token "cannot
    prevent the forgery of binding messages" — so any ACL-based design,
    however strong its device authentication, still admits binding
    occupation (A2).  Only capability-based binding, where the BindToken
    must travel through the device, closes it.
    """
    if design.bind_schema is BindSchema.CAPABILITY:
        return []
    return ["A2"]


@dataclass
class SecurityVerdict:
    """Attack battery results for one secure design."""

    design: VendorDesign
    reports: Dict[str, AttackReport] = field(default_factory=dict)

    @property
    def all_defeated(self) -> bool:
        return not self.surviving_attacks()

    @property
    def matches_expectation(self) -> bool:
        """The design leaves open exactly what the paper says it must."""
        return self.surviving_attacks() == expected_surviving_attacks(self.design)

    @property
    def no_hijack_or_data_leak(self) -> bool:
        """The strong claim all three baselines must satisfy."""
        survivors = set(self.surviving_attacks())
        return not survivors & {"A1", "A3-1", "A3-2", "A3-3", "A3-4",
                                "A4-1", "A4-2", "A4-3"}

    def surviving_attacks(self) -> List[str]:
        return [
            attack_id
            for attack_id, report in self.reports.items()
            if report.outcome not in (Outcome.FAILED, Outcome.NOT_APPLICABLE)
        ]

    def render(self) -> str:
        """Verdict plus one line per attack outcome."""
        survivors = self.surviving_attacks()
        if not survivors:
            verdict = "SECURE (all attacks defeated)"
        elif self.matches_expectation:
            verdict = (
                f"as designed (ACL binding leaves {' ,'.join(survivors)} open; "
                "see Section IV-B)"
            )
        else:
            verdict = f"VULNERABLE ({', '.join(survivors)})"
        lines = [f"{self.design.name}: {verdict}"]
        for attack_id, report in self.reports.items():
            lines.append(f"  {attack_id:<5} {report.outcome.value:<9} {report.reason}")
        return "\n".join(lines)


def verify_design(design: VendorDesign, seed: int = 0) -> SecurityVerdict:
    """Run the full battery against one design."""
    return SecurityVerdict(design, run_all_attacks(design, seed=seed))


def verify_all_baselines(seed: int = 0) -> List[SecurityVerdict]:
    """Verify every shipped secure baseline."""
    return [verify_design(design, seed=seed) for design in SECURE_BASELINES]
