"""Scenario builder: a complete three-party world in one call.

A :class:`Deployment` reproduces the paper's experimental setup
(Section VI-A): one vendor cloud, a victim with her own home Wi-Fi,
phone, account and device, and an attacker with a *separate* access
point, phone, account — and, like the paper's authors, their own unit of
the same product ("for each pair, we assume one device belongs to the
victim, and the other one belongs to the attacker").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.app.mobile import MobileApp
from repro.cloud.policy import DeviceAuthMode, VendorDesign
from repro.cloud.service import CloudService
from repro.core.errors import ProtocolError, RequestRejected
from repro.device import DEVICE_CLASSES
from repro.device.base import DeviceFirmware
from repro.identity.device_ids import scheme_from_name
from repro.identity.keys import generate_keypair
from repro.net.network import Network
from repro.net.provisioning import ProvisioningAir
from repro.obs.observer import Observer
from repro.sim.environment import Environment


@dataclass
class Party:
    """One person in the experiment: account, phone/app, device, home."""

    role: str
    user_id: str
    password: str
    app: MobileApp
    device: DeviceFirmware
    lan_id: str
    ssid: str
    wifi_passphrase: str
    location: str


class Deployment:
    """A fully wired world: cloud + victim + attacker."""

    def __init__(
        self,
        design: VendorDesign,
        seed: int = 0,
        observer: Optional[Observer] = None,
    ) -> None:
        self.design = design
        self.env = Environment(seed=seed, observer=observer)
        self.network = Network(self.env)
        self.air = ProvisioningAir()
        self.cloud = CloudService(self.env, self.network, design)

        id_scheme = scheme_from_name(
            design.id_scheme, oui=design.id_oui, digits=design.id_serial_digits
        )
        self.id_scheme = id_scheme
        self.victim = self._build_party(
            role="victim",
            user_id="alice@example.com",
            password="alice-pw-123",
            lan_id="lan:victim-home",
            ssid="victim-wifi",
            wifi_passphrase="correct horse battery",
            public_ip="203.0.113.10",
            subnet="192.168.1",
            location="home:victim",
        )
        self.attacker_party = self._build_party(
            role="attacker",
            user_id="mallory@example.com",
            password="mallory-pw-456",
            lan_id="lan:attacker-lab",
            ssid="attacker-ap",
            wifi_passphrase="attacker ap pass",
            public_ip="198.51.100.77",
            subnet="192.168.9",
            location="lab:attacker",
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _build_party(
        self,
        role: str,
        user_id: str,
        password: str,
        lan_id: str,
        ssid: str,
        wifi_passphrase: str,
        public_ip: str,
        subnet: str,
        location: str,
    ) -> Party:
        design = self.design
        self.network.create_lan(lan_id, ssid, wifi_passphrase, public_ip, subnet)
        self.cloud.accounts.register(user_id, password, self.env.now)

        device_id = self.id_scheme.issue(self.env.rng)
        keypair = None
        if design.device_auth is DeviceAuthMode.PUBKEY:
            keypair = generate_keypair(
                self.env.rng.fork(f"keys-{device_id}"), device_id
            )
            self.cloud.manufacture_device(device_id, design.device_type, keypair.public)
        else:
            self.cloud.manufacture_device(device_id, design.device_type)

        device_class = DEVICE_CLASSES[design.device_type]
        device = device_class(
            env=self.env,
            network=self.network,
            air=self.air,
            design=design,
            device_id=device_id,
            location=location,
            keypair=keypair,
            node_name=f"device:{role}",
        )
        app = MobileApp(
            env=self.env,
            network=self.network,
            air=self.air,
            design=design,
            user_id=user_id,
            password=password,
            location=location,
            node_name=f"app:{role}",
            cellular_ip=None,
        )
        app.join_wifi(lan_id, wifi_passphrase)
        return Party(
            role, user_id, password, app, device, lan_id, ssid, wifi_passphrase, location
        )

    # ------------------------------------------------------------------
    # extra devices (a user can manage several devices, Section III-B)
    # ------------------------------------------------------------------

    def add_victim_device(self, device_type: Optional[str] = None,
                          label: str = "extra") -> DeviceFirmware:
        """Manufacture a second device for the victim's home.

        Used by multi-device scenarios (e.g. the IFTTT cascade: a
        temperature sensor driving an AC plug).  The returned device is
        factory fresh; run ``setup_victim_device`` to bind it.
        """
        design = self.design
        device_id = self.id_scheme.issue(self.env.rng)
        keypair = None
        if design.device_auth is DeviceAuthMode.PUBKEY:
            keypair = generate_keypair(self.env.rng.fork(f"keys-{device_id}"), device_id)
            self.cloud.manufacture_device(device_id, device_type or design.device_type,
                                          keypair.public)
        else:
            self.cloud.manufacture_device(device_id, device_type or design.device_type)
        from repro.device import DEVICE_CLASSES as _CLASSES

        device_class = _CLASSES[device_type or design.device_type]
        return device_class(
            env=self.env,
            network=self.network,
            air=self.air,
            design=design,
            device_id=device_id,
            location=self.victim.location,
            keypair=keypair,
            node_name=f"device:victim-{label}",
        )

    def setup_victim_device(self, device: DeviceFirmware) -> bool:
        """Run the Figure 1 flow for an extra victim device."""
        party = self.victim
        if party.app.user_token is None:
            party.app.login()
        device.power_on()
        party.app.provision_wifi(party.ssid, party.wifi_passphrase)
        try:
            party.app.local_configure(device)
        except RequestRejected:
            return False
        if self.design.ip_match_required:
            device.press_button()
        bound = party.app.bind_device(device)
        self.run_heartbeats(2)
        return bound

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------

    def run(self, seconds: float) -> None:
        """Advance the whole world."""
        self.env.run_for(seconds)

    def run_until(self, time: float) -> None:
        """Advance the whole world to absolute virtual *time*."""
        self.env.run_until(time)

    def run_heartbeats(self, count: int = 2) -> None:
        """Advance long enough for *count* device heartbeats."""
        self.run(self.design.heartbeat_interval * count + 0.5)

    # ------------------------------------------------------------------
    # canonical flows
    # ------------------------------------------------------------------

    def setup_party(self, party: Party) -> bool:
        """Run the full Figure 1 flow for one party's own device."""
        with self.env.observer.span(
            f"setup:{party.role}", kind="phase", device=party.device.device_id
        ):
            return self._setup_party(party)

    def _setup_party(self, party: Party) -> bool:
        app, device = party.app, party.device
        if app.user_token is None:
            app.login()
        device.power_on()
        app.provision_wifi(party.ssid, party.wifi_passphrase)
        configure_failed = False
        try:
            app.local_configure(device)
        except RequestRejected:
            configure_failed = True
        if self.design.ip_match_required:
            # Device #7's flow: press the physical button, then bind
            # within the 30-second window.
            device.press_button()
        bound = app.bind_device(device)
        if bound and configure_failed:
            # Setup wizards retry configuration once the binding exists
            # (matters when recovering a device from a foreign binding).
            try:
                app.local_configure(device)
                configure_failed = False
            except RequestRejected:
                pass
        self.run_heartbeats(2)
        return bound and not configure_failed and self.victim_can_control(party)

    def victim_full_setup(self) -> bool:
        """Set up the victim's device; returns overall success."""
        return self.setup_party(self.victim)

    def attacker_own_setup(self) -> bool:
        """The attacker sets up their own unit (used for traffic analysis)."""
        return self.setup_party(self.attacker_party)

    def victim_partial_setup_online_unbound(self) -> None:
        """Stop the victim's setup in the *online* state (A4-2's window):
        device provisioned and authenticated, binding not yet created."""
        party = self.victim
        if party.app.user_token is None:
            party.app.login()
        party.device.power_on()
        party.app.provision_wifi(party.ssid, party.wifi_passphrase)
        try:
            party.app.local_configure(party.device)
        except RequestRejected:
            pass
        self.run_heartbeats(1)

    # ------------------------------------------------------------------
    # ground truth
    # ------------------------------------------------------------------

    def shadow_state(self, party: Optional[Party] = None) -> str:
        party = party or self.victim
        return self.cloud.shadow_state(party.device.device_id)

    def bound_user(self, party: Optional[Party] = None) -> Optional[str]:
        party = party or self.victim
        return self.cloud.bound_user_of(party.device.device_id)

    def victim_can_control(self, party: Optional[Party] = None) -> bool:
        """Can the party actually operate their device end to end?"""
        party = party or self.victim
        marker = f"ping-{self.env.now:.3f}"
        try:
            party.app.control(party.device.device_id, marker)
        except (RequestRejected, ProtocolError):
            return False
        before = len(party.device.executed_commands)
        self.run_heartbeats(1)
        executed = [
            c for c in party.device.executed_commands[before:] if c.command == marker
        ]
        return bool(executed)

    def device_executed_for(self, user_id: str, party: Optional[Party] = None) -> bool:
        """Did the party's *physical* device run a command issued by *user_id*?"""
        party = party or self.victim
        return any(c.issued_by == user_id for c in party.device.executed_commands)


def build_deployment(
    design: VendorDesign, seed: int = 0, observer: Optional[Observer] = None
) -> Deployment:
    """Convenience factory mirroring the examples' usage."""
    return Deployment(design, seed=seed, observer=observer)
