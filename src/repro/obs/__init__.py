"""Fleet-scale observability: tracing, metrics, profiling, SLO hooks.

The subsystem has five small parts (see ``docs/observability.md`` and
``docs/slo.md``):

* :mod:`repro.obs.observer` — the :class:`Observer` seam every layer is
  instrumented against, with a shared no-op :data:`NULL_OBSERVER`;
* :mod:`repro.obs.tracer` — hierarchical :class:`Span` trees on the
  virtual clock (scenario → phase → message exchange);
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges and histograms;
* :mod:`repro.obs.profiler` — wall-clock :class:`Profiler` for the hot
  paths;
* :mod:`repro.obs.slo` — SLO-grade request accounting: RED series with
  mergeable :class:`LatencySketch` quantiles and exemplars, the
  deterministic availability series, burn-rate/breach evaluation.

:class:`Observability` (:mod:`repro.obs.runtime`) bundles them all and
is what callers actually pass around::

    from repro.obs import Observability
    from repro.fleet import FleetDeployment
    from repro.attacks.campaign import campaign_binding_dos
    from repro.vendors import vendor

    obs = Observability()
    fleet = FleetDeployment(vendor("OZWI"), households=20, observer=obs)
    campaign_binding_dos(fleet, max_probes=64)
    print(render_report(obs))          # span tree + metrics + profile
    assert obs.matches_audit(fleet.cloud.audit)
"""

from repro.obs.export import render_red, render_report, snapshot, to_json
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.profiler import Profiler
from repro.obs.runtime import Observability
from repro.obs.slo import (
    LatencySketch,
    RedAccounting,
    SLOSpec,
    SLOTracker,
    evaluate_slo,
)
from repro.obs.tracer import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatencySketch",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "Observability",
    "Observer",
    "Profiler",
    "RedAccounting",
    "SLOSpec",
    "SLOTracker",
    "Span",
    "Tracer",
    "evaluate_slo",
    "render_red",
    "render_report",
    "snapshot",
    "to_json",
]
