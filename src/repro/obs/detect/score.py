"""Precision / recall / time-to-detect against campaign ground truth.

The simulation gives us perfect labels: campaign attack traffic
originates at known attacker nodes, and the network stamps the true
sending node on every packet — so a forensic event is *malicious* iff
its ``source`` is an attacker node, regardless of what identity the
message claimed.  Alerts are scored the same way (an alert implicating
an attacker node is a true positive), and a malicious event counts as
*covered* when some true alert cites its trace id as evidence.

All numbers needed to recompute the ratios are kept in the score dict,
so :func:`merge_detection` can fold per-shard scores by summing counts
and re-deriving precision/recall — deterministically, in shard order,
independent of worker count.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.detect.alerts import Alert
from repro.obs.detect.timeline import ForensicEvent

#: The attacker node names used by ``repro.attacks`` campaigns and
#: scenarios; ground-truth labelling keys on these (the network stamps
#: the true sender — identity claims in messages are irrelevant here).
DEFAULT_ATTACKER_SOURCES = frozenset(
    {"attacker:host", "app:attacker", "device:attacker"}
)


def score_detection(
    events: Sequence[ForensicEvent],
    alerts: Sequence[Alert],
    attacker_sources: Optional[Iterable[str]] = None,
) -> Dict[str, Any]:
    """Score *alerts* against the ground-truth labelling of *events*."""
    sources = frozenset(
        attacker_sources if attacker_sources is not None else DEFAULT_ATTACKER_SOURCES
    )
    malicious = [e for e in events if e.source in sources]
    benign_count = len(events) - len(malicious)

    true_alerts = [a for a in alerts if a.source in sources]
    false_alerts = [a for a in alerts if a.source not in sources]

    cited = set()
    for alert in true_alerts:
        cited.update(alert.evidence)
    covered = sum(1 for e in malicious if e.trace_id and e.trace_id in cited)

    first_malicious = min((e.time for e in malicious), default=None)
    first_true_alert = min((a.time for a in true_alerts), default=None)
    time_to_detect: Optional[float] = None
    if first_malicious is not None and first_true_alert is not None:
        time_to_detect = max(0.0, first_true_alert - first_malicious)

    by_rule: Dict[str, int] = {}
    by_severity: Dict[str, int] = {}
    for alert in alerts:
        by_rule[alert.rule] = by_rule.get(alert.rule, 0) + 1
        by_severity[alert.severity] = by_severity.get(alert.severity, 0) + 1

    score = {
        "events": len(events),
        "malicious_events": len(malicious),
        "benign_events": benign_count,
        "alerts": len(alerts),
        "true_alerts": len(true_alerts),
        "false_alerts": len(false_alerts),
        "covered_events": covered,
        "time_to_detect": time_to_detect,
        "alerts_by_rule": by_rule,
        "alerts_by_severity": by_severity,
    }
    return _with_ratios(score)


def merge_detection(
    per_shard: Sequence[Optional[Dict[str, Any]]]
) -> Optional[Dict[str, Any]]:
    """Fold per-shard detection scores into fleet-wide numbers.

    Counts sum; ratios are re-derived from the summed counts;
    time-to-detect is the earliest non-``None`` shard value (shard
    clocks all start at zero, so the minimum is the fleet's first
    detection).  ``None`` inputs (shards without detection) are skipped;
    all-``None`` input yields ``None``.
    """
    scores = [s for s in per_shard if s is not None]
    if not scores:
        return None
    count_keys = (
        "events",
        "malicious_events",
        "benign_events",
        "alerts",
        "true_alerts",
        "false_alerts",
        "covered_events",
    )
    merged: Dict[str, Any] = {key: 0 for key in count_keys}
    by_rule: Dict[str, int] = {}
    by_severity: Dict[str, int] = {}
    ttds: List[float] = []
    for score in scores:
        for key in count_keys:
            merged[key] += int(score.get(key, 0))
        for rule, count in score.get("alerts_by_rule", {}).items():
            by_rule[rule] = by_rule.get(rule, 0) + count
        for severity, count in score.get("alerts_by_severity", {}).items():
            by_severity[severity] = by_severity.get(severity, 0) + count
        if score.get("time_to_detect") is not None:
            ttds.append(float(score["time_to_detect"]))
    merged["alerts_by_rule"] = dict(sorted(by_rule.items()))
    merged["alerts_by_severity"] = dict(sorted(by_severity.items()))
    merged["time_to_detect"] = min(ttds) if ttds else None
    return _with_ratios(merged)


def _with_ratios(score: Dict[str, Any]) -> Dict[str, Any]:
    """Derive precision / recall / FP-rate from the counts in place."""
    alerts = score["alerts"]
    malicious = score["malicious_events"]
    benign = score["benign_events"]
    score["precision"] = (score["true_alerts"] / alerts) if alerts else 1.0
    score["recall"] = (score["covered_events"] / malicious) if malicious else 1.0
    score["false_positive_rate"] = (
        score["false_alerts"] / benign if benign else 0.0
    )
    return score


def render_score(score: Dict[str, Any], indent: str = "  ") -> str:
    """Multi-line human rendering of one detection score dict."""
    ttd = score.get("time_to_detect")
    lines = [
        f"{indent}events: {score['events']} "
        f"({score['malicious_events']} malicious, {score['benign_events']} benign)",
        f"{indent}alerts: {score['alerts']} "
        f"({score['true_alerts']} true, {score['false_alerts']} false)",
        f"{indent}precision: {score['precision']:.3f}  "
        f"recall: {score['recall']:.3f}  "
        f"fp-rate: {score['false_positive_rate']:.4f}",
        f"{indent}time-to-detect: "
        + (f"{ttd:.3f}s" if ttd is not None else "undetected"),
    ]
    if score.get("alerts_by_rule"):
        rules = ", ".join(
            f"{rule}={count}"
            for rule, count in sorted(score["alerts_by_rule"].items())
        )
        lines.append(f"{indent}by rule: {rules}")
    return "\n".join(lines)
