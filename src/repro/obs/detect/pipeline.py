"""The detection pipeline: wiring detectors to a live cloud's timeline.

:class:`DetectionPipeline` is a strictly read-only consumer: it
subscribes to the cloud's :class:`~repro.obs.detect.timeline.ForensicTimeline`
as a sink, streams every live event through the rule set, and collects
the alerts.  It never touches cloud stores, never consumes the
simulation RNG, and never changes a response — attaching a pipeline to
a same-seed world must leave that world bit-identical.

Events are deduplicated by sequence number so the pipeline composes
with chaos plans: a :class:`~repro.chaos.faults.CloudRestart` replays
the journal into the recovered cloud's timeline (same seqs), and
:meth:`catch_up` re-reads that store without double-alerting.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.detect.alerts import Alert
from repro.obs.detect.detectors import Detector, default_detectors
from repro.obs.detect.timeline import ForensicEvent, ForensicTimeline


class DetectionPipeline:
    """Streams forensic events through detectors; accumulates alerts."""

    def __init__(self, detectors: Optional[List[Detector]] = None) -> None:
        self.detectors = detectors if detectors is not None else default_detectors()
        self.alerts: List[Alert] = []
        self._next_seq = 0
        self._attached: Optional[ForensicTimeline] = None

    def process(self, event: ForensicEvent) -> None:
        """Feed one event to every detector (seq-deduplicated)."""
        if event.seq < self._next_seq:
            return
        self._next_seq = event.seq + 1
        for detector in self.detectors:
            self.alerts.extend(detector.process(event))

    def attach(self, cloud: Any) -> None:
        """Consume *cloud*'s existing timeline, then stream new events."""
        self.detach()
        timeline: ForensicTimeline = cloud.forensics
        for event in timeline.events():
            self.process(event)
        timeline.add_sink(self.process)
        self._attached = timeline

    def detach(self) -> None:
        """Stop streaming from the currently attached timeline, if any."""
        if self._attached is not None:
            self._attached.remove_sink(self.process)
            self._attached = None

    def catch_up(self, cloud: Any) -> None:
        """Re-read *cloud*'s timeline, processing only unseen events.

        Chaos restarts replace the cloud object (journal recovery builds
        a successor), so the harness calls this after a run to pick up
        events recorded by whatever cloud finished the campaign.
        """
        timeline: ForensicTimeline = cloud.forensics
        for event in timeline.events():
            self.process(event)

    def summary(self) -> Dict[str, Any]:
        """Picklable alert summary (counts by rule and severity)."""
        by_rule: Dict[str, int] = {}
        by_severity: Dict[str, int] = {}
        for alert in self.alerts:
            by_rule[alert.rule] = by_rule.get(alert.rule, 0) + 1
            by_severity[alert.severity] = by_severity.get(alert.severity, 0) + 1
        return {
            "alerts": len(self.alerts),
            "by_rule": by_rule,
            "by_severity": by_severity,
        }
