"""Per-shadow forensic timelines: the cloud's evidence store.

Every binding-affecting exchange the cloud handles (Status, Bind,
Unbind, Control, DeviceFetch) is materialized here as one
:class:`ForensicEvent`: which device shadow it touched, who claimed to
send it, from which network origin, under which causal trace, and what
the binding looked like *before* the request ran.  The store is the
ninth :class:`~repro.cloud.state.protocol.RecordStoreBase` store —
durable, journaled, snapshot-v2 — because forensic evidence that
evaporates on a cloud restart is not evidence.

Recording is **always on** and read-only with respect to the world:
events are appended from data the handler path already computed, no RNG
is consumed, and no response changes.  Streaming consumers (the
detection pipeline) subscribe via :meth:`ForensicTimeline.add_sink`;
sinks fire only on *live* recording, never on journal replay or
snapshot restore, so a recovered cloud does not re-alert on history.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.cloud.state.protocol import Record, RecordStoreBase

#: A streaming consumer of live forensic events.
ForensicSink = Callable[["ForensicEvent"], None]

#: The message kinds that affect (or probe) a device shadow's binding.
WATCHED_KINDS = ("status", "bind", "unbind", "control", "fetch")

#: ForensicEvent field order (also the record/serialization order).
_EVENT_FIELDS = (
    "seq",
    "time",
    "device_id",
    "kind",
    "summary",
    "source",
    "origin_ip",
    "trace_id",
    "span_id",
    "outcome",
    "actor",
    "bound_before",
    "replaced",
)


class ForensicEvent:
    """One binding-affecting exchange, as the cloud saw it.

    ``source`` is the network node that sent the packet (unforgeable in
    the simulation: the network stamps it); ``actor`` is the *claimed*
    identity — the user resolved from the message's token, or the
    device id a device-credential message presented.  ``bound_before``
    is the binding's owner when the request arrived, which is what lets
    detectors judge a transition without replaying history.

    A ``__slots__`` record (one per watched exchange, always on, so
    allocation is on the cloud hot path); treat instances as immutable.

    ``decision_trace`` is *volatile* evidence: the PDP's ordered rule
    trail for the exchange (``rule:pass>rule:deny(code)``).  It rides on
    live events for streaming sinks and diagnostics but is deliberately
    excluded from ``_EVENT_FIELDS`` — identity, serialization, journal
    records and snapshots are unchanged by it, and replayed history
    comes back with an empty trail.
    """

    __slots__ = _EVENT_FIELDS + ("decision_trace",)

    def __init__(
        self,
        seq: int,
        time: float,
        device_id: str,
        kind: str,  # one of WATCHED_KINDS
        summary: str,  # paper-style message rendering (describe())
        source: str,  # sending network node
        origin_ip: str,  # observed source IP (post-NAT)
        trace_id: str,  # causal chain id ("" for direct store writes)
        span_id: str,
        outcome: str,  # "ok" or the rejection code
        actor: str,  # claimed identity ("" when unauthenticated)
        bound_before: str,  # binding owner before the request ("" if unbound)
        replaced: bool = False,  # did a Bind displace an existing owner?
        decision_trace: str = "",  # volatile PDP rule trail (live only)
    ) -> None:
        self.seq = seq
        self.time = time
        self.device_id = device_id
        self.kind = kind
        self.summary = summary
        self.source = source
        self.origin_ip = origin_ip
        self.trace_id = trace_id
        self.span_id = span_id
        self.outcome = outcome
        self.actor = actor
        self.bound_before = bound_before
        self.replaced = replaced
        self.decision_trace = decision_trace

    def _key(self) -> tuple:
        return tuple(getattr(self, name) for name in _EVENT_FIELDS)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ForensicEvent):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in _EVENT_FIELDS
        )
        return f"ForensicEvent({fields})"


class ForensicTimeline(RecordStoreBase):
    """Append-only, per-device ordered evidence of binding exchanges."""

    state_name = "forensics"
    durable = True

    def __init__(self) -> None:
        self._events: List[ForensicEvent] = []
        self._by_key: Dict[str, int] = {}
        self._by_device: Dict[str, List[int]] = {}
        self._sinks: List[ForensicSink] = []
        self._next_seq = 0

    # -- live recording ------------------------------------------------------

    def add_sink(self, sink: ForensicSink) -> None:
        """Subscribe a streaming consumer to future live events."""
        self._sinks.append(sink)

    def remove_sink(self, sink: ForensicSink) -> None:
        """Unsubscribe a consumer; unknown sinks are a no-op."""
        if sink in self._sinks:
            self._sinks.remove(sink)

    def has_sinks(self) -> bool:
        """Whether any live streaming consumer is subscribed."""
        return bool(self._sinks)

    def record(
        self,
        time: float,
        device_id: str,
        kind: str,
        summary: str,
        source: str,
        origin_ip: str,
        trace_id: str,
        span_id: str,
        outcome: str,
        actor: str,
        bound_before: str,
        replaced: bool = False,
        decision_trace: str = "",
    ) -> ForensicEvent:
        """Append one live event, journal it, and feed the sinks."""
        event = ForensicEvent(
            seq=self._next_seq,
            time=time,
            device_id=device_id,
            kind=kind,
            summary=summary,
            source=source,
            origin_ip=origin_ip,
            trace_id=trace_id,
            span_id=span_id,
            outcome=outcome,
            actor=actor,
            bound_before=bound_before,
            replaced=replaced,
            decision_trace=decision_trace,
        )
        self._append(event)
        # Lazy serialization: the record dict is only materialized when a
        # write-ahead journal is actually bound — the always-on unjournaled
        # case (every campaign world) pays just the churn bump.
        if self._journal_write is not None:
            self._record_put(self.to_record(event))
        else:
            self._note_mutation()
        if self._sinks:
            for sink in self._sinks:
                sink(event)
        return event

    # -- read access ---------------------------------------------------------

    def events(self) -> List[ForensicEvent]:
        """Every event in sequence order."""
        return list(self._events)

    def timeline(self, device_id: str) -> List[ForensicEvent]:
        """The ordered evidence for one device shadow."""
        return [self._events[i] for i in self._by_device.get(device_id, [])]

    def __len__(self) -> int:
        return len(self._events)

    # -- internals -----------------------------------------------------------

    def _append(self, event: ForensicEvent) -> None:
        key = self._key_for_seq(event.seq)
        if key in self._by_key:
            # Replay upsert of an already-present seq: evidence records
            # are immutable, so an idempotent overwrite keeps indices.
            self._events[self._by_key[key]] = event
        else:
            self._by_key[key] = len(self._events)
            self._events.append(event)
            self._by_device.setdefault(event.device_id, []).append(
                self._by_key[key]
            )
        self._next_seq = max(self._next_seq, event.seq + 1)

    @staticmethod
    def _key_for_seq(seq: int) -> str:
        return f"e:{seq:08d}"

    # -- StateStore protocol --------------------------------------------------

    def to_record(self, obj: Any) -> Record:
        """Encode one :class:`ForensicEvent` as a flat record."""
        return {name: getattr(obj, name) for name in _EVENT_FIELDS}

    def from_record(self, record: Record) -> Any:
        """Decode one record back into a :class:`ForensicEvent`."""
        return ForensicEvent(**record)

    def record_key(self, record: Record) -> str:
        """Events are keyed by zero-padded sequence number."""
        return self._key_for_seq(int(record["seq"]))

    def record_count(self) -> int:
        """Number of stored events."""
        return len(self._events)

    def snapshot_state(self) -> List[Record]:
        """Every event record, in sequence order (already sorted)."""
        return [self.to_record(event) for event in self._events]

    def apply_record(self, record: Record) -> Any:
        """Upsert one event (restore / journal replay / clone).

        Never fires sinks: replayed history is context for
        :meth:`~repro.obs.detect.pipeline.DetectionPipeline.catch_up`,
        not a fresh observation.
        """
        event = self.from_record(record)
        self._append(event)
        self._record_put(record)
        return event

    def discard_record(self, key: str) -> bool:
        """Refuse deletion: the timeline is append-only evidence."""
        return False

    def find_record(self, key: str) -> Optional[Record]:
        """O(1) lookup of one event record by its ``e:<seq>`` key."""
        index = self._by_key.get(key)
        return self.to_record(self._events[index]) if index is not None else None
