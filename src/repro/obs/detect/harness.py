"""Evaluation harness: score the detectors against labelled campaigns.

Maps the paper's Table II attack classes onto the fleet campaigns that
realize them (A1 shadow-probe, A2 binding-dos, A3 mass-unbind, A4
mass-rebind), runs each through the sharded parallel engine with a
read-only :class:`~repro.obs.detect.pipeline.DetectionPipeline`
attached, and reports precision / recall / time-to-detect per attack —
optionally under a chaos plan, where the false-positive rate under
brownouts and partitions is the interesting number.

Imported by the CLI and benchmarks only — never from
``repro.obs.detect.__init__`` (this module imports the parallel engine,
which imports the pipeline; importing it from the package would close
the cycle).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.chaos.campaign import ChaosSpec
from repro.cloud.policy import VendorDesign
from repro.core.errors import ConfigurationError
from repro.obs.detect.score import render_score
from repro.parallel.engine import ShardedCampaignResult, run_campaign

#: Table II attack class -> the fleet campaign that realizes it.
ATTACK_CAMPAIGNS = {
    "A1": "shadow-probe",
    "A2": "binding-dos",
    "A3": "mass-unbind",
    "A4": "mass-rebind",
}


def run_detection(
    design: VendorDesign,
    attacks: Sequence[str] = ("A1", "A2", "A3", "A4"),
    households: int = 12,
    max_probes: int = 32,
    workers: int = 1,
    seed: int = 0,
    shards: Optional[int] = None,
    run_seconds: float = 12.0,
    chaos: Optional[ChaosSpec] = None,
    trace_messages: bool = False,
    pool: bool = False,
    warm_start: bool = True,
) -> Dict[str, ShardedCampaignResult]:
    """Run each attack class's campaign with detection attached.

    Returns ``{attack_id: ShardedCampaignResult}`` in the order given;
    each result's ``.detection`` property is the merged score.

    With ``pool=True`` every attack's campaign runs through one
    persistent :class:`~repro.parallel.pool.WorkerPool`, so the A1/A3/A4
    deployed-fleet attacks share one warm-started world per shard
    instead of rebuilding it three times (A2 always builds cold — it
    attacks factory-fresh fleets).  With ``workers=1`` the same
    amortization happens in-process through a shared image cache.
    Results are bit-identical either way.
    """
    runs: Dict[str, ShardedCampaignResult] = {}
    campaign_kwargs = dict(
        households=households,
        max_probes=max_probes,
        workers=workers,
        seed=seed,
        shards=shards,
        run_seconds=run_seconds,
        trace_messages=trace_messages,
        chaos=chaos,
        detect=True,
    )
    for attack_id in attacks:
        if attack_id not in ATTACK_CAMPAIGNS:
            raise ConfigurationError(
                f"unknown attack class {attack_id!r}; "
                f"expected one of {sorted(ATTACK_CAMPAIGNS)}"
            )
    if pool and workers > 1:
        from repro.parallel.pool import WorkerPool

        with WorkerPool(workers=workers, warm_start=warm_start) as worker_pool:
            for attack_id in attacks:
                runs[attack_id] = run_campaign(
                    design,
                    campaign=ATTACK_CAMPAIGNS[attack_id],
                    worker_pool=worker_pool,
                    **campaign_kwargs,
                )
    else:
        from repro.parallel.protocol import WorldImageCache

        image_cache = WorldImageCache() if (pool or warm_start) and workers == 1 else None
        for attack_id in attacks:
            runs[attack_id] = run_campaign(
                design,
                campaign=ATTACK_CAMPAIGNS[attack_id],
                image_cache=image_cache,
                **campaign_kwargs,
            )
    return runs


def detection_matrix(
    runs: Dict[str, ShardedCampaignResult]
) -> Dict[str, Dict[str, Any]]:
    """The JSON-able per-attack score matrix benchmarks consume."""
    matrix: Dict[str, Dict[str, Any]] = {}
    for attack_id, result in runs.items():
        score = result.detection or {}
        matrix[attack_id] = {
            "campaign": result.campaign,
            "vendor": result.vendor,
            "households": result.report.households,
            "victims_denied": result.report.victims_denied,
            "precision": score.get("precision"),
            "recall": score.get("recall"),
            "false_positive_rate": score.get("false_positive_rate"),
            "time_to_detect": score.get("time_to_detect"),
            "alerts": score.get("alerts"),
            "alerts_by_rule": score.get("alerts_by_rule", {}),
            "malicious_events": score.get("malicious_events"),
            "events": score.get("events"),
        }
    return matrix


def render_detection(
    design: VendorDesign,
    runs: Dict[str, ShardedCampaignResult],
    chaos: Optional[ChaosSpec] = None,
) -> str:
    """Multi-line per-attack detection report for the CLI."""
    lines = [f"detection evaluation against {design.name}"]
    if chaos is not None:
        lines[0] += (
            f" under chaos plan {chaos.plan!r} (intensity {chaos.intensity:g})"
        )
    for attack_id, result in runs.items():
        campaign = result.campaign
        lines.append("")
        lines.append(
            f"{attack_id} ({campaign}): "
            f"{result.report.victims_denied}/{result.report.households} "
            f"victims, {result.report.ids_probed} probes"
        )
        score = result.detection
        if score is None:
            lines.append("  detection was not enabled for this run")
        else:
            lines.append(render_score(score))
    return "\n".join(lines)
