"""Defender-side detection: forensic timelines, detectors, scoring.

The paper's Table III observation is that *no* studied vendor surfaces
binding changes to anyone — attacks succeed silently.  This package is
the missing cloud-side vantage point, layered on the PR 1 observability
seam and the causal trace contexts every packet now carries:

* :mod:`repro.obs.detect.timeline` — :class:`ForensicTimeline`, the
  ninth cloud state store: per device shadow, the ordered sequence of
  binding-affecting exchanges with source identity, network origin and
  trace ids (journaled + snapshot-v2 like the rest);
* :mod:`repro.obs.detect.alerts` — the typed :class:`Alert` record;
* :mod:`repro.obs.detect.detectors` — streaming rule-based detectors
  for the Table II taxonomy (A1 shadow-data probes, A2 bind storms,
  A3 rogue unbinds, A4 rebind hijacks, plus ID-enumeration ramps);
* :mod:`repro.obs.detect.pipeline` — :class:`DetectionPipeline`, the
  read-only consumer wiring detectors to a live cloud's timeline;
* :mod:`repro.obs.detect.score` — precision / recall / time-to-detect
  against campaign ground truth, with a deterministic shard merge.

The evaluation harness (:mod:`repro.obs.detect.harness`) is imported
separately by the CLI — importing this package must stay cheap and
free of cycles (the parallel engine imports the pipeline).
"""

from repro.obs.detect.alerts import Alert
from repro.obs.detect.detectors import default_detectors
from repro.obs.detect.pipeline import DetectionPipeline
from repro.obs.detect.score import (
    DEFAULT_ATTACKER_SOURCES,
    merge_detection,
    score_detection,
)
from repro.obs.detect.timeline import ForensicEvent, ForensicTimeline

__all__ = [
    "Alert",
    "DEFAULT_ATTACKER_SOURCES",
    "DetectionPipeline",
    "ForensicEvent",
    "ForensicTimeline",
    "default_detectors",
    "merge_detection",
    "score_detection",
]
