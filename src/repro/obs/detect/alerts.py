"""Typed detector verdicts.

An :class:`Alert` is the unit of detector output: which rule fired, how
bad it is, which device and sending node it implicates, and — the part
that makes it *forensic* rather than anecdotal — the evidence trace ids
tying it back to the exact causal chains in the timeline.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Tuple

#: Alert severities, mildest first.
SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class Alert:
    """One detector verdict with its evidence chain."""

    rule: str  # detector rule name, e.g. "bind-storm"
    severity: str  # one of SEVERITIES
    time: float  # virtual time the rule fired
    device_id: str  # implicated shadow ("" for source-wide rules)
    source: str  # implicated sending node
    reason: str  # human-readable one-liner
    evidence: Tuple[str, ...] = ()  # trace ids of the triggering events

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (evidence becomes a list)."""
        data = asdict(self)
        data["evidence"] = list(self.evidence)
        return data

    def line(self) -> str:
        """One fixed-width log line for reports."""
        mark = {"info": "i", "warning": "?", "critical": "!"}.get(self.severity, "?")
        where = self.device_id or self.source
        return (
            f"{mark} [t={self.time:8.3f}] {self.rule:<16} {where:<22} "
            f"{self.reason}"
        )
