"""Streaming rule-based detectors over the forensic timeline.

Each detector consumes :class:`~repro.obs.detect.timeline.ForensicEvent`
objects in sequence order and emits :class:`~repro.obs.detect.alerts.Alert`
verdicts.  The rules map one-to-one onto the paper's Table II taxonomy:

* :class:`ShadowProbeDetector` (A1) — a device shadow whose data channel
  is suddenly spoken for by a *different* network node than the one that
  established it (forged Status/DeviceFetch data stealing/injection);
* :class:`BindStormDetector` (A2) — one source node binding (or trying
  to bind) many distinct devices: the DoS sweep signature;
* :class:`RogueUnbindDetector` (A3) — an Unbind for a bound device whose
  claimed actor is not the bound owner (bare-DevId resets included);
* :class:`RebindHijackDetector` (A4) — a Bind that displaces an existing
  owner, requested by someone who is not that owner;
* :class:`IdEnumerationDetector` — the A2/A4 precursor: one source
  ramping through many unknown device ids.

Detectors are deterministic (plain counters and insertion-ordered
dicts, no RNG, no wall clock) and read-only — they observe the
timeline, never the cloud.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.obs.detect.alerts import Alert
from repro.obs.detect.timeline import ForensicEvent


class Detector:
    """Base class: a named rule consuming events, producing alerts."""

    rule = "detector"

    def process(self, event: ForensicEvent) -> List[Alert]:
        """Consume one event; return any alerts it triggers."""
        raise NotImplementedError  # pragma: no cover - abstract


class ShadowProbeDetector(Detector):
    """A1: device-channel traffic from a node that never owned the channel.

    The first *accepted* Status per device pins the shadow's legitimate
    connection.  Any later Status or DeviceFetch for that device from a
    different node is a probe: critical if the cloud accepted it (the
    forgery worked — data stolen or injected), warning if it bounced.
    """

    rule = "shadow-probe"

    def __init__(self) -> None:
        self._channel: Dict[str, str] = {}

    def process(self, event: ForensicEvent) -> List[Alert]:
        """Pin channels on first Status; flag cross-source device traffic."""
        if event.kind not in ("status", "fetch") or not event.device_id:
            return []
        established = self._channel.get(event.device_id)
        if established is None:
            if event.kind == "status" and event.outcome == "ok":
                self._channel[event.device_id] = event.source
            return []
        if event.source == established:
            return []
        severity = "critical" if event.outcome == "ok" else "warning"
        verb = "accepted" if event.outcome == "ok" else "rejected"
        return [
            Alert(
                rule=self.rule,
                severity=severity,
                time=event.time,
                device_id=event.device_id,
                source=event.source,
                reason=(
                    f"{verb} {event.kind} from {event.source}, but the shadow's "
                    f"channel belongs to {established}"
                ),
                evidence=(event.trace_id,) if event.trace_id else (),
            )
        ]


class BindStormDetector(Detector):
    """A2: one source binding many distinct devices (DoS sweep).

    Below the threshold the detector stays silent but remembers the
    evidence traces; the crossing event emits one critical alert citing
    the whole ramp, and every further bind from that source emits a
    warning — so recall over a long storm approaches 1.0 while a
    household legitimately binding two or three devices never fires.
    """

    rule = "bind-storm"

    def __init__(self, threshold: int = 4) -> None:
        self.threshold = threshold
        self._devices: Dict[str, Set[str]] = {}
        self._evidence: Dict[str, List[str]] = {}
        self._fired: Set[str] = set()

    def process(self, event: ForensicEvent) -> List[Alert]:
        """Track per-source bind fan-out; alert at the threshold crossing."""
        if event.kind != "bind" or not event.device_id:
            return []
        devices = self._devices.setdefault(event.source, set())
        devices.add(event.device_id)
        evidence = self._evidence.setdefault(event.source, [])
        if event.trace_id:
            evidence.append(event.trace_id)
        if event.source in self._fired:
            return [
                Alert(
                    rule=self.rule,
                    severity="warning",
                    time=event.time,
                    device_id=event.device_id,
                    source=event.source,
                    reason=f"bind storm from {event.source} continues",
                    evidence=(event.trace_id,) if event.trace_id else (),
                )
            ]
        if len(devices) < self.threshold:
            return []
        self._fired.add(event.source)
        return [
            Alert(
                rule=self.rule,
                severity="critical",
                time=event.time,
                device_id=event.device_id,
                source=event.source,
                reason=(
                    f"{event.source} attempted binds against "
                    f"{len(devices)} distinct devices"
                ),
                evidence=tuple(evidence),
            )
        ]


class RogueUnbindDetector(Detector):
    """A3: an Unbind whose claimed actor is not the bound owner.

    Covers both shapes from Section IV-C: the bare-DevId reset (no
    authenticated actor at all) and a token-bearing request from the
    wrong account.  Critical when the cloud honoured it — the victim
    just lost their device — warning when policy stopped it.
    """

    rule = "rogue-unbind"

    def process(self, event: ForensicEvent) -> List[Alert]:
        """Flag unbinds of a bound device by anyone but the owner."""
        if event.kind != "unbind" or not event.bound_before:
            return []
        if event.actor == event.bound_before:
            return []
        severity = "critical" if event.outcome == "ok" else "warning"
        who = event.actor or "an unauthenticated sender"
        return [
            Alert(
                rule=self.rule,
                severity=severity,
                time=event.time,
                device_id=event.device_id,
                source=event.source,
                reason=(
                    f"unbind of {event.device_id} (owner {event.bound_before}) "
                    f"requested by {who} [{event.outcome}]"
                ),
                evidence=(event.trace_id,) if event.trace_id else (),
            )
        ]


class RebindHijackDetector(Detector):
    """A4: a Bind displacing an existing owner, by someone else.

    On ``rebind_replaces_existing`` designs the cloud *accepts* this —
    the paper's hijack — so an accepted displacement is critical; a
    rejected attempt still leaves a warning in the timeline.
    """

    rule = "rebind-hijack"

    def process(self, event: ForensicEvent) -> List[Alert]:
        """Flag binds over an existing binding by a different actor."""
        if event.kind != "bind" or not event.bound_before:
            return []
        if event.actor == event.bound_before:
            return []
        severity = "critical" if event.outcome == "ok" else "warning"
        took = "displaced" if event.outcome == "ok" else "tried to displace"
        who = event.actor or "an unauthenticated sender"
        return [
            Alert(
                rule=self.rule,
                severity=severity,
                time=event.time,
                device_id=event.device_id,
                source=event.source,
                reason=(
                    f"{who} {took} {event.bound_before}'s binding "
                    f"on {event.device_id}"
                ),
                evidence=(event.trace_id,) if event.trace_id else (),
            )
        ]


class IdEnumerationDetector(Detector):
    """One source probing many *unknown* device ids (enumeration ramp).

    The Section VIII observation that device ids are guessable makes
    this the precursor signature of every remote-binding sweep; the
    rule counts distinct unknown ids per source and fires once at the
    threshold, citing the accumulated traces.
    """

    rule = "id-enumeration"

    #: rejection codes meaning "that device id does not exist here"
    UNKNOWN_CODES = ("unknown-device", "unknown-device-id")

    def __init__(self, threshold: int = 8) -> None:
        self.threshold = threshold
        self._unknown_ids: Dict[str, Set[str]] = {}
        self._evidence: Dict[str, List[str]] = {}
        self._fired: Set[str] = set()

    def process(self, event: ForensicEvent) -> List[Alert]:
        """Count distinct unknown-id rejections per source; fire once."""
        if event.outcome not in self.UNKNOWN_CODES or not event.device_id:
            return []
        ids = self._unknown_ids.setdefault(event.source, set())
        ids.add(event.device_id)
        evidence = self._evidence.setdefault(event.source, [])
        if event.trace_id:
            evidence.append(event.trace_id)
        if event.source in self._fired or len(ids) < self.threshold:
            return []
        self._fired.add(event.source)
        return [
            Alert(
                rule=self.rule,
                severity="warning",
                time=event.time,
                device_id="",
                source=event.source,
                reason=(
                    f"{event.source} probed {len(ids)} distinct unknown "
                    f"device ids"
                ),
                evidence=tuple(evidence),
            )
        ]


def default_detectors() -> List[Detector]:
    """The standard rule set covering the Table II taxonomy."""
    return [
        ShadowProbeDetector(),
        BindStormDetector(),
        RogueUnbindDetector(),
        RebindHijackDetector(),
        IdEnumerationDetector(),
    ]
