"""The instrumentation seam: a no-op :class:`Observer` protocol.

Every instrumented layer (scheduler, cloud, attacks, fleet) talks to the
world through this interface instead of importing the tracer or metrics
registry directly.  The default implementation does nothing, and the
shared :data:`NULL_OBSERVER` singleton is what every
:class:`~repro.sim.environment.Environment` carries unless a caller
passes a real observer — so uninstrumented runs pay only the cost of a
handful of empty method calls per *batch* of work, never per event.

A real implementation lives in :mod:`repro.obs.runtime`
(:class:`~repro.obs.runtime.Observability`), which fans the hooks out to
a :class:`~repro.obs.tracer.Tracer`, a
:class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.profiler.Profiler`.
"""

from __future__ import annotations

from typing import Any, ContextManager, Iterator


class _NullContext:
    """A reusable do-nothing context manager (shared singleton)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> None:
        return None


#: Shared no-op context manager returned by the null span/profile hooks.
NULL_CONTEXT = _NullContext()


class Observer:
    """Base observer: every hook is a no-op.

    Subclass and override the hooks you care about.  Hook call sites are
    chosen so that the no-op path stays off the per-event hot loop:

    * :meth:`on_audit` — once per cloud request (the request itself does
      far more work than an empty call);
    * :meth:`on_shadow_transition` — only wired when a real observer is
      installed (see :class:`~repro.cloud.shadows.ShadowStore`);
    * :meth:`on_scheduler_flush` — once per ``run_until`` batch, not per
      event;
    * :meth:`span` / :meth:`profile` — return a shared null context
      manager, no allocation.
    """

    def attach(self, env: Any) -> None:
        """Bind the observer to a simulation environment.

        Called by :class:`~repro.sim.environment.Environment` on
        construction so timestamps can come from the virtual clock.
        """

    # -- structured tracing -------------------------------------------------

    def span(self, name: str, kind: str = "phase", **attrs: Any) -> ContextManager[Any]:
        """Open a trace span; the default returns a shared null context."""
        return NULL_CONTEXT

    def event(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration leaf span under the current span."""

    # -- wall-clock profiling ----------------------------------------------

    def profile(self, section: str) -> ContextManager[Any]:
        """Time a named hot-path section; default is a shared null context."""
        return NULL_CONTEXT

    # -- metrics ------------------------------------------------------------

    def count(self, name: str, n: int = 1, **labels: str) -> None:
        """Increment a labelled counter."""

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge to *value*."""

    def observe(self, name: str, value: float) -> None:
        """Record one histogram sample."""

    # -- domain hooks (called by the instrumented layers) -------------------

    def on_audit(self, entry: Any) -> None:
        """One cloud audit entry was recorded (request handled or sweep)."""

    def on_request(
        self,
        design: str,
        action: str,
        outcome: str,
        duration_ns: int,
        trace_id: str,
        now: float,
    ) -> None:
        """One endpoint request finished (served or policy-rejected).

        The RED record point: *outcome* is ``"ok"`` or the rejection
        code, *duration_ns* is the wall-clock handler duration, *now*
        is the virtual timestamp.  Only fired when a real observer is
        installed — ``CloudService.handle_packet`` guards the call (and
        the ``perf_counter_ns`` reads around it) behind its precomputed
        fast-path flag, so uninstrumented runs never reach it.
        """

    def on_pdp_decide(self, action: str, duration_ns: int) -> None:
        """The PDP evaluated one request's rule list (cache misses only).

        Same fast-path discipline as :meth:`on_request`: the decision
        point only times itself when the service is observed.
        """

    def on_authz_decision(self, decision: Any) -> None:
        """The cloud's PDP decided one request (a typed ``Decision``).

        Fires after dispatch and *before* the exchange's audit entry is
        recorded, so implementations can correlate the rule trace with
        the audit evidence that follows it.
        """

    def on_shadow_transition(
        self, device_id: str, event: Any, before: Any, after: Any, time: float
    ) -> None:
        """A device shadow took a real (non-self-loop) Figure 2 transition."""

    def on_attack(self, report: Any) -> None:
        """One attack attempt finished (an :class:`AttackReport`)."""

    def on_scheduler_flush(self, executed: int, queue_depth: int) -> None:
        """A scheduler ``run_until`` batch finished."""

    def on_compaction(self, removed: int, compactions: int) -> None:
        """The scheduler compacted cancelled entries out of its heap."""


#: The process-wide default observer; shared, stateless, does nothing.
NULL_OBSERVER = Observer()


def iter_hooks() -> Iterator[str]:
    """Yield the names of all observer hook methods (for docs and tests)."""
    for name in sorted(vars(Observer)):
        if not name.startswith("_"):
            yield name
