"""The real :class:`Observer`: tracer + metrics + profiler in one handle.

Create one :class:`Observability`, pass it wherever a world is built
(``Deployment(..., observer=obs)``, ``FleetDeployment(..., observer=obs)``,
``run_attack(..., observer=obs)``) and every instrumented layer feeds it:
the cloud's audit log becomes message counters and exchange spans, shadow
stores report Figure 2 transitions, attacks report outcomes, and the
scheduler reports batch sizes, queue depth and heap compactions.

The same instance can observe several consecutive worlds (the attack
runner builds a fresh world per attempt); :meth:`attach` simply rebinds
the virtual-clock time source to the newest environment.
"""

from __future__ import annotations

from typing import Any, ContextManager, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer
from repro.obs.profiler import Profiler
from repro.obs.slo import RedAccounting, SLOTracker
from repro.obs.tracer import Tracer

#: Observer counters that double as SLO bad events: an infrastructure
#: failure (a chaos drop or timeout) is a request the service failed to
#: serve, charged against the availability error budget.  Policy
#: rejections are *not* here — denying an attacker is correct service.
_SLO_BAD_COUNTERS = {"chaos.drops": "drop", "chaos.timeouts": "timeout"}


class Observability(Observer):
    """Collects spans, metrics and profiles from an instrumented run.

    ``trace_messages=False`` disables the per-request exchange leaves
    (counters still accumulate) — useful for very large campaigns where
    only aggregates matter.
    """

    def __init__(self, trace_messages: bool = True, max_spans: int = 100_000) -> None:
        self.tracer = Tracer(max_spans=max_spans)
        self.metrics = MetricsRegistry()
        self.profiler = Profiler()
        #: RED series (rate, errors, duration sketch) per (design, action)
        self.red = RedAccounting()
        #: PDP decide timings per ("pdp", action); cache misses only
        self.pdp_red = RedAccounting()
        #: the availability series behind SLO/burn-rate evaluation
        self.slo = SLOTracker()
        self.trace_messages = trace_messages
        self._env: Optional[Any] = None
        #: rule trace of the decision awaiting its exchange's audit entry
        self._pending_authz: str = ""

    # -- Observer protocol ---------------------------------------------------

    def attach(self, env: Any) -> None:
        """Bind span timestamps to *env*'s virtual clock (latest wins)."""
        self._env = env
        self.tracer.set_time_source(lambda: env.clock.now)

    def span(self, name: str, kind: str = "phase", **attrs: Any) -> ContextManager[Any]:
        """Open a trace span (see :meth:`repro.obs.tracer.Tracer.span`)."""
        return self.tracer.span(name, kind=kind, **attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration leaf span."""
        self.tracer.event(name, **attrs)

    def profile(self, section: str) -> ContextManager[Any]:
        """Time one entry into a named wall-clock section."""
        return self.profiler.section(section)

    def count(self, name: str, n: int = 1, **labels: Any) -> None:
        """Increment the counter *name* (SLO-bad counters also feed SLO)."""
        self.metrics.counter(name).inc(n, **labels)
        cause = _SLO_BAD_COUNTERS.get(name)
        if cause is not None and self._env is not None:
            self.slo.record_bad(
                self._env.clock.now, labels.get("cause", cause), n
            )

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge *name*."""
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the histogram *name*."""
        self.metrics.histogram(name).observe(value)

    # -- domain hooks --------------------------------------------------------

    def on_audit(self, entry: Any) -> None:
        """Fold one audit entry into message counters (+ exchange leaf)."""
        counter = self.metrics.counter(
            "cloud.audit.entries", help="audit entries by (summary, outcome)"
        )
        counter.inc(summary=entry.summary, outcome=entry.outcome)
        if entry.outcome == "ok":
            self.metrics.counter("cloud.audit.ok").inc()
        else:
            self.metrics.counter("cloud.audit.rejected").inc()
        if self.trace_messages:
            attrs = {"source": entry.source_node, "outcome": entry.outcome}
            trace_id = getattr(entry, "trace_id", "")
            if trace_id:
                # Cross-node correlation: the exchange leaf carries the
                # causal chain id the packet brought in, so per-process
                # span trees can be joined into end-to-end chains.
                attrs["trace"] = trace_id
            if self._pending_authz:
                # The PDP decided this exchange just before the entry was
                # recorded; the rule trace explains the outcome code.
                attrs["authz"] = self._pending_authz
                self._pending_authz = ""
            self.tracer.event(entry.summary, **attrs)

    def on_request(
        self,
        design: str,
        action: str,
        outcome: str,
        duration_ns: int,
        trace_id: str,
        now: float,
    ) -> None:
        """Fold one finished endpoint request into RED + SLO accounting.

        Deliberately registry-free: RED sketches hold wall-clock
        durations and live beside the metrics registry, so instrumented
        runs keep their pinned metric fingerprints byte-identical.
        """
        self.red.record(design, action, outcome, duration_ns / 1000.0, trace_id)
        self.slo.record_request(now)

    def on_pdp_decide(self, action: str, duration_ns: int) -> None:
        """Record one PDP rule-list evaluation's wall duration."""
        self.pdp_red.record("pdp", action, "ok", duration_ns / 1000.0)

    def on_authz_decision(self, decision: Any) -> None:
        """Hold the decision's rule trace for the exchange's audit leaf.

        Deliberately metrics-free: decisions are already counted through
        the audit entries they produce, and the cache keeps its own
        hit/miss statistics out-of-band.
        """
        self._pending_authz = decision.trace()

    def on_shadow_transition(
        self, device_id: str, event: Any, before: Any, after: Any, time: float
    ) -> None:
        """Count one Figure 2 transition by event and edge."""
        self.metrics.counter(
            "shadow.transitions", help="Figure 2 transitions by (event, edge)"
        ).inc(event=str(event), edge=f"{before}->{after}")

    def on_attack(self, report: Any) -> None:
        """Count one finished attack attempt by id and outcome."""
        self.metrics.counter(
            "attacks.attempts", help="attack attempts by (attack_id, outcome)"
        ).inc(attack_id=report.attack_id, outcome=report.outcome.value)
        if report.succeeded:
            self.metrics.counter("attacks.successes").inc()

    def on_scheduler_flush(self, executed: int, queue_depth: int) -> None:
        """Record one run_until batch: events executed + queue depth."""
        if executed:
            self.metrics.counter("scheduler.events").inc(executed)
            self.metrics.histogram("scheduler.batch").observe(executed)
        self.metrics.gauge(
            "scheduler.queue_depth", help="pending entries after a batch"
        ).set(queue_depth)

    def on_compaction(self, removed: int, compactions: int) -> None:
        """Record one heap compaction sweep."""
        self.metrics.counter("scheduler.compacted_entries").inc(removed)
        self.metrics.gauge("scheduler.compactions").set(compactions)

    # -- consistency ---------------------------------------------------------

    def matches_audit(self, audit: Any) -> bool:
        """True iff message counters agree exactly with an audit log.

        The acceptance check for instrumented campaigns: per-(summary,
        outcome) counts and ok/rejected totals must equal what the
        cloud's own append-only log recorded.
        """
        expected: Dict[tuple, int] = {}
        for entry in audit.entries:
            key = (("outcome", entry.outcome), ("summary", entry.summary))
            expected[key] = expected.get(key, 0) + 1
        got = self.metrics.counter("cloud.audit.entries").series()
        if {k: float(v) for k, v in expected.items()} != got:
            return False
        rejected = len(audit.rejected())
        return (
            self.metrics.counter("cloud.audit.ok").total() == len(audit) - rejected
            and self.metrics.counter("cloud.audit.rejected").total() == rejected
        )
