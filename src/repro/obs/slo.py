"""SLO-grade request observability: sketches, RED series, burn rates.

Four pieces, all dependency-free and snapshot/merge-symmetric so sharded
campaigns aggregate exactly like serial runs (``docs/slo.md``):

* :class:`LatencySketch` — a DDSketch-style log-linear latency sketch
  with relative-error-bounded quantiles.  Buckets are ``gamma**i``
  geometric bins; merging two sketches is per-bucket count addition, so
  quantiles of a merge are *bit-identical* to the quantiles of one
  sketch fed the union of the samples.  Each bucket optionally carries
  an **exemplar**: the trace id of the largest sample that landed in
  it, linking a p99 outlier straight to its span waterfall and
  forensic timeline entry.
* :class:`RedAccounting` — RED (rate, errors, duration) series keyed by
  ``(scope, action)``; scope is the vendor design for endpoint requests
  and the decision point for PDP timings.
* :class:`SLOTracker` — the availability series: virtual-time-binned
  ``(total, bad)`` request counts.  Served requests (including policy
  rejections — a denied attacker is a *correctly* served request) are
  good; infrastructure failures (chaos drops, timeouts) are bad.
* :class:`SLOSpec` + the ``evaluate_*`` functions — declarative
  objectives scored as error budgets, multi-window burn rates
  (Google-SRE style long/short window pairs) and per-fault-window
  breach verdicts.

Everything in :class:`SLOTracker` is deterministic (virtual timestamps,
seeded fault RNG); the sketches measure wall-clock handler latency and
are therefore only exported under ``include_wall=True``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Default sketch relative-error bound: quantile estimates are within
#: 0.5% of the true sample value (tests assert <1% with headroom).
DEFAULT_ALPHA = 0.005

#: The quantiles every report renders.
REPORT_QUANTILES = (0.5, 0.9, 0.99)


def _quantile_label(q: float) -> str:
    """``0.99`` → ``"p99"``, ``0.5`` → ``"p50"``, ``0.999`` → ``"p99.9"``."""
    scaled = q * 100.0
    if abs(scaled - round(scaled)) < 1e-9:
        return f"p{int(round(scaled))}"
    return f"p{scaled:g}"


class LatencySketch:
    """A mergeable log-linear (DDSketch/HDR-style) latency sketch.

    A sample ``v > 0`` lands in bucket ``i = ceil(ln(v) / ln(gamma))``
    with ``gamma = (1 + alpha) / (1 - alpha)``; the bucket's midpoint
    estimate ``2 * gamma**i / (gamma + 1)`` is within ``alpha`` relative
    error of every value in the bucket, so any quantile estimate is
    too.  Non-positive samples are tallied in a dedicated zero bucket.

    Buckets are kept sparse (a dict), so the sketch covers nanoseconds
    to minutes in a few hundred entries.  Merging adds per-bucket
    counts — associative and commutative — which is what makes sharded
    p50/p90/p99 equal serial ones bit-for-bit.
    """

    __slots__ = (
        "alpha", "gamma", "_log_gamma", "count", "sum", "min", "max",
        "zero_count", "buckets", "exemplars",
    )

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha!r}")
        self.alpha = alpha
        self.gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self.gamma)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.zero_count = 0
        #: sparse bucket index -> sample count
        self.buckets: Dict[int, int] = {}
        #: bucket index -> (value, trace_id) of the largest sample seen
        #: there; the (value, trace) tuple-max rule is commutative, so
        #: merged exemplars are independent of merge grouping/order
        self.exemplars: Dict[int, Tuple[float, str]] = {}

    def _index(self, value: float) -> int:
        return int(math.ceil(math.log(value) / self._log_gamma))

    def _estimate(self, index: int) -> float:
        return 2.0 * self.gamma ** index / (self.gamma + 1.0)

    def observe(self, value: float, trace_id: str = "") -> None:
        """Record one sample (optionally tagged with its trace id)."""
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value <= 0.0:
            self.zero_count += 1
            return
        index = self._index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        if trace_id:
            candidate = (value, trace_id)
            if index not in self.exemplars or candidate > self.exemplars[index]:
                self.exemplars[index] = candidate

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the *q*-quantile (``0 <= q <= 1``); None when empty.

        Walks buckets in index order to the sample of rank
        ``floor(q * (count - 1))`` and returns its bucket's midpoint
        estimate — within ``alpha`` relative error of the true sample.
        """
        if self.count == 0:
            return None
        rank = int(q * (self.count - 1))
        if rank < self.zero_count:
            return 0.0
        cumulative = self.zero_count
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative > rank:
                return self._estimate(index)
        return self.max

    def quantiles(
        self, qs: Sequence[float] = REPORT_QUANTILES
    ) -> Dict[str, Optional[float]]:
        """The labelled report quantiles, e.g. ``{"p50": ..., "p99": ...}``."""
        return {_quantile_label(q): self.quantile(q) for q in qs}

    def exemplar(self, q: float) -> Optional[Dict[str, Any]]:
        """The exemplar nearest (at or above) the *q*-quantile's bucket.

        Returns ``{"trace": ..., "value": ...}`` for the first bucket at
        or past the quantile bucket that carries one — the trace to pull
        up when asking "what does a p99 request look like?".
        """
        if self.count == 0:
            return None
        rank = int(q * (self.count - 1))
        cumulative = self.zero_count
        reached = False
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative > rank:
                reached = True
            if reached and index in self.exemplars:
                value, trace = self.exemplars[index]
                return {"trace": trace, "value": value}
        return None

    def over_threshold(self, threshold: float) -> int:
        """Samples estimated above *threshold* (bounded-error count)."""
        if threshold <= 0.0:
            return self.count - self.zero_count
        limit = self._index(threshold)
        return sum(c for i, c in self.buckets.items() if i > limit)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dict; :meth:`merge_snapshot` is its exact inverse."""
        return {
            "alpha": self.alpha,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "zero": self.zero_count,
            "buckets": {str(i): c for i, c in sorted(self.buckets.items())},
            "exemplars": {
                str(i): {"value": v, "trace": t}
                for i, (v, t) in sorted(self.exemplars.items())
            },
        }

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold another sketch's snapshot into this one (same ``alpha``)."""
        if abs(snap.get("alpha", self.alpha) - self.alpha) > 1e-12:
            raise ValueError(
                f"cannot merge sketches with different alpha "
                f"({snap.get('alpha')} vs {self.alpha})"
            )
        self.count += snap.get("count", 0)
        self.sum += snap.get("sum", 0.0)
        self.zero_count += snap.get("zero", 0)
        for other, pick in ((snap.get("min"), min), (snap.get("max"), max)):
            if other is not None:
                current = self.min if pick is min else self.max
                merged = other if current is None else pick(current, other)
                if pick is min:
                    self.min = merged
                else:
                    self.max = merged
        for key, count in snap.get("buckets", {}).items():
            index = int(key)
            self.buckets[index] = self.buckets.get(index, 0) + count
        for key, row in snap.get("exemplars", {}).items():
            index = int(key)
            candidate = (row["value"], row["trace"])
            if index not in self.exemplars or candidate > self.exemplars[index]:
                self.exemplars[index] = candidate

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Any]) -> "LatencySketch":
        """Rebuild a sketch from its :meth:`snapshot`."""
        sketch = cls(alpha=snap.get("alpha", DEFAULT_ALPHA))
        sketch.merge_snapshot(snap)
        return sketch


class RedSeries:
    """One (scope, action) RED series: requests, errors, duration sketch."""

    __slots__ = ("requests", "errors", "sketch")

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        self.requests = 0
        #: non-"ok" outcome code -> count
        self.errors: Dict[str, int] = {}
        self.sketch = LatencySketch(alpha=alpha)

    @property
    def error_count(self) -> int:
        """Total requests that finished with a non-``ok`` outcome."""
        return sum(self.errors.values())


#: Separator joining (scope, action) into one snapshot key; neither
#: design names nor action names contain it.
_KEY_SEP = "|"


class RedAccounting:
    """RED (rate, errors, duration) accounting keyed by (scope, action).

    The scope is the vendor design name for endpoint requests and a
    caller-chosen label (e.g. the decision point) for internal timings.
    Durations are wall-clock microseconds.  Snapshots merge per-series:
    request/error counts add and sketches merge, so fleet-wide RED
    numbers from sharded campaigns equal a serial run's.
    """

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        self.alpha = alpha
        self._series: Dict[Tuple[str, str], RedSeries] = {}

    def record(
        self,
        scope: str,
        action: str,
        outcome: str,
        duration_us: float,
        trace_id: str = "",
    ) -> None:
        """Record one finished request: outcome plus wall duration (µs)."""
        key = (scope, action)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = RedSeries(alpha=self.alpha)
        series.requests += 1
        if outcome != "ok":
            series.errors[outcome] = series.errors.get(outcome, 0) + 1
        series.sketch.observe(duration_us, trace_id)

    def series(self) -> Dict[Tuple[str, str], RedSeries]:
        """All series keyed by ``(scope, action)`` (live references)."""
        return dict(self._series)

    def total_requests(self) -> int:
        """Requests across every series."""
        return sum(s.requests for s in self._series.values())

    def total_errors(self) -> int:
        """Non-``ok`` requests across every series."""
        return sum(s.error_count for s in self._series.values())

    def combined_sketch(self, scope: Optional[str] = None) -> LatencySketch:
        """One sketch merging every series (optionally one scope only)."""
        merged = LatencySketch(alpha=self.alpha)
        for (series_scope, _), series in sorted(self._series.items()):
            if scope is not None and series_scope != scope:
                continue
            merged.merge_snapshot(series.sketch.snapshot())
        return merged

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dict keyed ``"scope|action"``; mergeable."""
        return {
            "alpha": self.alpha,
            "series": {
                _KEY_SEP.join(key): {
                    "requests": series.requests,
                    "errors": dict(sorted(series.errors.items())),
                    "sketch": series.sketch.snapshot(),
                }
                for key, series in sorted(self._series.items())
            },
        }

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold another accounting's :meth:`snapshot` into this one."""
        for joined, row in snap.get("series", {}).items():
            scope, _, action = joined.partition(_KEY_SEP)
            key = (scope, action)
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = RedSeries(alpha=self.alpha)
            series.requests += row.get("requests", 0)
            for code, count in row.get("errors", {}).items():
                series.errors[code] = series.errors.get(code, 0) + count
            series.sketch.merge_snapshot(row.get("sketch", {}))

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Any]) -> "RedAccounting":
        """Rebuild an accounting from its :meth:`snapshot`."""
        red = cls(alpha=snap.get("alpha", DEFAULT_ALPHA))
        red.merge_snapshot(snap)
        return red


class SLOTracker:
    """The availability series: virtual-time-binned (total, bad) counts.

    Good events are requests the cloud actually served — including
    policy rejections, because denying an attacker is correct service.
    Bad events are infrastructure failures: chaos drops and timeouts
    reported through the observer seam.  Both are stamped with virtual
    time, so the series is deterministic for a given seed and merges
    bit-identically across shards.
    """

    def __init__(self, bin_seconds: float = 1.0) -> None:
        if bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        self.bin_seconds = bin_seconds
        #: bin index -> [total, bad]
        self._bins: Dict[int, List[int]] = {}
        self.bad_by_cause: Dict[str, int] = {}

    def _bin(self, now: float) -> List[int]:
        index = int(now // self.bin_seconds)
        cell = self._bins.get(index)
        if cell is None:
            cell = self._bins[index] = [0, 0]
        return cell

    def record_request(self, now: float, n: int = 1) -> None:
        """Count *n* served (good) requests at virtual time *now*."""
        self._bin(now)[0] += n

    def record_bad(self, now: float, cause: str, n: int = 1) -> None:
        """Count *n* failed requests (e.g. chaos drop/timeout) at *now*."""
        cell = self._bin(now)
        cell[0] += n
        cell[1] += n
        self.bad_by_cause[cause] = self.bad_by_cause.get(cause, 0) + n

    @property
    def total(self) -> int:
        """All events (good + bad)."""
        return sum(cell[0] for cell in self._bins.values())

    @property
    def bad(self) -> int:
        """All bad events."""
        return sum(cell[1] for cell in self._bins.values())

    def window_counts(self, start: float, end: float) -> Tuple[int, int]:
        """``(total, bad)`` within virtual time ``[start, end)``."""
        first = int(start // self.bin_seconds)
        last = int(math.ceil(end / self.bin_seconds))
        total = 0
        bad = 0
        for index, (cell_total, cell_bad) in self._bins.items():
            if first <= index < last:
                total += cell_total
                bad += cell_bad
        return total, bad

    def bins(self) -> Dict[int, Tuple[int, int]]:
        """All bins as ``{index: (total, bad)}``, for evaluation."""
        return {index: (cell[0], cell[1]) for index, cell in self._bins.items()}

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dict (deterministic); mergeable across shards."""
        return {
            "bin_seconds": self.bin_seconds,
            "total": self.total,
            "bad": self.bad,
            "bad_by_cause": dict(sorted(self.bad_by_cause.items())),
            "bins": {
                str(index): list(cell) for index, cell in sorted(self._bins.items())
            },
        }

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold another tracker's :meth:`snapshot` into this one."""
        if snap.get("bin_seconds", self.bin_seconds) != self.bin_seconds:
            raise ValueError("cannot merge trackers with different bin sizes")
        for key, (total, bad) in snap.get("bins", {}).items():
            cell = self._bins.setdefault(int(key), [0, 0])
            cell[0] += total
            cell[1] += bad
        for cause, count in snap.get("bad_by_cause", {}).items():
            self.bad_by_cause[cause] = self.bad_by_cause.get(cause, 0) + count

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Any]) -> "SLOTracker":
        """Rebuild a tracker from its :meth:`snapshot`."""
        tracker = cls(bin_seconds=snap.get("bin_seconds", 1.0))
        tracker.merge_snapshot(snap)
        return tracker


@dataclass(frozen=True)
class BurnWindow:
    """One multi-window burn-rate alert pair (Google SRE chapter 5).

    Fires when the error-budget burn rate over *both* the long and the
    short trailing window is at least *factor* — the long window keeps
    the alert meaningful, the short window makes it reset quickly.
    """

    long_seconds: float
    short_seconds: float
    factor: float

    def scaled(self, horizon: float) -> "BurnWindow":
        """Shrink the windows to fit a run of *horizon* virtual seconds.

        The canonical pairs assume hours of traffic; simulated runs are
        a few virtual minutes, so windows longer than the horizon clamp
        to it (keeping the long:short ratio).
        """
        if self.long_seconds <= horizon:
            return self
        ratio = self.short_seconds / self.long_seconds
        return BurnWindow(horizon, max(1.0, horizon * ratio), self.factor)


#: Default long/short alert pairs (seconds, factor) per the SRE workbook:
#: 14.4x burn over 1h/5m pages, 6x over 6h/30m tickets — here scaled to
#: virtual-minute horizons by :meth:`BurnWindow.scaled`.
DEFAULT_BURN_WINDOWS = (
    BurnWindow(long_seconds=60.0, short_seconds=5.0, factor=14.4),
    BurnWindow(long_seconds=300.0, short_seconds=30.0, factor=6.0),
)


@dataclass(frozen=True)
class SLOSpec:
    """A declarative service-level objective for one run.

    ``objective`` is the availability target (fraction of requests
    served); ``latency_us`` is the per-request wall-latency threshold a
    compliant request must finish under; ``windows`` are the burn-rate
    alert pairs evaluated over the availability series.
    """

    name: str = "binding-api"
    objective: float = 0.999
    latency_us: float = 1000.0
    windows: Tuple[BurnWindow, ...] = DEFAULT_BURN_WINDOWS

    @property
    def error_budget(self) -> float:
        """The tolerated bad fraction, ``1 - objective``."""
        return 1.0 - self.objective


def burn_rate(
    tracker: SLOTracker, start: float, end: float, objective: float
) -> Optional[float]:
    """Error-budget burn rate over ``[start, end)``; None without traffic.

    1.0 means failures arrive exactly at budget pace; ``N`` means the
    budget is being consumed ``N`` times too fast.
    """
    total, bad = tracker.window_counts(start, end)
    if total == 0:
        return None
    budget = 1.0 - objective
    if budget <= 0.0:
        return math.inf if bad else 0.0
    return (bad / total) / budget


def evaluate_availability(
    tracker: SLOTracker, spec: SLOSpec
) -> Dict[str, Any]:
    """Score the availability series against *spec*.

    Returns totals, achieved availability, error-budget consumption and
    one row per burn window: the peak long/short-window burn rates and
    the first virtual time at which the pair alerted (both windows at
    or above the factor), or None if it never fired.
    """
    bins = tracker.bins()
    total = sum(cell[0] for cell in bins.values())
    bad = sum(cell[1] for cell in bins.values())
    achieved = (total - bad) / total if total else 1.0
    budget = spec.error_budget
    consumed = (bad / total) / budget if total and budget > 0 else 0.0
    horizon = (
        (max(bins) + 1) * tracker.bin_seconds if bins else 0.0
    )
    windows = []
    for window in spec.windows:
        scaled = window.scaled(horizon) if horizon else window
        max_long = 0.0
        max_short = 0.0
        alert_at: Optional[float] = None
        for index in sorted(bins):
            end = (index + 1) * tracker.bin_seconds
            long_burn = burn_rate(
                tracker, end - scaled.long_seconds, end, spec.objective
            )
            short_burn = burn_rate(
                tracker, end - scaled.short_seconds, end, spec.objective
            )
            if long_burn is not None:
                max_long = max(max_long, long_burn)
            if short_burn is not None:
                max_short = max(max_short, short_burn)
            if (
                alert_at is None
                and long_burn is not None
                and short_burn is not None
                and long_burn >= scaled.factor
                and short_burn >= scaled.factor
            ):
                alert_at = end
        windows.append({
            "long_seconds": scaled.long_seconds,
            "short_seconds": scaled.short_seconds,
            "factor": scaled.factor,
            "max_long_burn": max_long,
            "max_short_burn": max_short,
            "alert_at": alert_at,
        })
    return {
        "objective": spec.objective,
        "total": total,
        "bad": bad,
        "achieved": achieved,
        "error_budget": budget,
        "budget_consumed": consumed,
        "met": achieved >= spec.objective,
        "bad_by_cause": dict(sorted(tracker.bad_by_cause.items())),
        "windows": windows,
    }


def evaluate_latency(
    sketch: LatencySketch, spec: SLOSpec
) -> Dict[str, Any]:
    """Score a duration sketch against the spec's latency threshold."""
    over = sketch.over_threshold(spec.latency_us)
    compliant = (
        (sketch.count - over) / sketch.count if sketch.count else 1.0
    )
    return {
        "threshold_us": spec.latency_us,
        "count": sketch.count,
        "over_threshold": over,
        "compliance": compliant,
        "met": compliant >= spec.objective,
        "quantiles_us": sketch.quantiles(),
        "exemplar_p99": sketch.exemplar(0.99),
    }


def fault_windows(plan: Any) -> List[Dict[str, Any]]:
    """The scoreable outage windows of a (scaled) chaos fault plan.

    Brownouts and partitions have explicit ``[start, end)`` windows; a
    cloud restart is scored as a one-bin point event at its firing time.
    """
    windows: List[Dict[str, Any]] = []
    for brownout in getattr(plan, "brownouts", ()):
        windows.append(
            {"kind": "brownout", "start": brownout.start, "end": brownout.end}
        )
    for partition in getattr(plan, "partitions", ()):
        windows.append({
            "kind": "partition",
            "start": partition.start,
            "end": partition.end,
            "groups": list(getattr(partition, "groups", ())),
        })
    for restart in getattr(plan, "restarts", ()):
        windows.append(
            {"kind": "restart", "start": restart.at, "end": restart.at + 1.0}
        )
    return sorted(windows, key=lambda w: (w["start"], w["end"], w["kind"]))


def score_fault_windows(
    tracker: SLOTracker, spec: SLOSpec, plan: Any
) -> List[Dict[str, Any]]:
    """Verdict per fault window: SLO breach vs graceful degradation.

    A window **breaches** when the bad events inside it alone exceed
    the whole run's error budget (``total * (1 - objective)``) — the
    outage consumed more than everything the objective allows.  Bad
    events without budget exhaustion **degrade** gracefully; a window
    the clients rode out entirely (retries, backoff, failover) is
    **unaffected** — that difference is exactly what separates vendor
    designs with resilient clients from those without.
    """
    run_total = tracker.total
    budget_events = run_total * spec.error_budget
    verdicts = []
    for window in fault_windows(plan):
        total, bad = tracker.window_counts(window["start"], window["end"])
        if bad > budget_events:
            verdict = "breach"
        elif bad > 0:
            verdict = "degraded"
        else:
            verdict = "unaffected"
        row = dict(window)
        row.update(total=total, bad=bad, verdict=verdict)
        verdicts.append(row)
    return verdicts


@dataclass
class SLOReport:
    """One run scored against one :class:`SLOSpec` (render/JSON-ready)."""

    spec: SLOSpec
    availability: Dict[str, Any]
    latency: Optional[Dict[str, Any]] = None
    faults: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able report payload."""
        data: Dict[str, Any] = {
            "slo": {
                "name": self.spec.name,
                "objective": self.spec.objective,
                "latency_us": self.spec.latency_us,
            },
            "availability": self.availability,
        }
        if self.latency is not None:
            data["latency"] = self.latency
        if self.faults:
            data["faults"] = self.faults
        return data

    def render(self) -> str:
        """Multi-line text report (the ``repro slo`` output core)."""
        avail = self.availability
        lines = [
            f"SLO {self.spec.name}: objective {self.spec.objective:.4%} "
            f"latency<{self.spec.latency_us:g}us",
            f"  availability: {avail['achieved']:.4%} "
            f"({avail['bad']}/{avail['total']} bad) -> "
            f"{'met' if avail['met'] else 'MISSED'}; "
            f"budget consumed {avail['budget_consumed']:.1%}",
        ]
        causes = avail.get("bad_by_cause", {})
        if causes:
            lines.append(
                "  bad by cause: "
                + "  ".join(f"{cause}={count}" for cause, count in causes.items())
            )
        for window in avail["windows"]:
            alert = window["alert_at"]
            lines.append(
                f"  burn {window['long_seconds']:g}s/{window['short_seconds']:g}s "
                f"(x{window['factor']:g}): max {window['max_long_burn']:.1f}/"
                f"{window['max_short_burn']:.1f} -> "
                + (f"ALERT at t={alert:g}s" if alert is not None else "quiet")
            )
        if self.latency is not None:
            lat = self.latency
            quantiles = "  ".join(
                f"{label}={value:.1f}us" if value is not None else f"{label}=-"
                for label, value in lat["quantiles_us"].items()
            )
            lines.append(
                f"  latency: {quantiles}  compliance "
                f"{lat['compliance']:.4%} "
                f"({lat['over_threshold']}/{lat['count']} over "
                f"{lat['threshold_us']:g}us) -> "
                f"{'met' if lat['met'] else 'MISSED'}"
            )
            exemplar = lat.get("exemplar_p99")
            if exemplar:
                lines.append(
                    f"  p99 exemplar: trace={exemplar['trace']} "
                    f"({exemplar['value']:.1f}us)"
                )
        for row in self.faults:
            lines.append(
                f"  fault {row['kind']} [{row['start']:g}s, {row['end']:g}s): "
                f"{row['bad']}/{row['total']} bad -> {row['verdict']}"
            )
        return "\n".join(lines)


def evaluate_slo(
    tracker: SLOTracker,
    spec: SLOSpec,
    sketch: Optional[LatencySketch] = None,
    plan: Any = None,
) -> SLOReport:
    """Score one run: availability, optional latency, optional faults."""
    return SLOReport(
        spec=spec,
        availability=evaluate_availability(tracker, spec),
        latency=evaluate_latency(sketch, spec) if sketch is not None else None,
        faults=score_fault_windows(tracker, spec, plan) if plan is not None else [],
    )


def merge_sketch_snapshots(
    snapshots: Iterable[Dict[str, Any]]
) -> LatencySketch:
    """Fold sketch snapshots into one sketch (the shard-merge helper)."""
    merged: Optional[LatencySketch] = None
    for snap in snapshots:
        if merged is None:
            merged = LatencySketch(alpha=snap.get("alpha", DEFAULT_ALPHA))
        merged.merge_snapshot(snap)
    return merged if merged is not None else LatencySketch()
