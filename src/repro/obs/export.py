"""Exporters: one observability run → JSON snapshot or text report.

Two formats, both self-contained:

* :func:`snapshot` / :func:`to_json` — a plain dict/JSON document with
  the span forest, the metric catalog and the wall-clock profile
  (schema documented in ``docs/observability.md``).  This is what the
  fleet benchmarks write to ``benchmarks/output/BENCH_obs.json``.
  Passing ``max_spans`` caps the exported span list (depth-first, so
  scenario/phase structure survives) with explicit drop accounting —
  large campaign snapshots stay reviewable.
* :func:`render_report` — the human-readable run report behind the
  ``python -m repro obs`` subcommand: span tree, metrics table,
  profile table.

:func:`merge_snapshots` folds per-shard snapshots from a sharded
campaign (``repro.parallel``) into one document with shard provenance:
each shard's span forest is reparented under a synthetic ``shard:<i>``
root, metrics merge via :meth:`MetricsRegistry.merge_snapshot`, and
profiles add per section.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import Observability
from repro.obs.slo import RedAccounting, SLOTracker

#: Schema version stamped into every JSON snapshot.
SNAPSHOT_VERSION = 2


def _cap_forest(
    roots: Sequence[Any], max_spans: Optional[int], include_wall: bool
) -> Tuple[List[Dict[str, Any]], int, int]:
    """Serialise a span forest under a span budget.

    Walks depth first, emitting each span until *max_spans* spans have
    been exported; everything past the budget is counted, not emitted.
    A parent is always exported before its children, so the surviving
    prefix is a well-formed tree.  Returns ``(dicts, exported, dropped)``.
    """
    budget = [max_spans if max_spans is not None else float("inf")]
    dropped = [0]
    exported = [0]

    def emit(span: Any) -> Optional[Dict[str, Any]]:
        if budget[0] <= 0:
            dropped[0] += sum(1 for _ in span.walk())
            return None
        budget[0] -= 1
        exported[0] += 1
        data = span.to_dict(include_wall)
        if span.children:
            children = [emit(child) for child in span.children]
            kept = [child for child in children if child is not None]
            if kept:
                data["children"] = kept
            else:
                data.pop("children", None)
        return data
    forest = [emit(root) for root in roots]
    return [root for root in forest if root is not None], exported[0], dropped[0]


def snapshot(
    obs: Observability,
    include_wall: bool = True,
    max_spans: Optional[int] = None,
) -> Dict[str, Any]:
    """Render one run into a JSON-ready dict.

    ``include_wall=False`` strips wall-clock fields, leaving only
    deterministic content (two same-seed runs then produce identical
    snapshots — the determinism test relies on this).  ``max_spans``
    caps the exported span list; spans over the budget are counted in
    ``export_spans_dropped`` instead of serialised.
    """
    spans, exported, export_dropped = _cap_forest(
        obs.tracer.roots, max_spans, include_wall
    )
    data: Dict[str, Any] = {
        "version": SNAPSHOT_VERSION,
        "spans": spans,
        "span_count": len(obs.tracer),
        "spans_exported": exported,
        "spans_dropped": obs.tracer.dropped,
        "export_spans_dropped": export_dropped,
        "metrics": obs.metrics.snapshot(),
        # Deterministic: virtual-time bins over seeded-RNG fault events.
        "slo": obs.slo.snapshot(),
    }
    if include_wall:
        data["profile"] = obs.profiler.snapshot()
        # Wall-clock latency sketches are nondeterministic by nature, so
        # they live strictly on the include_wall side of the split.
        data["red"] = {
            "requests": obs.red.snapshot(),
            "pdp": obs.pdp_red.snapshot(),
        }
    return data


def to_json(
    obs: Observability,
    include_wall: bool = True,
    indent: int = 2,
    max_spans: Optional[int] = None,
) -> str:
    """JSON-serialise :func:`snapshot`."""
    return json.dumps(
        snapshot(obs, include_wall, max_spans=max_spans),
        indent=indent,
        sort_keys=True,
    )


def merge_snapshots(
    snapshots: Sequence[Dict[str, Any]],
    shard_meta: Optional[Sequence[Dict[str, Any]]] = None,
    max_spans: Optional[int] = None,
) -> Dict[str, Any]:
    """Merge per-shard snapshot dicts into one fleet-wide document.

    Each input is one shard's :func:`snapshot`.  The merged document
    keeps shard provenance three ways: a ``shards`` list with one
    metadata row per shard (index plus whatever the caller passes in
    *shard_meta*, e.g. the derived seed), each shard's spans reparented
    under a synthetic ``shard:<i>`` scenario root, and per-shard span
    accounting.  Metrics merge via
    :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot` (counter
    and histogram totals equal the sum over shards); profiles add per
    section.  ``max_spans`` caps the merged span list with the same
    drop accounting as :func:`snapshot`.
    """
    registry = MetricsRegistry()
    spans: List[Dict[str, Any]] = []
    shards: List[Dict[str, Any]] = []
    profile: Dict[str, Dict[str, float]] = {}
    slo = SLOTracker()
    red: Optional[Dict[str, RedAccounting]] = None
    span_count = 0
    spans_dropped = 0
    budget = max_spans if max_spans is not None else float("inf")
    export_dropped = 0
    for index, snap in enumerate(snapshots):
        meta = dict(shard_meta[index]) if shard_meta else {}
        meta["shard"] = index
        shards.append(
            {**meta, "span_count": snap.get("span_count", 0),
             "spans_dropped": snap.get("spans_dropped", 0)}
        )
        shard_spans = snap.get("spans", [])
        shard_total = sum(_count_span_dicts(s) for s in shard_spans)
        if budget >= shard_total + 1:
            spans.append(
                {"name": f"shard:{index}", "kind": "scenario",
                 "start": 0.0, "end": None, "outcome": "ok",
                 "attrs": meta, "children": shard_spans}
            )
            budget -= shard_total + 1
        else:
            export_dropped += shard_total + 1
        span_count += snap.get("span_count", 0)
        spans_dropped += snap.get("spans_dropped", 0)
        export_dropped += snap.get("export_spans_dropped", 0)
        registry.merge_snapshot(snap.get("metrics", {}))
        slo.merge_snapshot(snap.get("slo", {}))
        shard_red = snap.get("red")
        if shard_red is not None:
            if red is None:
                red = {"requests": RedAccounting(), "pdp": RedAccounting()}
            for section in red:
                red[section].merge_snapshot(shard_red.get(section, {}))
        for section, stats in snap.get("profile", {}).items():
            merged = profile.setdefault(section, {"calls": 0, "total_ms": 0.0})
            merged["calls"] += stats.get("calls", 0)
            merged["total_ms"] += stats.get("total_ms", 0.0)
    for section, stats in profile.items():
        stats["mean_us"] = (
            stats["total_ms"] * 1e3 / stats["calls"] if stats["calls"] else 0.0
        )
    merged_doc = {
        "version": SNAPSHOT_VERSION,
        "sharded": True,
        "shards": shards,
        "spans": spans,
        "span_count": span_count,
        "spans_dropped": spans_dropped,
        "export_spans_dropped": export_dropped,
        "metrics": registry.snapshot(),
        "slo": slo.snapshot(),
        "profile": {k: profile[k] for k in sorted(profile)},
    }
    if red is not None:
        merged_doc["red"] = {
            section: accounting.snapshot() for section, accounting in red.items()
        }
    return merged_doc


def _count_span_dicts(span: Dict[str, Any]) -> int:
    """Number of spans in one serialised subtree."""
    return 1 + sum(_count_span_dicts(c) for c in span.get("children", ()))


def render_red(obs: Observability) -> str:
    """Text table of the RED series: rate, errors, duration quantiles.

    One row per (scope, action): request count, error count, sketch
    p50/p90/p99 in microseconds, and the p99 exemplar trace id when one
    was captured (the jump-off point into the span waterfall and the
    forensic timeline).
    """
    lines: List[str] = []
    for heading, accounting in (
        ("requests", obs.red), ("pdp", obs.pdp_red)
    ):
        series = accounting.series()
        if not series:
            continue
        for (scope, action), row in sorted(series.items()):
            quantiles = "  ".join(
                f"{label}={value:.1f}us" if value is not None else f"{label}=-"
                for label, value in row.sketch.quantiles().items()
            )
            exemplar = row.sketch.exemplar(0.99)
            lines.append(
                f"{heading:<9} {scope:<18} {action:<12} n={row.requests:<6} "
                f"err={row.error_count:<5} {quantiles}"
                + (f"  exemplar={exemplar['trace']}" if exemplar else "")
            )
    return "\n".join(lines) if lines else "(no requests recorded)"


def render_report(obs: Observability, max_exchanges_per_span: int = 12) -> str:
    """The full text run report: spans, metrics, RED, then profile."""
    sections = [
        "== span tree (virtual time) ==",
        obs.tracer.render(max_exchanges_per_span=max_exchanges_per_span)
        or "(no spans recorded)",
        "",
        "== metrics ==",
        obs.metrics.render(),
        "",
        "== RED (rate / errors / duration) ==",
        render_red(obs),
        "",
        "== wall-clock profile ==",
        obs.profiler.render(),
    ]
    return "\n".join(sections)
