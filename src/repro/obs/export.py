"""Exporters: one observability run → JSON snapshot or text report.

Two formats, both self-contained:

* :func:`snapshot` / :func:`to_json` — a plain dict/JSON document with
  the span forest, the metric catalog and the wall-clock profile
  (schema documented in ``docs/observability.md``).  This is what the
  fleet benchmarks write to ``benchmarks/output/BENCH_obs.json``.
* :func:`render_report` — the human-readable run report behind the
  ``python -m repro obs`` subcommand: span tree, metrics table,
  profile table.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.obs.runtime import Observability

#: Schema version stamped into every JSON snapshot.
SNAPSHOT_VERSION = 1


def snapshot(obs: Observability, include_wall: bool = True) -> Dict[str, Any]:
    """Render one run into a JSON-ready dict.

    ``include_wall=False`` strips wall-clock fields, leaving only
    deterministic content (two same-seed runs then produce identical
    snapshots — the determinism test relies on this).
    """
    data: Dict[str, Any] = {
        "version": SNAPSHOT_VERSION,
        "spans": [root.to_dict(include_wall) for root in obs.tracer.roots],
        "span_count": len(obs.tracer),
        "spans_dropped": obs.tracer.dropped,
        "metrics": obs.metrics.snapshot(),
    }
    if include_wall:
        data["profile"] = obs.profiler.snapshot()
    return data


def to_json(obs: Observability, include_wall: bool = True, indent: int = 2) -> str:
    """JSON-serialise :func:`snapshot`."""
    return json.dumps(snapshot(obs, include_wall), indent=indent, sort_keys=True)


def render_report(obs: Observability, max_exchanges_per_span: int = 12) -> str:
    """The full text run report: spans, then metrics, then profile."""
    sections = [
        "== span tree (virtual time) ==",
        obs.tracer.render(max_exchanges_per_span=max_exchanges_per_span)
        or "(no spans recorded)",
        "",
        "== metrics ==",
        obs.metrics.render(),
        "",
        "== wall-clock profile ==",
        obs.profiler.render(),
    ]
    return "\n".join(sections)
