"""Causal trace contexts: correlation ids carried by every packet.

The PR 1 tracer records spans *per process*; nothing ties the app's
request, the device's resulting cloud call, and the cloud's audit entry
into one causal chain.  :class:`TraceContext` is the missing
correlation record: the network mints a context for every request at
the originating node (app, device, attacker), nested requests issued
while a handler is running become *children* of the inbound context,
and at-least-once duplicates reuse the original context verbatim — so
a delivery retry is visibly the *same* cause, not a new one.

Ids are drawn from plain per-network counters, never from the seeded
simulation RNG: tracing must not perturb the world it observes (two
same-seed runs, with or without any detection consumer attached, build
bit-identical worlds and mint bit-identical trace ids).
"""

from __future__ import annotations

from typing import Optional


class TraceContext:
    """One request's position in a cross-node causal chain.

    ``trace_id`` names the whole chain (shared by every causally related
    request); ``span_id`` names this hop; ``parent_id`` is the span id
    of the request whose handler issued this one (``None`` at the
    origin); ``origin`` is the node name where the chain started — for
    forged traffic, that is the attacker's own host, whatever identity
    the message layer claims.

    A ``__slots__`` value record (one is minted per simulated request,
    so construction is on the kernel hot path); treat instances as
    immutable — equality and hashing read all four fields.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "origin")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str] = None,
        origin: str = "",
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.origin = origin

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceContext):
            return NotImplemented
        return (
            self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.parent_id == other.parent_id
            and self.origin == other.origin
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id, self.parent_id, self.origin))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceContext(trace_id={self.trace_id!r}, span_id={self.span_id!r}, "
            f"parent_id={self.parent_id!r}, origin={self.origin!r})"
        )

    @property
    def is_root(self) -> bool:
        """Whether this context started its chain (no parent hop)."""
        return self.parent_id is None

    def child(self, span_id: str) -> "TraceContext":
        """A new hop in the same chain, parented to this one."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=span_id,
            parent_id=self.span_id,
            origin=self.origin,
        )

    def short(self) -> str:
        """Compact ``trace/span`` rendering for log lines."""
        return f"{self.trace_id}/{self.span_id}"
