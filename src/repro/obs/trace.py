"""Causal trace contexts: correlation ids carried by every packet.

The PR 1 tracer records spans *per process*; nothing ties the app's
request, the device's resulting cloud call, and the cloud's audit entry
into one causal chain.  :class:`TraceContext` is the missing
correlation record: the network mints a context for every request at
the originating node (app, device, attacker), nested requests issued
while a handler is running become *children* of the inbound context,
and at-least-once duplicates reuse the original context verbatim — so
a delivery retry is visibly the *same* cause, not a new one.

Ids are drawn from plain per-network counters, never from the seeded
simulation RNG: tracing must not perturb the world it observes (two
same-seed runs, with or without any detection consumer attached, build
bit-identical worlds and mint bit-identical trace ids).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TraceContext:
    """One request's position in a cross-node causal chain.

    ``trace_id`` names the whole chain (shared by every causally related
    request); ``span_id`` names this hop; ``parent_id`` is the span id
    of the request whose handler issued this one (``None`` at the
    origin); ``origin`` is the node name where the chain started — for
    forged traffic, that is the attacker's own host, whatever identity
    the message layer claims.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    origin: str = ""

    @property
    def is_root(self) -> bool:
        """Whether this context started its chain (no parent hop)."""
        return self.parent_id is None

    def child(self, span_id: str) -> "TraceContext":
        """A new hop in the same chain, parented to this one."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=span_id,
            parent_id=self.span_id,
            origin=self.origin,
        )

    def short(self) -> str:
        """Compact ``trace/span`` rendering for log lines."""
        return f"{self.trace_id}/{self.span_id}"
