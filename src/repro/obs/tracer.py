"""Hierarchical spans over the virtual clock.

A :class:`Span` is one timed piece of work — a scenario, a phase inside
it, or a single message exchange — positioned on the *simulation*
timeline (``start``/``end`` are virtual seconds) and annotated with the
*wall-clock* nanoseconds spent computing it (``wall_ns``), so one tree
answers both "what happened when in the modelled world" and "where did
the CPU go".

The :class:`Tracer` keeps an explicit open-span stack; spans opened
while another is open become its children, giving the
scenario → phase → exchange hierarchy the run report renders.  Virtual
timestamps are deterministic, so two runs with the same seed produce
identical trees (the determinism test keys on :meth:`Span.signature`,
which excludes wall-clock noise).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Span kinds, outermost to innermost.
SPAN_KINDS = ("scenario", "phase", "exchange")


@dataclass
class Span:
    """One node of the trace tree."""

    name: str
    kind: str = "phase"
    start: float = 0.0                  # virtual seconds
    end: Optional[float] = None         # virtual seconds; None while open
    outcome: str = "ok"
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    wall_ns: int = 0                    # wall-clock cost of the span body

    @property
    def duration(self) -> float:
        """Virtual duration in seconds (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def walk(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def signature(self) -> tuple:
        """Deterministic shape of the subtree: names, kinds, virtual times.

        Excludes ``wall_ns`` (wall-clock noise) so that two runs with the
        same seed produce equal signatures.
        """
        return (
            self.name,
            self.kind,
            round(self.start, 9),
            None if self.end is None else round(self.end, 9),
            self.outcome,
            tuple(sorted((k, str(v)) for k, v in self.attrs.items())),
            tuple(child.signature() for child in self.children),
        )

    def to_dict(self, include_wall: bool = True) -> Dict[str, Any]:
        """JSON-ready rendering of the subtree."""
        data: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "outcome": self.outcome,
        }
        if self.attrs:
            data["attrs"] = dict(self.attrs)
        if include_wall:
            data["wall_ns"] = self.wall_ns
        if self.children:
            data["children"] = [c.to_dict(include_wall) for c in self.children]
        return data


class _SpanContext:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span", "_t0")

    def __init__(self, tracer: "Tracer", span: Optional[Span]) -> None:
        self._tracer = tracer
        self._span = span
        self._t0 = 0

    def __enter__(self) -> Optional[Span]:
        self._t0 = _time.perf_counter_ns()
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self._span is None:
            return
        self._span.wall_ns += _time.perf_counter_ns() - self._t0
        self._tracer._close(self._span, ok=exc_type is None)


class Tracer:
    """Builds the span tree; bounded so huge campaigns cannot OOM it.

    ``max_spans`` caps the total number of recorded spans; once reached,
    further spans are counted in :attr:`dropped` instead of stored (the
    open-span stack still balances, so the tree stays well formed).
    """

    def __init__(self, max_spans: int = 100_000) -> None:
        self.roots: List[Span] = []
        self.max_spans = max_spans
        self.dropped = 0
        self._stack: List[Span] = []
        self._count = 0
        self._now = lambda: 0.0

    def set_time_source(self, now) -> None:
        """Install the virtual-clock reader used to timestamp spans."""
        self._now = now

    # -- recording ----------------------------------------------------------

    def span(self, name: str, kind: str = "phase", **attrs: Any) -> _SpanContext:
        """Open a span as a child of the currently open span."""
        if self._count >= self.max_spans:
            self.dropped += 1
            return _SpanContext(self, None)
        span = Span(name=name, kind=kind, start=self._now(), attrs=attrs)
        self._attach(span)
        self._stack.append(span)
        self._count += 1
        return _SpanContext(self, span)

    def event(self, name: str, kind: str = "exchange", **attrs: Any) -> None:
        """Record a zero-duration leaf (e.g. one message exchange)."""
        if self._count >= self.max_spans:
            self.dropped += 1
            return
        now = self._now()
        span = Span(name=name, kind=kind, start=now, end=now, attrs=attrs)
        self._attach(span)
        self._count += 1

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def _close(self, span: Span, ok: bool) -> None:
        span.end = self._now()
        if not ok:
            span.outcome = "error"
        # Close any abandoned children first, then the span itself.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def walk(self):
        """Yield every recorded span, depth first across all roots."""
        for root in self.roots:
            yield from root.walk()

    def signature(self) -> tuple:
        """Deterministic shape of the whole forest (excludes wall clock)."""
        return tuple(root.signature() for root in self.roots)

    def render(self, max_exchanges_per_span: int = 12) -> str:
        """Indented text rendering of the span forest.

        Long runs of sibling *exchange* leaves are elided past
        ``max_exchanges_per_span`` so a 100-household campaign report
        stays readable.
        """
        lines: List[str] = []

        def emit(span: Span, depth: int) -> None:
            pad = "  " * depth
            end = f"{span.end:9.3f}" if span.end is not None else "     open"
            wall = f" wall={span.wall_ns / 1e6:.2f}ms" if span.wall_ns else ""
            mark = "" if span.outcome == "ok" else f" [{span.outcome}]"
            attrs = ""
            if span.attrs:
                attrs = " " + ",".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
            lines.append(
                f"{pad}{span.kind:<9} {span.name:<32} "
                f"t=[{span.start:9.3f} ..{end}]{wall}{mark}{attrs}"
            )
            shown = 0
            elided = 0
            for child in span.children:
                if child.kind == "exchange" and not child.children:
                    shown += 1
                    if shown > max_exchanges_per_span:
                        elided += 1
                        continue
                emit(child, depth + 1)
            if elided:
                lines.append(f"{'  ' * (depth + 1)}... {elided} more exchanges elided")

        for root in self.roots:
            emit(root, 0)
        if self.dropped:
            lines.append(f"(span cap reached: {self.dropped} spans dropped)")
        return "\n".join(lines)
