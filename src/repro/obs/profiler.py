"""Wall-clock profiling of the simulator's hot paths.

Unlike the tracer (which positions work on the *virtual* timeline), the
profiler answers "where does the real CPU time go": each named section
accumulates call count and total ``perf_counter_ns`` duration.  Sections
are wired at the four hot paths the fleet benchmarks exercise —
``scheduler.run`` (:meth:`repro.sim.scheduler.Scheduler.run_until`),
``cloud.handle_packet`` (:meth:`repro.cloud.service.CloudService.handle_packet`),
``attacks.run_attack`` (:func:`repro.attacks.runner.run_attack`) and
``fleet.setup_household`` (:meth:`repro.fleet.FleetDeployment.setup_household`).
"""

from __future__ import annotations

import time as _time
from typing import Any, Dict, List


class _SectionTimer:
    """Context manager that adds its elapsed time to one section."""

    __slots__ = ("_profiler", "_section", "_t0")

    def __init__(self, profiler: "Profiler", section: str) -> None:
        self._profiler = profiler
        self._section = section
        self._t0 = 0

    def __enter__(self) -> None:
        self._t0 = _time.perf_counter_ns()

    def __exit__(self, *exc: Any) -> None:
        self._profiler.add(self._section, _time.perf_counter_ns() - self._t0)


class Profiler:
    """Accumulates (calls, total wall nanoseconds) per named section."""

    def __init__(self) -> None:
        self.calls: Dict[str, int] = {}
        self.total_ns: Dict[str, int] = {}

    def section(self, section: str) -> _SectionTimer:
        """Return a context manager timing one entry into *section*."""
        return _SectionTimer(self, section)

    def add(self, section: str, elapsed_ns: int, calls: int = 1) -> None:
        """Record *calls* entries into *section* totalling *elapsed_ns*."""
        self.calls[section] = self.calls.get(section, 0) + calls
        self.total_ns[section] = self.total_ns.get(section, 0) + elapsed_ns

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready per-section totals (milliseconds, not nanoseconds)."""
        return {
            section: {
                "calls": self.calls[section],
                "total_ms": self.total_ns[section] / 1e6,
                "mean_us": (self.total_ns[section] / self.calls[section] / 1e3)
                if self.calls[section]
                else 0.0,
            }
            for section in sorted(self.calls)
        }

    def render(self) -> str:
        """Fixed-width text table, most expensive section first."""
        if not self.calls:
            return "(no profiled sections)"
        rows: List[str] = [
            f"{'section':<28} {'calls':>8} {'total ms':>10} {'mean µs':>10}"
        ]
        for section in sorted(self.total_ns, key=self.total_ns.get, reverse=True):
            calls = self.calls[section]
            total_ms = self.total_ns[section] / 1e6
            mean_us = self.total_ns[section] / calls / 1e3 if calls else 0.0
            rows.append(f"{section:<28} {calls:>8} {total_ms:>10.2f} {mean_us:>10.1f}")
        return "\n".join(rows)
