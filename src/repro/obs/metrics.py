"""Counters, gauges and histograms for the simulated fleet.

The registry is deliberately tiny and dependency-free: metrics are named
(``dotted.names``), optionally labelled (sorted ``(key, value)`` tuples,
so label order never matters), and snapshot to plain dicts for the JSON
exporter.  The catalog produced by an instrumented run is documented in
``docs/observability.md``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    """Normalise a label dict into a hashable, order-independent key."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing, optionally labelled counter."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}

    def inc(self, n: float = 1, **labels: Any) -> None:
        """Add *n* to the series selected by *labels*."""
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + n

    def value(self, **labels: Any) -> float:
        """Current value of one labelled series (0 if never incremented)."""
        return self._values.get(_label_key(labels), 0)

    def total(self) -> float:
        """Sum across every labelled series."""
        return sum(self._values.values())

    def series(self) -> Dict[LabelKey, float]:
        """All labelled series, keyed by normalised label tuples."""
        return dict(self._values)

    def snapshot(self) -> List[Dict[str, Any]]:
        """JSON-ready list of ``{labels, value}`` rows, label-sorted."""
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]

    def merge_snapshot(self, rows: List[Dict[str, Any]]) -> None:
        """Fold another counter's :meth:`snapshot` rows into this one."""
        for row in rows:
            self.inc(row["value"], **row.get("labels", {}))


class Gauge:
    """A last-write-wins instantaneous value (plus its observed peak)."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        """Record the current value; the peak is tracked automatically."""
        self.value = value
        if value > self.peak:
            self.peak = value

    def snapshot(self) -> Dict[str, float]:
        """JSON-ready ``{value, peak}``."""
        return {"value": self.value, "peak": self.peak}

    def merge_snapshot(self, snap: Dict[str, float]) -> None:
        """Fold another gauge's snapshot into this one, element-wise max.

        Gauges are last-write-wins within one world; across shards there
        is no global write order, so the merge takes the maximum of both
        values and both peaks — deterministic regardless of shard count
        or completion order.
        """
        self.value = max(self.value, snap.get("value", 0.0))
        self.peak = max(self.peak, self.value, snap.get("peak", 0.0))


#: Default histogram bucket upper bounds (virtual seconds / generic units).
DEFAULT_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max."""

    def __init__(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS, help: str = ""
    ) -> None:
        self.name = name
        self.help = help
        self.bounds = tuple(sorted(buckets))
        self.counts = [0] * (len(self.bounds) + 1)  # +1 for the overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the *q*-quantile from the bucket counts (None if empty).

        Standard fixed-bucket estimation (the ``histogram_quantile``
        idiom): find the bucket holding the target rank and interpolate
        linearly inside it, clamping to the observed min/max so tiny
        samples do not extrapolate past real data.  Samples in the
        overflow bucket estimate as the observed max.
        """
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0.0
        lower = 0.0
        for i, bound in enumerate(self.bounds):
            bucket_count = self.counts[i]
            if bucket_count and cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                value = lower + (bound - lower) * fraction
                if self.min is not None:
                    value = max(value, self.min)
                if self.max is not None:
                    value = min(value, self.max)
                return value
            cumulative += bucket_count
            lower = bound
        return self.max

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready summary with per-bucket counts."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                (f"le_{bound}" if i < len(self.bounds) else "inf"): self.counts[i]
                for i, bound in enumerate(list(self.bounds) + [None])
            },
        }

    @staticmethod
    def bounds_from_snapshot(snap: Dict[str, Any]) -> Tuple[float, ...]:
        """Recover the bucket upper bounds encoded in a snapshot's keys."""
        bounds = []
        for key in snap.get("buckets", {}):
            if key.startswith("le_"):
                raw = key[3:]
                bounds.append(float(raw) if "." in raw else int(raw))
        return tuple(sorted(bounds))

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold another histogram's snapshot into this one (same buckets)."""
        if self.bounds != self.bounds_from_snapshot(snap):
            raise ValueError(
                f"histogram {self.name!r}: cannot merge differing bucket bounds"
            )
        positions = {f"le_{bound}": i for i, bound in enumerate(self.bounds)}
        positions["inf"] = len(self.bounds)
        for key, count in snap.get("buckets", {}).items():
            self.counts[positions[key]] += count
        self.count += snap.get("count", 0)
        self.sum += snap.get("sum", 0.0)
        for other, pick in ((snap.get("min"), min), (snap.get("max"), max)):
            if other is not None:
                current = self.min if pick is min else self.max
                merged = other if current is None else pick(current, other)
                if pick is min:
                    self.min = merged
                else:
                    self.max = merged


class MetricsRegistry:
    """Lazily-created, name-addressed metric instruments."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter called *name*."""
        if name not in self._counters:
            self._counters[name] = Counter(name, help)
        return self._counters[name]

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge called *name*."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(name, help)
        return self._gauges[name]

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS, help: str = ""
    ) -> Histogram:
        """Get or create the histogram called *name*."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, buckets, help)
        return self._histograms[name]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump of every instrument, grouped by type."""
        return {
            "counters": {n: c.snapshot() for n, c in sorted(self._counters.items())},
            "gauges": {n: g.snapshot() for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.snapshot() for n, h in sorted(self._histograms.items())},
        }

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold one registry :meth:`snapshot` into this registry.

        The shard-merge primitive: counters and histograms add, gauges
        take element-wise maxima (see the per-instrument merge methods).
        Folding every shard's snapshot into one fresh registry yields
        totals equal to what a single serial run over the union of the
        shards would have counted.
        """
        for name, rows in snap.get("counters", {}).items():
            self.counter(name).merge_snapshot(rows)
        for name, gauge_snap in snap.get("gauges", {}).items():
            self.gauge(name).merge_snapshot(gauge_snap)
        for name, hist_snap in snap.get("histograms", {}).items():
            bounds = Histogram.bounds_from_snapshot(hist_snap)
            self.histogram(name, buckets=bounds).merge_snapshot(hist_snap)

    def render(self) -> str:
        """Fixed-width text table of every instrument."""
        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            lines.append(f"counter   {name:<34} total={counter.total():g}")
            for key, value in sorted(counter.series().items()):
                labels = ",".join(f"{k}={v}" for k, v in key) or "(unlabelled)"
                lines.append(f"          {'':<34} {labels:<44} {value:g}")
        for name, gauge in sorted(self._gauges.items()):
            lines.append(
                f"gauge     {name:<34} value={gauge.value:g} peak={gauge.peak:g}"
            )
        for name, hist in sorted(self._histograms.items()):
            quantiles = "  ".join(
                f"{label}={value:g}" if value is not None else f"{label}=-"
                for label, value in (
                    ("p50", hist.quantile(0.5)),
                    ("p90", hist.quantile(0.9)),
                    ("p99", hist.quantile(0.99)),
                )
            )
            lines.append(
                f"histogram {name:<34} n={hist.count} mean={hist.mean:.2f} "
                f"min={hist.min if hist.min is not None else '-'} "
                f"max={hist.max if hist.max is not None else '-'}  "
                + quantiles
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"
