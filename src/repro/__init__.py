"""repro — reproduction of "Your IoTs Are (Not) Mine: On the Remote
Binding Between IoT Devices and Users" (Chen et al., DSN 2019).

The package simulates the full three-party IoT ecosystem — cloud,
devices, mobile apps, home LANs and a remote attacker — and reproduces
the paper's state-machine model (Figure 2), design decomposition
(Figures 3/4), attack taxonomy (Table II) and ten-vendor evaluation
(Table III).

Quickstart::

    from repro import Deployment, vendor

    world = Deployment(vendor("D-LINK"), seed=7)
    world.victim_full_setup()
    print(world.shadow_state())          # "control"

    from repro.attacks import run_attack
    print(run_attack(vendor("D-LINK"), "A1").outcome)   # Outcome.SUCCESS
"""

from repro.analysis import (
    evaluate_all_vendors,
    evaluate_vendor,
    render_table_ii,
    render_table_iii,
)
from repro.attacks import AttackReport, Outcome, RemoteAttacker, run_all_attacks, run_attack
from repro.cloud import BindSchema, BindSender, CloudService, DeviceAuthMode, VendorDesign
from repro.core import DeviceShadow, MessageKind, ShadowEvent, ShadowState
from repro.obs import Observability
from repro.scenario import Deployment, Party, build_deployment
from repro.secure import SECURE_BASELINES, verify_all_baselines, verify_design
from repro.vendors import PAPER_TABLE_III, STUDIED_VENDORS, vendor

__version__ = "1.0.0"

__all__ = [
    "AttackReport",
    "BindSchema",
    "BindSender",
    "CloudService",
    "Deployment",
    "DeviceAuthMode",
    "DeviceShadow",
    "MessageKind",
    "Observability",
    "Outcome",
    "PAPER_TABLE_III",
    "Party",
    "RemoteAttacker",
    "SECURE_BASELINES",
    "STUDIED_VENDORS",
    "ShadowEvent",
    "ShadowState",
    "VendorDesign",
    "__version__",
    "build_deployment",
    "evaluate_all_vendors",
    "evaluate_vendor",
    "render_table_ii",
    "render_table_iii",
    "run_all_attacks",
    "run_attack",
    "vendor",
    "verify_all_baselines",
    "verify_design",
]
