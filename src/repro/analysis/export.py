"""Export evaluation results: JSON, CSV and Markdown.

EXPERIMENTS.md's paper-vs-measured tables are generated from these
functions, and downstream users can feed the JSON into their own
tooling.
"""

from __future__ import annotations

import csv
import io
import json
from typing import List, Sequence

from repro.analysis.evaluator import VendorEvaluation, summarize_attack_prevalence

CSV_COLUMNS = ["vendor", "device", "status", "bind", "unbind", "A1", "A2", "A3", "A4"]


def evaluation_to_dict(evaluation: VendorEvaluation) -> dict:
    """One vendor's computed row plus per-attack details."""
    return {
        "vendor": evaluation.design.name,
        "device": evaluation.design.device_type,
        "cells": evaluation.cells(),
        "matches_paper": evaluation.matches_paper(),
        "attacks": {
            attack_id: {
                "outcome": report.outcome.value,
                "reason": report.reason,
            }
            for attack_id, report in evaluation.reports.items()
        },
    }


def to_json(evaluations: Sequence[VendorEvaluation], indent: int = 2) -> str:
    """The full evaluation as a JSON document."""
    payload = {
        "table": [evaluation_to_dict(ev) for ev in evaluations],
        "prevalence": summarize_attack_prevalence(list(evaluations)),
        "exact_reproduction": all(ev.matches_paper() for ev in evaluations),
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def to_csv(evaluations: Sequence[VendorEvaluation]) -> str:
    """Table III as CSV (one row per vendor)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(CSV_COLUMNS)
    for evaluation in evaluations:
        cells = evaluation.cells()
        writer.writerow([
            evaluation.design.name,
            evaluation.design.device_type,
            cells["status"],
            cells["bind"],
            cells["unbind"],
            cells["A1"],
            cells["A2"],
            cells["A3"],
            cells["A4"],
        ])
    return buffer.getvalue()


def to_markdown(evaluations: Sequence[VendorEvaluation]) -> str:
    """Table III as a GitHub-flavoured Markdown table."""
    header = "| # | Vendor | Device | Status | Bind | Unbind | A1 | A2 | A3 | A4 |"
    rule = "|---|--------|--------|--------|------|--------|----|----|----|----|"
    lines: List[str] = [header, rule]
    for index, evaluation in enumerate(evaluations, start=1):
        cells = evaluation.cells()
        lines.append(
            f"| {index} | {evaluation.design.name} | {evaluation.design.device_type} "
            f"| {cells['status']} | {cells['bind'].replace('Sent by the ', '')} "
            f"| {cells['unbind']} | {cells['A1']} | {cells['A2']} "
            f"| {cells['A3']} | {cells['A4']} |"
        )
    return "\n".join(lines)
