"""The declarative policy design space, checked differentially.

With authorization expressed as data (:class:`~repro.cloud.pdp.spec.PolicySpec`),
the paper's design space becomes enumerable *as policies*: every
consistent knob combination from
:func:`~repro.analysis.design_space.enumerate_design_space` compiles to
a validated spec (:func:`enumerate_policy_space`), and the same
declarative policy can be judged by two independent oracles —

* the closed-form outcome predictor
  (:func:`~repro.analysis.design_space.predict`), which reasons over the
  policy's knobs attack-by-attack, and
* the Figure-2 abstract model checker
  (:func:`~repro.analysis.protocol_model.check_safety`), which searches
  the shadow state machine for goal-reachability witnesses.

:func:`differential_check` sweeps the space and buckets every
disagreement into a *divergence class* ``(goal, which-oracle-claims-it)``.
The oracles model different abstraction levels on purpose — the model
checker's attacker can compose moves the per-attack predictor scores
separately — so a non-empty diff is a finding about the *abstractions*,
not a bug: each class pinpoints where composing attack steps changes
reachability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.design_space import enumerate_design_space, predict
from repro.analysis.protocol_model import check_safety
from repro.attacks.results import Outcome
from repro.cloud.pdp.spec import PolicySpec
from repro.cloud.policy import VendorDesign

#: the model checker's reachability goals, in report order
GOAL_ORDER = ("disconnect", "hijack", "occupy")


@dataclass
class PolicyPoint:
    """One point of the policy design space: knobs + compiled spec."""

    design: VendorDesign
    spec: PolicySpec

    @property
    def rules_digest(self) -> str:
        """Spec identity by *rule content* (name-independent).

        Two knob combinations that compile to the same rule lists are
        the same authorization policy, whatever the grid called them.
        """
        import hashlib
        import json

        data = self.spec.to_data()
        canonical = json.dumps(data["actions"], sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def enumerate_policy_space(limit: Optional[int] = None) -> Iterator[PolicyPoint]:
    """Compile every consistent grid design into a validated spec.

    ``from_design`` validates each compiled spec, so everything this
    yields is a well-formed policy a
    :class:`~repro.cloud.pdp.engine.PolicyDecisionPoint` would accept.
    """
    for index, design in enumerate(enumerate_design_space()):
        if limit is not None and index >= limit:
            return
        yield PolicyPoint(design=design, spec=PolicySpec.from_design(design))


def predicted_reachability(design: VendorDesign) -> Dict[str, bool]:
    """Fold the per-attack prediction into the model checker's goals.

    The mapping mirrors how Table III's columns relate to the abstract
    goals: *hijack* is any live-control takeover (A4, or an A3-3 that
    escalated into one), *occupy* is any path that leaves the attacker
    as the binding's owner, and *disconnect* is any A3 (an escalated
    A3-3 also disconnected the victim on the way).
    """
    outcomes = predict(design)

    def hit(attack_id: str) -> bool:
        return outcomes[attack_id] in (Outcome.SUCCESS, Outcome.ESCALATED)

    hijack = any(hit(a) for a in ("A4-1", "A4-2", "A4-3")) or (
        outcomes["A3-3"] is Outcome.ESCALATED
    )
    occupy = any(hit(a) for a in ("A2", "A3-3", "A4-1", "A4-2", "A4-3"))
    disconnect = any(hit(a) for a in ("A3-1", "A3-2", "A3-3", "A3-4"))
    return {"hijack": hijack, "occupy": occupy, "disconnect": disconnect}


@dataclass
class Divergence:
    """One policy the two oracles disagree on, for one goal."""

    design: str
    goal: str
    side: str  # "predict-only" | "model-only"
    witness: Optional[List[str]]  # the checker's move trace, when it has one

    def line(self) -> str:
        """One-line human rendering of this divergence."""
        claim = ("predictor claims it, model finds no trace"
                 if self.side == "predict-only"
                 else "model finds a trace the predictor misses")
        suffix = ""
        if self.witness is not None:
            suffix = f"  [{' -> '.join(self.witness) or '(already)'}]"
        return f"{self.design}: {self.goal} — {claim}{suffix}"


@dataclass
class DifferentialReport:
    """Aggregate result of a policy-space differential sweep."""

    policies: int = 0
    distinct_specs: int = 0
    agreements: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    #: (goal, side) -> count over the whole sweep
    classes: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def to_data(self) -> dict:
        """Plain data for ``--format json``."""
        return {
            "policies": self.policies,
            "distinct_specs": self.distinct_specs,
            "agreements": self.agreements,
            "divergence_classes": {
                f"{goal}/{side}": count
                for (goal, side), count in sorted(self.classes.items())
            },
            "divergences": [
                {
                    "design": d.design,
                    "goal": d.goal,
                    "side": d.side,
                    "witness": d.witness,
                }
                for d in self.divergences
            ],
        }

    def render(self, examples: int = 3) -> str:
        """Text report: totals, divergence classes, example witnesses."""
        lines = [
            f"policy design space: {self.policies} consistent policies, "
            f"{self.distinct_specs} distinct rule sets",
            f"  oracle agreement: {self.agreements}/{self.policies} policies "
            f"({self.agreements / self.policies:.1%})" if self.policies else "",
            "  divergence classes (goal / which oracle claims reachability):",
        ]
        if not self.classes:
            lines.append("    (none — the oracles agree everywhere)")
        for (goal, side), count in sorted(self.classes.items()):
            lines.append(f"    {goal:<11} {side:<13} {count} design(s)")
            shown = [d for d in self.divergences
                     if d.goal == goal and d.side == side][:examples]
            for divergence in shown:
                lines.append(f"      e.g. {divergence.line()}")
        return "\n".join(line for line in lines if line)


def differential_check(limit: Optional[int] = None,
                       max_depth: int = 6) -> DifferentialReport:
    """Sweep the policy space, diffing predictor vs model checker."""
    report = DifferentialReport()
    digests = set()
    for point in enumerate_policy_space(limit=limit):
        report.policies += 1
        digests.add(point.rules_digest)
        predicted = predicted_reachability(point.design)
        checked = check_safety(point.design, max_depth=max_depth)
        disagreed = False
        for goal in GOAL_ORDER:
            trace = checked.traces[goal]
            model_reachable = trace is not None
            if predicted[goal] == model_reachable:
                continue
            disagreed = True
            side = "predict-only" if predicted[goal] else "model-only"
            report.classes[(goal, side)] = report.classes.get((goal, side), 0) + 1
            report.divergences.append(Divergence(
                design=point.design.name,
                goal=goal,
                side=side,
                witness=trace,
            ))
        if not disagreed:
            report.agreements += 1
    report.distinct_specs = len(digests)
    return report
