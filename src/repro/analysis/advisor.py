"""Mitigation advisor: the minimal redesign that closes every attack.

Section VIII hopes the analysis "could further help IoT vendors improve
the security of their products and their clouds".  The advisor does
that mechanically: starting from a vendor's current design, it searches
over *individual knob changes* (breadth-first, so the result is a
minimum-size change set) until the closed-form model predicts no
successful attack, then re-verifies the fixed design by running the
full simulated battery.

Changes are restricted to things a vendor could actually ship in a
cloud/firmware update: authentication mode, revocation checks,
replacement semantics, connection policy, post-binding tokens.  The
physical ID scheme and who sends the binding message are treated as
hardware/UX constraints and left alone.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.design_space import predict
from repro.attacks.results import Outcome
from repro.cloud.policy import DeviceAuthMode, VendorDesign

#: Individually shippable changes: (label, {field: value, ...}).
CANDIDATE_CHANGES: Tuple[Tuple[str, Dict[str, object]], ...] = (
    ("adopt dynamic DevTokens for device authentication",
     {"device_auth": DeviceAuthMode.DEV_TOKEN,
      "device_auth_known": DeviceAuthMode.DEV_TOKEN}),
    ("verify the requester is the bound user on unbind",
     {"unbind_supported": True, "unbind_checks_bound_user": True}),
    ("remove the bare Unbind:DevId endpoint",
     {"unbind_accepts_bare_dev_id": False}),
    ("stop replacing existing bindings on re-bind",
     {"rebind_replaces_existing": False, "unbind_supported": True,
      "unbind_checks_bound_user": True}),
    ("issue post-binding authorization tokens",
     {"post_binding_token": True}),
    ("tolerate concurrent device connections (keep the first)",
     {"single_connection_per_device": False}),
    ("require a fresh same-IP device registration to bind",
     {"ip_match_required": True}),
)


def _apply_changes(design: VendorDesign, indices: FrozenSet[int]) -> VendorDesign:
    values = dict(design.__dict__)
    for index in sorted(indices):
        values.update(CANDIDATE_CHANGES[index][1])
    values["name"] = design.name  # same product
    return VendorDesign(**values)


def _full_knowledge(design: VendorDesign) -> VendorDesign:
    """The same design under Kerckhoffs' principle: the attacker knows
    the protocol.  UNCONFIRMED cells (firmware obscurity) must not count
    as security, so the advisor evaluates this variant."""
    values = dict(design.__dict__)
    values["device_auth_known"] = design.device_auth
    values["firmware_available"] = True
    return VendorDesign(**values)


def _is_secure(design: VendorDesign) -> bool:
    outcomes = predict(_full_knowledge(design))
    return not any(
        outcome in (Outcome.SUCCESS, Outcome.ESCALATED)
        for outcome in outcomes.values()
    )


@dataclass
class Advice:
    """The advisor's output for one vendor."""

    vendor: str
    already_secure: bool
    changes: List[str] = field(default_factory=list)
    fixed_design: Optional[VendorDesign] = None

    def render(self) -> str:
        """Human-readable change list."""
        if self.already_secure:
            return f"{self.vendor}: already defeats the full battery"
        if self.fixed_design is None:
            return f"{self.vendor}: no fix found within the change budget"
        lines = [f"{self.vendor}: {len(self.changes)} change(s) close every attack"]
        lines.extend(f"  - {change}" for change in self.changes)
        return "\n".join(lines)


def advise(design: VendorDesign, max_changes: int = 4) -> Advice:
    """Minimum-size set of shippable changes that secures *design*."""
    if _is_secure(design):
        return Advice(design.name, already_secure=True, fixed_design=design)
    seen = {frozenset()}
    frontier: deque = deque([frozenset()])
    while frontier:
        current = frontier.popleft()
        if len(current) >= max_changes:
            continue
        for index in range(len(CANDIDATE_CHANGES)):
            if index in current:
                continue
            candidate = current | {index}
            if candidate in seen:
                continue
            seen.add(candidate)
            try:
                fixed = _apply_changes(design, candidate)
            except Exception:
                continue  # inconsistent combination
            if _is_secure(fixed):
                return Advice(
                    design.name,
                    already_secure=False,
                    changes=[CANDIDATE_CHANGES[i][0] for i in sorted(candidate)],
                    fixed_design=fixed,
                )
            frontier.append(candidate)
    return Advice(design.name, already_secure=False)


def verify_advice(advice: Advice, seed: int = 0) -> bool:
    """Re-check the fix with the full simulated battery (not the model)."""
    from repro.attacks.runner import run_all_attacks

    if advice.fixed_design is None:
        return False
    reports = run_all_attacks(advice.fixed_design, seed=seed)
    return not any(
        report.outcome in (Outcome.SUCCESS, Outcome.ESCALATED)
        for report in reports.values()
    )
