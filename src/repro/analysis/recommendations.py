"""Lessons-learned checker (Section VII as executable lint).

Given a :class:`VendorDesign`, flag every practice the paper's four
lessons warn against.  Vendors can run this as a design-time check; the
reproduction uses it to show the ten profiles trip exactly the findings
the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cloud.policy import BindSender, DeviceAuthMode, VendorDesign


@dataclass(frozen=True)
class Finding:
    """One violated recommendation."""

    rule: str
    severity: str  # "high" | "medium"
    message: str

    def line(self) -> str:
        return f"[{self.severity:<6}] {self.rule}: {self.message}"


def check_design(design: VendorDesign) -> List[Finding]:
    """All Section-VII findings for one design."""
    findings: List[Finding] = []

    # Lesson 1: never authenticate devices with static identifiers.
    if design.device_auth is DeviceAuthMode.DEV_ID:
        findings.append(Finding(
            "static-device-id-auth", "high",
            "device authentication uses the static DevId; request a "
            "dynamic device secret from the user instead",
        ))

    # Lesson 2: binding needs real authorization, not ambient authority.
    if design.device_auth is not DeviceAuthMode.PUBKEY and not design.post_binding_token \
            and design.bind_schema.value == "acl":
        findings.append(Finding(
            "ambient-authority-binding", "high",
            "ACL binding with no post-binding authorization: the DevId "
            "acts as ambient authority and cannot represent ownership",
        ))
    if design.ip_match_required:
        findings.append(Finding(
            "ip-match-heuristic", "medium",
            "source-IP comparison blocks remote binding forgery but is a "
            "heuristic, not an authorization mechanism",
        ))

    # Lesson 3: revocation is an authorization step.
    if not design.unbind_supported:
        findings.append(Finding(
            "revocation-by-replacement", "high",
            "no unbinding endpoint; replacing bindings stands in for "
            "revocation and invites unbinding/hijacking attacks",
        ))
    elif not design.unbind_checks_bound_user:
        findings.append(Finding(
            "unchecked-unbind", "high",
            "Type-1 unbind does not verify the requester is the bound user",
        ))
    if design.unbind_accepts_bare_dev_id:
        findings.append(Finding(
            "bare-devid-unbind", "high",
            "Unbind:DevId lets anyone holding the ID revoke the binding",
        ))
    if design.rebind_replaces_existing and design.unbind_supported:
        findings.append(Finding(
            "silent-rebind", "medium",
            "a new Bind silently replaces the existing binding",
        ))

    # Lesson 4: never hand the user's account credential to the device.
    if design.bind_sender is BindSender.DEVICE and design.bind_schema.value == "acl":
        findings.append(Finding(
            "credential-on-device", "high",
            "the user's UserId/UserPw is delivered to the device during "
            "local configuration; a compromised device leaks the account",
        ))

    # ID hygiene (Section VII opening).
    if design.id_scheme == "mac-address":
        findings.append(Finding(
            "mac-derived-id", "medium",
            "MAC-derived IDs leave a 3-byte search space once the OUI is known",
        ))
    elif design.id_scheme == "serial-number" and design.id_serial_digits <= 7:
        findings.append(Finding(
            "short-serial-id", "high",
            f"{design.id_serial_digits}-digit serials are enumerable within "
            "an hour at realistic request rates",
        ))
    if design.id_label_on_device:
        findings.append(Finding(
            "id-on-label", "medium",
            "the device ID is printed on the device/package and leaks "
            "through ownership transfer and the supply chain",
        ))

    return findings


def render_findings(design: VendorDesign) -> str:
    """All findings for one design as text."""
    findings = check_design(design)
    if not findings:
        return f"{design.name}: no findings"
    lines = [f"{design.name}: {len(findings)} finding(s)"]
    lines.extend("  " + finding.line() for finding in findings)
    return "\n".join(lines)
