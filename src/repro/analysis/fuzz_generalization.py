"""Detector generalization against fuzz-found attacks.

The detection pipeline was tuned on the paper's hand-written A1–A4
battery.  The fuzz corpus is exactly the traffic it was *not* tuned
for: minimized machine-found sequences mixing forged, stale and
legitimate messages.  This module replays each witness with the
pipeline attached and scores precision/recall against the simulation's
perfect ground truth (attack traffic originates at attacker nodes), so
``BENCH_fuzz.json`` answers: does detection generalize, or did it
overfit the battery?
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.fuzz.corpus import DEFAULT_CORPUS, design_named, load_corpus
from repro.fuzz.executor import SequenceExecutor
from repro.fuzz.witness import Witness
from repro.obs.detect.pipeline import DetectionPipeline
from repro.obs.detect.score import merge_detection, render_score, score_detection


def score_witness(witness: Witness, seed: Optional[int] = None) -> Dict[str, Any]:
    """Replay one witness under a fresh pipeline; score the alerts."""
    executor = SequenceExecutor(
        design_named(witness.design),
        seed=witness.seed if seed is None else seed,
    )
    pipeline = DetectionPipeline()
    pipeline.attach(executor.cloud)
    executor.execute(witness.sequence)
    pipeline.catch_up(executor.cloud)
    pipeline.detach()
    events = list(executor.cloud.forensics.events())
    return score_detection(events, pipeline.alerts)


def score_corpus(
    path: Union[str, Path] = DEFAULT_CORPUS,
    seed: Optional[int] = None,
) -> Dict[str, Any]:
    """Per-witness and merged detection scores for the whole corpus.

    Differential witnesses are skipped: they certify policy-layer
    equivalence, not attacks, so there is no traffic to detect.
    """
    witnesses = [w for w in load_corpus(path) if w.kind != "differential"]
    per_witness: Dict[str, Dict[str, Any]] = {}
    for witness in sorted(witnesses, key=lambda w: w.name):
        per_witness[witness.name] = score_witness(witness, seed=seed)
    merged = merge_detection(list(per_witness.values()))
    return {
        "kind": "fuzz-generalization",
        "corpus": len(per_witness),
        "per_witness": per_witness,
        "merged": merged,
    }


def write_bench(
    result: Dict[str, Any],
    out: Union[str, Path] = "benchmarks/output/BENCH_fuzz.json",
) -> Path:
    """Persist the score in the BENCH_*.json artifact convention."""
    path = Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def render(result: Dict[str, Any]) -> str:
    """Human rendering: merged ratios first, then the per-witness table."""
    lines: List[str] = [
        f"detector generalization over {result['corpus']} fuzz witnesses:"
    ]
    merged = result.get("merged")
    if merged is None:
        lines.append("  (empty corpus)")
        return "\n".join(lines)
    lines.append(render_score(merged))
    lines.append("  per witness:")
    for name, score in result["per_witness"].items():
        detected = "detected" if score["true_alerts"] else "MISSED"
        lines.append(
            f"    {name:<52} precision={score['precision']:.2f} "
            f"recall={score['recall']:.2f} [{detected}]"
        )
    return "\n".join(lines)
