"""Text renderers for the reproduced tables and figures."""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.evaluator import VendorEvaluation, summarize_attack_prevalence

_CHECK = {"yes": "Y", "no": "x", "O": "O", "N.A.": "N.A."}


def _mark(cell: str) -> str:
    """Render an attack cell: Y/x/O or the variant list itself."""
    return _CHECK.get(cell, cell)


def render_table_iii(evaluations: Sequence[VendorEvaluation]) -> str:
    """Fixed-width rendering of the computed Table III."""
    header = (
        f"{'#':<3} {'Vendor':<13} {'Device':<13} {'Status':<9} "
        f"{'Bind sent by':<19} {'Unbind':<26} {'A1':<3} {'A2':<3} "
        f"{'A3':<12} {'A4':<5}"
    )
    lines = ["TABLE III: Evaluation Results on Experimental Devices", header,
             "-" * len(header)]
    for index, evaluation in enumerate(evaluations, start=1):
        cells = evaluation.cells()
        lines.append(
            f"{index:<3} {evaluation.design.name:<13} "
            f"{evaluation.design.device_type:<13} {cells['status']:<9} "
            f"{cells['bind'].replace('Sent by the ', ''):<19} {cells['unbind']:<26} "
            f"{_mark(cells['A1']):<3} {_mark(cells['A2']):<3} "
            f"{_mark(cells['A3']):<12} {_mark(cells['A4']):<5}"
        )
    counts = summarize_attack_prevalence(list(evaluations))
    lines.append("-" * len(header))
    lines.append(
        "prevalence: "
        + "  ".join(f"{attack}:{count}" for attack, count in counts.items())
    )
    lines.append("legend: Y = attack launched, x = failed, O = unable to confirm")
    return "\n".join(lines)


def render_agreement(evaluations: Sequence[VendorEvaluation]) -> str:
    """Cell-for-cell comparison against the published table."""
    lines = ["Agreement with the paper's Table III:"]
    disagreements = 0
    for evaluation in evaluations:
        diff = evaluation.diff_from_paper()
        if not diff:
            lines.append(f"  {evaluation.design.name:<14} all cells match")
        else:
            disagreements += len(diff)
            for cell, (computed, expected) in diff.items():
                lines.append(
                    f"  {evaluation.design.name:<14} {cell}: computed={computed!r} "
                    f"paper={expected!r}"
                )
    lines.append(
        "RESULT: "
        + ("exact reproduction" if disagreements == 0 else f"{disagreements} cell(s) differ")
    )
    return "\n".join(lines)


def render_attack_log(evaluations: Sequence[VendorEvaluation]) -> str:
    """Every individual attack report, for the appendix-style dump."""
    lines: List[str] = []
    for evaluation in evaluations:
        lines.append(f"== {evaluation.design.name} ==")
        for attack_id, report in evaluation.reports.items():
            lines.append(f"  {attack_id:<5} {report.outcome.value:<9} {report.reason}")
    return "\n".join(lines)
