"""One-shot compilation of every reproduced artifact into a report.

``python -m repro report`` (or :func:`render_full_report`) regenerates
the paper's tables and figures plus the reproduction's extensions in a
single text document — the closest thing to re-typesetting the paper's
evaluation section from live code.
"""

from __future__ import annotations

from typing import List


def render_full_report(seed: int = 3) -> str:
    """Build the complete artifact report (takes a few seconds)."""
    from repro.analysis.advisor import advise
    from repro.analysis.design_space import sweep_design_space
    from repro.analysis.evaluator import evaluate_all_vendors
    from repro.analysis.metrics import compare_designs, render_costs
    from repro.analysis.protocol_model import check_safety
    from repro.analysis.recommendations import render_findings
    from repro.analysis.report import render_agreement, render_table_iii
    from repro.analysis.surface import render_table_ii
    from repro.analysis.traces import trace_binding_creation, trace_device_auth, trace_lifecycle
    from repro.core.model import check_paper_properties, render_figure_2
    from repro.core.notation import render_table_i
    from repro.identity.device_ids import MacDeviceId, RandomDeviceId, SerialDeviceId
    from repro.identity.entropy import analyze, render_report
    from repro.secure import SECURE_BASELINES, verify_all_baselines
    from repro.vendors import STUDIED_VENDORS, vendor

    sections: List[str] = []

    def section(title: str, body: str) -> None:
        sections.append("=" * 72)
        sections.append(title)
        sections.append("=" * 72)
        sections.append(body)
        sections.append("")

    section("Table I — notation", render_table_i())
    section("Figure 1 — binding life cycle (Belkin)",
            trace_lifecycle(vendor("Belkin"), seed=seed))
    properties = check_paper_properties()
    section(
        "Figure 2 — device-shadow state machine",
        render_figure_2() + "\n\nmodel properties:\n" + "\n".join(
            f"  {name:<36} {'OK' if ok else 'VIOLATED'}"
            for name, ok in properties.items()
        ),
    )
    section("Figure 3 — device authentication designs", trace_device_auth(seed=seed))
    section("Figure 4 — binding creation designs", trace_binding_creation(seed=seed))
    section("Table II — attack taxonomy", render_table_ii())

    evaluations = evaluate_all_vendors(seed=seed)
    section(
        "Table III — ten-vendor evaluation",
        render_table_iii(evaluations) + "\n\n" + render_agreement(evaluations),
    )

    schemes = [SerialDeviceId(digits=6), SerialDeviceId(digits=7),
               MacDeviceId("a4:77:33"), RandomDeviceId(hex_chars=32)]
    section("Device-ID enumerability", render_report([analyze(s) for s in schemes]))

    section(
        "Recommended designs under the battery",
        "\n\n".join(v.render() for v in verify_all_baselines(seed=seed)),
    )
    section("Design-space sweep", sweep_design_space().render())
    section(
        "Model-checked witnesses",
        "\n\n".join(check_safety(design).render() for design in STUDIED_VENDORS),
    )
    section(
        "Minimal fixes per vendor",
        "\n".join(advise(design).render() for design in STUDIED_VENDORS),
    )
    section(
        "Section VII design lint",
        "\n\n".join(render_findings(design) for design in STUDIED_VENDORS),
    )
    section(
        "Setup-cost overhead",
        render_costs(compare_designs(list(STUDIED_VENDORS) + list(SECURE_BASELINES),
                                     seed=seed)),
    )
    return "\n".join(sections)
