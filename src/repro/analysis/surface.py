"""Systematic attack-surface exploration: regenerating Table II.

Section V-A derives the taxonomy by "considering that all three types
of messages could be forged and sent to the cloud in all states of a
device shadow".  This module does that mechanically: it walks every
(shadow state x forged primitive) pair through the Figure 2 transition
function, keeps the pairs where a forged message changes the victim's
situation, and labels them with the paper's attack IDs.  The end states
printed in Table II are *computed* from the state machine, not typed in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.model import run
from repro.core.states import ShadowEvent, ShadowState


@dataclass(frozen=True)
class SurfacePoint:
    """One (state, forged primitive) probe and its machine-level effect."""

    state: ShadowState
    event: ShadowEvent
    end_state: ShadowState

    @property
    def changes_state(self) -> bool:
        return self.end_state is not self.state


def explore_surface() -> List[SurfacePoint]:
    """Every (state, binding-relevant forged event) pair and its effect.

    Status timeout is excluded: an attacker cannot forge the *absence*
    of messages (they can only cause it indirectly, which the taxonomy
    captures as A3-4).
    """
    forgeable = [
        ShadowEvent.STATUS_RECEIVED,
        ShadowEvent.BIND_CREATED,
        ShadowEvent.BIND_REVOKED,
    ]
    return [
        SurfacePoint(state, event, run([event], start=state))
        for state in ShadowState
        for event in forgeable
    ]


@dataclass(frozen=True)
class TaxonomyRow:
    """One row of Table II."""

    attack_id: str
    label: str
    forged_messages: str
    targeted_states: Tuple[ShadowState, ...]
    end_state: ShadowState
    consequence: str


def _end_state(start: ShadowState, events: Sequence[ShadowEvent]) -> ShadowState:
    """End state computed on the actual machine (keeps the table honest)."""
    return run(events, start=start)


def build_taxonomy() -> List[TaxonomyRow]:
    """Construct Table II, computing every end state from the machine.

    Notes on the user-perspective end states:

    * A1 leaves the machine in *control* — except the attacker now plays
      the device role.
    * A3 variants leave the victim's device effectively *online*
      (authenticated but no longer bound to the victim).
    * A4 variants end in *control* — bound to the attacker.
    """
    control = ShadowState.CONTROL
    initial = ShadowState.INITIAL
    online = ShadowState.ONLINE
    bound = ShadowState.BOUND

    rows = [
        TaxonomyRow(
            "A1", "Data injection and stealing",
            "Status:DevId",
            (control, bound),
            _end_state(bound, [ShadowEvent.STATUS_RECEIVED]),  # -> control
            "The attacker can inject fake device data or steal private user data.",
        ),
        TaxonomyRow(
            "A2", "Binding denial-of-service",
            "Bind:(DevId,UserToken)",
            (initial,),
            _end_state(initial, [ShadowEvent.BIND_CREATED]),  # -> bound
            "The attacker can cause denial-of-service to the user's binding operation.",
        ),
        TaxonomyRow(
            "A3-1", "Device unbinding",
            "Unbind:DevId",
            (control,),
            _end_state(control, [ShadowEvent.BIND_REVOKED]),  # -> online
            "The attacker can disconnect the device from the user.",
        ),
        TaxonomyRow(
            "A3-2", "Device unbinding",
            "Unbind:(DevId,UserToken)",
            (control,),
            _end_state(control, [ShadowEvent.BIND_REVOKED]),
            "The attacker can disconnect the device from the user.",
        ),
        TaxonomyRow(
            "A3-3", "Device unbinding",
            "Bind:(DevId,UserToken)",
            (control,),
            _end_state(control, [ShadowEvent.BIND_REVOKED]),
            "The attacker can disconnect the device from the user.",
        ),
        TaxonomyRow(
            "A3-4", "Device unbinding",
            "Status:DevId",
            (control,),
            _end_state(control, [ShadowEvent.BIND_REVOKED]),
            "The attacker can disconnect the device from the user.",
        ),
        TaxonomyRow(
            "A4-1", "Device hijacking",
            "Bind:(DevId,UserToken)",
            (control,),
            control,
            "The attacker can take absolute control of the device.",
        ),
        TaxonomyRow(
            "A4-2", "Device hijacking",
            "Bind:(DevId,UserToken)",
            (online,),
            _end_state(online, [ShadowEvent.BIND_CREATED]),  # -> control
            "The attacker can take absolute control of the device.",
        ),
        TaxonomyRow(
            "A4-3", "Device hijacking",
            "(1) Unbind:DevId or (DevId,UserToken); (2) Bind:(DevId,UserToken)",
            (control,),
            _end_state(
                control, [ShadowEvent.BIND_REVOKED, ShadowEvent.BIND_CREATED]
            ),  # -> control
            "The attacker can take absolute control of the device.",
        ),
    ]
    return rows


def render_table_ii() -> str:
    """Fixed-width text rendering of Table II."""
    rows = build_taxonomy()
    lines = [
        "TABLE II: The Taxonomy of Attacks in Remote Binding",
        f"{'attack':<6} {'forged message types':<45} {'targeted states':<24} "
        f"{'end state':<10} consequence",
    ]
    for row in rows:
        targets = " and ".join(state.value for state in row.targeted_states)
        lines.append(
            f"{row.attack_id:<6} {row.forged_messages:<45} {targets:<24} "
            f"{row.end_state.value:<10} {row.consequence}"
        )
    return "\n".join(lines)


def surface_summary() -> Dict[str, int]:
    """Counts used by tests: how many probes exist / change state."""
    points = explore_surface()
    return {
        "total": len(points),
        "state_changing": sum(1 for p in points if p.changes_state),
    }
