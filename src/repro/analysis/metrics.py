"""Protocol-cost metrics: what the secure designs cost in messages.

The paper argues vendors chose weak designs partly for convenience
(Section IV's assessments).  This module quantifies the convenience
axis: it runs the full Figure 1 setup flow for a design with a packet
tap attached and counts the messages each party had to send.  The
``bench_overhead`` benchmark tabulates weak vs. recommended designs —
the security upgrade costs only a handful of extra local messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cloud.policy import VendorDesign
from repro.net.packet import Exchange
from repro.scenario import Deployment


@dataclass
class FlowCost:
    """Message counts for one complete setup flow."""

    design: str
    total: int = 0
    to_cloud: int = 0
    local: int = 0
    by_summary: Dict[str, int] = field(default_factory=dict)
    rejected: int = 0
    setup_succeeded: bool = False

    def row(self) -> str:
        return (
            f"{self.design:<22} {self.total:>6} {self.to_cloud:>9} "
            f"{self.local:>7} {self.rejected:>9}   "
            f"{'ok' if self.setup_succeeded else 'FAILED'}"
        )


def measure_setup_cost(design: VendorDesign, seed: int = 0) -> FlowCost:
    """Count every message of the victim's full setup flow.

    Heartbeat traffic after the flow completes is excluded by stopping
    the tap once the binding exists (steady-state cost is identical
    across designs).
    """
    from repro.core.messages import describe

    deployment = Deployment(design, seed=seed)
    cost = FlowCost(design=design.name)
    counting = {"on": True}

    def tap(exchange: Exchange) -> None:
        if not counting["on"]:
            return
        packet = exchange.request
        if packet.src.startswith("app:attacker") or packet.src.startswith("device:attacker"):
            return
        cost.total += 1
        if packet.dst == deployment.cloud.node_name:
            cost.to_cloud += 1
        else:
            cost.local += 1
        summary = describe(packet.message)
        cost.by_summary[summary] = cost.by_summary.get(summary, 0) + 1
        if not exchange.ok:
            cost.rejected += 1

    deployment.network.add_tap(tap)
    cost.setup_succeeded = deployment.victim_full_setup()
    counting["on"] = False
    return cost


def compare_designs(designs: List[VendorDesign], seed: int = 0) -> List[FlowCost]:
    """Setup cost for several designs, in input order."""
    return [measure_setup_cost(design, seed=seed) for design in designs]


def render_costs(costs: List[FlowCost]) -> str:
    """Fixed-width table over several flow costs."""
    header = (
        f"{'design':<22} {'msgs':>6} {'to cloud':>9} {'local':>7} "
        f"{'rejected':>9}   setup"
    )
    lines = ["Setup-flow message cost per design", header, "-" * len(header)]
    lines.extend(cost.row() for cost in costs)
    return "\n".join(lines)
