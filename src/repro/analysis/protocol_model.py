"""Protocol-level model checking: discover attack sequences automatically.

Section VIII: "we would also like to explore the feasibility to
automatically discover remote binding threat without the presence of
physical devices."  This module is that exploration, on top of the
reproduction's design knobs: it builds an *abstract* three-party
transition system for a given :class:`VendorDesign` — tracking only the
security-relevant facts — and searches it exhaustively.

* :func:`find_trace` returns a shortest *witness*: the exact sequence of
  attacker messages reaching a goal (hijack, standing DoS, ...), or
  ``None`` if the goal is unreachable — a proof sketch of safety under
  the abstraction.
* :func:`check_safety` verifies a design against all goals at once.

The abstraction tracks: who the binding belongs to, whether the real
device's session is live, whether the victim can recover, and whether
the attacker's control path is complete.  Attacker moves mirror the
wire messages of ``repro.attacks``; the conformance tests check that a
found witness actually *executes* against the full simulation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.cloud.policy import BindSchema, BindSender, DeviceAuthMode, VendorDesign

# Who the cloud-side binding belongs to.
NOBODY, VICTIM, ATTACKER = "nobody", "victim", "attacker"


@dataclass(frozen=True)
class AbstractState:
    """The security-relevant facts of the three-party system."""

    #: current binding owner
    owner: str = VICTIM
    #: the real device holds valid credentials and serves its binding
    device_live: bool = True
    #: the attacker's binding (if any) has a working control path
    attacker_controls: bool = False
    #: the victim has a working control path
    victim_controls: bool = True

    def key(self) -> Tuple:
        return (self.owner, self.device_live, self.attacker_controls,
                self.victim_controls)


def _attacker_moves(design: VendorDesign) -> List[str]:
    """Which forged messages this attacker can even construct."""
    moves = []
    craftable_bind = (
        design.bind_schema is BindSchema.ACL
        and (design.bind_sender is BindSender.APP or design.firmware_available)
    )
    if craftable_bind:
        moves.append("bind")
    if design.unbind_supported:
        moves.append("unbind-type1")
        if design.unbind_accepts_bare_dev_id and design.firmware_available:
            moves.append("unbind-type2")
    if design.device_auth is DeviceAuthMode.DEV_ID and design.firmware_available:
        moves.append("forge-status")
    return moves


def _apply(design: VendorDesign, state: AbstractState, move: str) -> Optional[AbstractState]:
    """The cloud's response to one attacker move; None = rejected."""
    if move == "bind":
        if design.ip_match_required:
            return None  # no fresh same-IP registration exists remotely
        if design.bind_requires_online_device and not state.device_live:
            return None
        if state.owner != NOBODY and not design.rebind_replaces_existing:
            return None  # already-bound (or idempotent for the attacker)
        # binding transfers to the attacker
        device_live = state.device_live
        if design.device_auth is DeviceAuthMode.DEV_TOKEN:
            # token rotation: the real device is locked out of the new binding
            device_live = False
        attacker_controls = (
            device_live and not design.post_binding_token
        )
        return AbstractState(
            owner=ATTACKER,
            device_live=device_live,
            attacker_controls=attacker_controls,
            victim_controls=False,
        )
    if move == "unbind-type1":
        if state.owner != VICTIM:
            return None  # nothing of the victim's to revoke
        if design.unbind_checks_bound_user:
            return None  # the attacker's token is not the bound user's
        return replace(state, owner=NOBODY, victim_controls=False)
    if move == "unbind-type2":
        if state.owner != VICTIM:
            return None
        return replace(state, owner=NOBODY, victim_controls=False)
    if move == "forge-status":
        # A3-4: on single-connection clouds the forged session evicts
        # the real device, cutting the victim's control path.
        if not design.single_connection_per_device:
            return None
        if not state.victim_controls:
            return None  # nothing left to disrupt
        return replace(state, victim_controls=False)
    raise ValueError(f"unknown move {move!r}")  # pragma: no cover


#: Goal predicates over abstract states.
GOALS = {
    "hijack": lambda s: s.attacker_controls,
    "disconnect": lambda s: not s.victim_controls,
    "occupy": lambda s: s.owner == ATTACKER,
}


def find_trace(design: VendorDesign, goal: str,
               start: Optional[AbstractState] = None,
               max_depth: int = 6) -> Optional[List[str]]:
    """Shortest attacker message sequence reaching *goal*, or None.

    The default start is the paper's control state: victim bound, device
    live, victim in control.
    """
    try:
        predicate = GOALS[goal]
    except KeyError:
        raise ValueError(f"unknown goal {goal!r}; choose from {sorted(GOALS)}") from None
    state = start or AbstractState()
    if predicate(state):
        return []
    moves = _attacker_moves(design)
    seen = {state.key()}
    frontier = deque([(state, [])])
    while frontier:
        current, path = frontier.popleft()
        if len(path) >= max_depth:
            continue
        for move in moves:
            nxt = _apply(design, current, move)
            if nxt is None or nxt.key() in seen:
                continue
            new_path = path + [move]
            if predicate(nxt):
                return new_path
            seen.add(nxt.key())
            frontier.append((nxt, new_path))
    return None


@dataclass
class SafetyReport:
    """Reachability of every goal for one design."""

    design: str
    traces: Dict[str, Optional[List[str]]]

    @property
    def safe_against_hijack(self) -> bool:
        return self.traces["hijack"] is None

    def render(self) -> str:
        """Witnesses / safety verdicts, one line per goal."""
        lines = [f"protocol model of {self.design}:"]
        for goal, trace in sorted(self.traces.items()):
            if trace is None:
                lines.append(f"  {goal:<11} UNREACHABLE (safe)")
            else:
                lines.append(f"  {goal:<11} witness: {' -> '.join(trace) or '(already)'}")
        return "\n".join(lines)


def check_safety(design: VendorDesign, max_depth: int = 6) -> SafetyReport:
    """Search every goal from the control state."""
    return SafetyReport(
        design=design.name,
        traces={goal: find_trace(design, goal, max_depth=max_depth) for goal in GOALS},
    )
