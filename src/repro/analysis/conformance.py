"""Runtime conformance: does the implementation obey the formal model?

Every :class:`~repro.core.shadow.DeviceShadow` records its transition
history.  The checker replays that history against the pure transition
function of ``repro.core.model`` and flags any divergence — the cloud
implementation can therefore never silently drift from Figure 2.  A
second checker validates whole deployments: every shadow conforms and
cross-store invariants hold (binding table vs. shadow flags).

This is the reproduction's answer to the paper's observation that
"those homemade solutions are not formally verified" (Section IX).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.shadow import DeviceShadow, next_state
from repro.core.states import ShadowState


@dataclass(frozen=True)
class Violation:
    """One conformance violation."""

    device_id: str
    kind: str
    detail: str

    def line(self) -> str:
        return f"{self.device_id}: [{self.kind}] {self.detail}"


@dataclass
class ConformanceReport:
    """Result of checking one shadow or one whole deployment."""

    checked_shadows: int = 0
    checked_transitions: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def merge(self, other: "ConformanceReport") -> None:
        """Fold another report into this one."""
        self.checked_shadows += other.checked_shadows
        self.checked_transitions += other.checked_transitions
        self.violations.extend(other.violations)

    def render(self) -> str:
        """Human-readable summary with one line per violation."""
        lines = [
            f"conformance: {self.checked_shadows} shadow(s), "
            f"{self.checked_transitions} transition(s), "
            f"{len(self.violations)} violation(s)",
        ]
        lines.extend("  " + violation.line() for violation in self.violations)
        return "\n".join(lines)


def check_shadow(shadow: DeviceShadow) -> ConformanceReport:
    """Replay one shadow's history against the formal machine."""
    report = ConformanceReport(checked_shadows=1)
    state = ShadowState.INITIAL
    previous_time = float("-inf")
    for record in shadow.history:
        report.checked_transitions += 1
        if record.time < previous_time:
            report.violations.append(Violation(
                shadow.device_id, "time-order",
                f"transition at t={record.time} after t={previous_time}",
            ))
        previous_time = record.time
        if record.before is not state:
            report.violations.append(Violation(
                shadow.device_id, "continuity",
                f"history says before={record.before} but model is in {state}",
            ))
            state = record.before
        expected = next_state(state, record.event)
        if record.after is not expected:
            report.violations.append(Violation(
                shadow.device_id, "transition",
                f"{state} --{record.event}--> {record.after}, "
                f"but Figure 2 says {expected}",
            ))
        state = record.after
    if shadow.state is not state:
        report.violations.append(Violation(
            shadow.device_id, "final-state",
            f"live state {shadow.state} but replay ends in {state}",
        ))
    return report


def check_deployment(deployment) -> ConformanceReport:
    """Check every shadow of a deployment plus cross-store invariants."""
    report = ConformanceReport()
    cloud = deployment.cloud
    for shadow in cloud.shadows.all():
        report.merge(check_shadow(shadow))
        bound = cloud.bindings.bound_user(shadow.device_id)
        if shadow.is_bound and bound is None:
            report.violations.append(Violation(
                shadow.device_id, "store-sync",
                "shadow is bound but the binding table has no entry",
            ))
        if not shadow.is_bound and bound is not None:
            report.violations.append(Violation(
                shadow.device_id, "store-sync",
                f"shadow unbound but binding table says {bound!r}",
            ))
        if shadow.bound_user != bound:
            report.violations.append(Violation(
                shadow.device_id, "store-sync",
                f"shadow bound_user={shadow.bound_user!r} != table {bound!r}",
            ))
    return report
