"""Analysis layer: surface exploration, vendor evaluation, reporting."""

from repro.analysis.advisor import Advice, advise, verify_advice
from repro.analysis.conformance import (
    ConformanceReport,
    check_deployment,
    check_shadow,
)
from repro.analysis.design_space import (
    conformance_diff,
    enumerate_design_space,
    predict,
    sweep_design_space,
)
from repro.analysis.export import to_csv, to_json, to_markdown
from repro.analysis.metrics import compare_designs, measure_setup_cost, render_costs
from repro.analysis.protocol_model import (
    AbstractState,
    SafetyReport,
    check_safety,
    find_trace,
)
from repro.analysis.evaluator import (
    VendorEvaluation,
    evaluate_all_vendors,
    evaluate_vendor,
    summarize_attack_prevalence,
)
from repro.analysis.recommendations import Finding, check_design, render_findings
from repro.analysis.report import render_agreement, render_attack_log, render_table_iii
from repro.analysis.stealth import (
    DetectionReport,
    probe_attack_detectability,
    render_survey,
    stealth_survey,
)
from repro.analysis.surface import (
    SurfacePoint,
    TaxonomyRow,
    build_taxonomy,
    explore_surface,
    render_table_ii,
    surface_summary,
)
from repro.analysis.traces import (
    trace_binding_creation,
    trace_device_auth,
    trace_lifecycle,
)

__all__ = [
    "AbstractState",
    "Advice",
    "ConformanceReport",
    "DetectionReport",
    "advise",
    "probe_attack_detectability",
    "render_survey",
    "stealth_survey",
    "verify_advice",
    "Finding",
    "SafetyReport",
    "check_deployment",
    "check_safety",
    "check_shadow",
    "compare_designs",
    "conformance_diff",
    "find_trace",
    "measure_setup_cost",
    "render_costs",
    "to_csv",
    "to_json",
    "to_markdown",
    "enumerate_design_space",
    "predict",
    "sweep_design_space",
    "trace_binding_creation",
    "trace_device_auth",
    "trace_lifecycle",
    "SurfacePoint",
    "TaxonomyRow",
    "VendorEvaluation",
    "build_taxonomy",
    "check_design",
    "evaluate_all_vendors",
    "evaluate_vendor",
    "explore_surface",
    "render_agreement",
    "render_attack_log",
    "render_findings",
    "render_table_ii",
    "render_table_iii",
    "summarize_attack_prevalence",
    "surface_summary",
]
