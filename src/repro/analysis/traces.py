"""Message-sequence traces: reproducing Figures 1, 3 and 4 as text.

Each trace runs a *real* flow on a fresh deployment with a packet
capture attached, then renders the observed message sequence in the
paper's vocabulary.  Nothing is scripted: if a handler changed, the
trace would change with it.
"""

from __future__ import annotations

from typing import List

from repro.cloud.policy import BindSender, DeviceAuthMode, VendorDesign
from repro.core.messages import describe
from repro.net.packet import Exchange
from repro.scenario import Deployment
from repro.secure.designs import SECURE_CAPABILITY, SECURE_PUBKEY


def _role(deployment: Deployment, node: str) -> str:
    mapping = {
        deployment.victim.app.node_name: "app",
        deployment.victim.device.node_name: "device",
        deployment.cloud.node_name: "cloud",
        deployment.attacker_party.app.node_name: "attacker",
        deployment.attacker_party.device.node_name: "attacker-device",
    }
    return mapping.get(node, node)


class _Recorder:
    """Captures exchanges and renders them as sequence lines."""

    def __init__(self, deployment: Deployment) -> None:
        self.deployment = deployment
        self.lines: List[str] = []
        deployment.network.add_tap(self._tap)

    def _tap(self, exchange: Exchange) -> None:
        packet = exchange.request
        src = _role(self.deployment, packet.src)
        dst = _role(self.deployment, packet.dst)
        outcome = "" if exchange.ok else f"   !! {exchange.error_code}"
        self.lines.append(
            f"  [t={packet.time:7.3f}] {src:>8} -> {dst:<8} "
            f"{describe(packet.message)}{outcome}"
        )

    def note(self, text: str) -> None:
        self.lines.append(f"  -- {text}")

    def render(self, title: str) -> str:
        return "\n".join([title] + self.lines)


def trace_lifecycle(design: VendorDesign, seed: int = 0) -> str:
    """Figure 1: the full remote-binding life cycle, observed on the wire."""
    deployment = Deployment(design, seed=seed)
    recorder = _Recorder(deployment)
    party = deployment.victim

    recorder.note("1. user authentication")
    party.app.login()

    recorder.note("2. local configuration (provisioning, device auth, local binding)")
    party.device.power_on()
    party.app.provision_wifi(party.ssid, party.wifi_passphrase)
    try:
        party.app.local_configure(party.device)
    except Exception:  # pragma: no cover - design-specific
        pass
    if design.ip_match_required:
        party.device.press_button()

    recorder.note("3. binding creation")
    party.app.bind_device(party.device)
    deployment.run_heartbeats(1)

    recorder.note("4. remote control (the goal of remote binding)")
    party.app.control(party.device.device_id, "on")
    deployment.run_heartbeats(1)

    recorder.note("5. binding revocation")
    party.app.remove_device(party.device.device_id)

    return recorder.render(
        f"Figure 1: remote binding life cycle ({design.name})"
    )


def trace_device_auth(seed: int = 0) -> str:
    """Figure 3: the device-authentication designs, one trace each."""
    sections: List[str] = ["Figure 3: device authentication designs"]

    type1 = VendorDesign(name="Type1-DevToken", id_scheme="random-hex",
                         device_auth=DeviceAuthMode.DEV_TOKEN)
    type2 = VendorDesign(name="Type2-DevId", id_scheme="serial-number",
                         device_auth=DeviceAuthMode.DEV_ID)

    for label, design in (
        ("(a) Type 1 - Status:DevToken (app delivers a dynamic token)", type1),
        ("(b) Type 2 - Status:DevId (static identifier)", type2),
        ("(c) public-key (infrastructure providers)", SECURE_PUBKEY),
    ):
        deployment = Deployment(design, seed=seed)
        recorder = _Recorder(deployment)
        party = deployment.victim
        party.app.login()
        party.device.power_on()
        party.app.provision_wifi(party.ssid, party.wifi_passphrase)
        try:
            party.app.local_configure(party.device)
        except Exception:  # pragma: no cover
            pass
        deployment.run_heartbeats(1)
        sections.append(recorder.render(label))
        sections.append(f"  => shadow state: {deployment.shadow_state()}")
    return "\n".join(sections)


def trace_binding_creation(seed: int = 0) -> str:
    """Figure 4: ACL app-initiated, ACL device-initiated, capability."""
    sections: List[str] = ["Figure 4: binding creation designs"]

    acl_app = VendorDesign(name="ACL-app", id_scheme="serial-number",
                           device_auth=DeviceAuthMode.DEV_ID)
    acl_device = VendorDesign(
        name="ACL-device", id_scheme="serial-number",
        device_auth=DeviceAuthMode.DEV_ID, bind_sender=BindSender.DEVICE,
    )

    for label, design in (
        ("(a) ACL-based, binding message sent by app", acl_app),
        ("(b) ACL-based, binding message sent by device", acl_device),
        ("(c) capability-based (BindToken through the device)", SECURE_CAPABILITY),
    ):
        deployment = Deployment(design, seed=seed)
        recorder = _Recorder(deployment)
        assert deployment.victim_full_setup()
        sections.append(recorder.render(label))
        sections.append(
            f"  => bound user: {deployment.bound_user()}, "
            f"state: {deployment.shadow_state()}"
        )
    return "\n".join(sections)
