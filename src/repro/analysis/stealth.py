"""Attack detectability: how stealthy is each attack, really?

The paper's abstract promises "stealthy device control"; this module
makes stealthiness measurable.  For a given design, it runs an attack
and then asks: *what could the victim observe?*  Two observation
channels exist:

* the **notification feed** (if the vendor runs one — no studied vendor
  does), which reports binding changes and offline transitions;
* **app symptoms**: the next time the victim opens her app, do her
  requests fail (device gone / not-bound errors)?

An attack is *stealthy* if it succeeds while producing no notification
and no immediate app symptom.  Separately from what the *victim* can
see, each probe also runs the defender-side
:class:`~repro.obs.detect.pipeline.DetectionPipeline` against the
cloud's forensic timeline and reports which rules fired — an attack can
be perfectly stealthy toward the victim yet light up the vendor's
detection dashboard (and vice versa).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.attacks.attacker import RemoteAttacker
from repro.attacks.runner import ATTACKS, prepare_state
from repro.cloud.policy import VendorDesign
from repro.core.errors import RequestRejected
from repro.obs.detect import DetectionPipeline
from repro.scenario import Deployment


@dataclass
class DetectionReport:
    """What the victim could observe after one attack."""

    attack_id: str
    vendor: str
    attack_outcome: str
    notifications: List[str] = field(default_factory=list)
    app_symptom: str = "none"     # "none" | "query-fails" | "control-fails"
    #: Defender-side detection: ``rule:severity`` for every alert the
    #: cloud's streaming pipeline raised during the attack.  Deliberately
    #: excluded from :attr:`detectable` / :attr:`stealthy_success`, which
    #: measure what the *victim* could observe — A1 is fully stealthy to
    #: the victim even though the vendor's dashboard lights up.
    cloud_alerts: List[str] = field(default_factory=list)

    @property
    def detectable(self) -> bool:
        return bool(self.notifications) or self.app_symptom != "none"

    @property
    def stealthy_success(self) -> bool:
        return self.attack_outcome == "yes" and not self.detectable

    def line(self) -> str:
        """One table row: victim-side symptoms plus defender-side alerts."""
        notes = ",".join(self.notifications) or "-"
        alerts = ",".join(self.cloud_alerts) or "-"
        return (
            f"{self.attack_id:<5} outcome={self.attack_outcome:<4} "
            f"notifications={notes:<34} symptom={self.app_symptom:<13} "
            f"cloud-alerts={alerts}"
        )


def probe_attack_detectability(design: VendorDesign, attack_id: str,
                               seed: int = 0) -> DetectionReport:
    """Run *attack_id* and measure what the victim could see afterwards."""
    attack_fn, targeted_state = ATTACKS[attack_id]
    deployment = Deployment(design, seed=seed)
    attacker = RemoteAttacker(deployment)
    attacker.login()
    prepare_state(deployment, targeted_state)
    if targeted_state == "control" and design.notifies_user:
        deployment.victim.app.poll_events()  # drain setup-time events

    # Defender-side view: stream the cloud's forensic timeline through
    # the detection rules.  Attaching catches the pipeline up on the
    # setup traffic (detectors need it for per-device baselines), then
    # only alerts raised by the attack itself are reported.
    pipeline = DetectionPipeline()
    pipeline.attach(deployment.cloud)
    baseline = len(pipeline.alerts)

    report_obj = attack_fn(deployment, attacker)
    pipeline.catch_up(deployment.cloud)
    detection = DetectionReport(
        attack_id=attack_id,
        vendor=design.name,
        attack_outcome=report_obj.outcome.value,
        cloud_alerts=[
            f"{alert.rule}:{alert.severity}"
            for alert in pipeline.alerts[baseline:]
        ],
    )
    pipeline.detach()
    if targeted_state != "control":
        # pre-binding attacks have no bound victim to notify yet
        return detection

    deployment.run_heartbeats(2)
    victim = deployment.victim
    if design.notifies_user:
        detection.notifications = [
            event["kind"] for event in victim.app.poll_events()
        ]
    try:
        victim.app.query(victim.device.device_id)
    except RequestRejected:
        detection.app_symptom = "query-fails"
        return detection
    try:
        victim.app.control(victim.device.device_id, "detect-probe")
    except RequestRejected:
        detection.app_symptom = "control-fails"
    return detection


def stealth_survey(design: VendorDesign, seed: int = 0) -> List[DetectionReport]:
    """Detectability of every control-state attack against *design*."""
    return [
        probe_attack_detectability(design, attack_id, seed=seed)
        for attack_id, (_fn, state) in ATTACKS.items()
        if state == "control"
    ]


def render_survey(design: VendorDesign, reports: List[DetectionReport]) -> str:
    """Detectability table plus the stealthy-success verdict."""
    feed = "with notification feed" if design.notifies_user else "no notifications"
    lines = [f"detectability on {design.name} ({feed}):"]
    lines.extend("  " + report.line() for report in reports)
    stealthy = [r.attack_id for r in reports if r.stealthy_success]
    lines.append(
        f"  => stealthy successful attacks: {', '.join(stealthy) if stealthy else 'none'}"
    )
    return "\n".join(lines)
