"""Per-vendor attack evaluation: regenerating Table III.

For each vendor profile, run the full A1–A4-3 battery (each attempt in
a fresh simulated world, staged in its Table II targeted state) and
condense the reports into the paper's cell vocabulary:

* A1 cell: yes / no / O
* A2 cell: yes / no
* A3 cell: the successful variants joined with " & ", else no
  (A3-3 attempts that escalate to control are classified as A4-1,
  exactly as the paper does for device #9)
* A4 cell: the first successful variant in severity order
  (A4-1 > A4-2 > A4-3), else no
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.attacks.results import AttackReport, Outcome
from repro.attacks.runner import run_all_attacks
from repro.cloud.policy import BindSender, VendorDesign
from repro.vendors.catalog import PAPER_ROWS_BY_VENDOR, PaperRow
from repro.vendors.profiles import STUDIED_VENDORS


@dataclass
class VendorEvaluation:
    """Computed Table III row for one vendor."""

    design: VendorDesign
    reports: Dict[str, AttackReport] = field(default_factory=dict)

    # -- design columns ------------------------------------------------------

    @property
    def status_cell(self) -> str:
        known = self.design.device_auth_known
        return known.value if known is not None else "O"

    @property
    def bind_cell(self) -> str:
        if self.design.bind_sender is BindSender.DEVICE:
            return "Sent by the device"
        return "Sent by the app"

    @property
    def unbind_cell(self) -> str:
        return self.design.unbind_signature

    # -- attack columns ------------------------------------------------------

    @property
    def a1_cell(self) -> str:
        return self.reports["A1"].outcome.value  # yes / no / O

    @property
    def a2_cell(self) -> str:
        outcome = self.reports["A2"].outcome
        return "yes" if outcome is Outcome.SUCCESS else "no"

    @property
    def a3_cell(self) -> str:
        successes = [
            attack_id
            for attack_id in ("A3-1", "A3-2", "A3-3", "A3-4")
            if self.reports[attack_id].outcome is Outcome.SUCCESS
        ]
        return " & ".join(successes) if successes else "no"

    @property
    def a4_cell(self) -> str:
        for attack_id in ("A4-1", "A4-2", "A4-3"):
            if self.reports[attack_id].outcome is Outcome.SUCCESS:
                return attack_id
        return "no"

    def cells(self) -> Dict[str, str]:
        return {
            "status": self.status_cell,
            "bind": self.bind_cell,
            "unbind": self.unbind_cell,
            "A1": self.a1_cell,
            "A2": self.a2_cell,
            "A3": self.a3_cell,
            "A4": self.a4_cell,
        }

    def matches_paper(self) -> bool:
        row = PAPER_ROWS_BY_VENDOR.get(self.design.name)
        return row is not None and not self.diff_from_paper()

    def diff_from_paper(self) -> Dict[str, tuple]:
        """Cells where the computed row disagrees with the published one."""
        row: Optional[PaperRow] = PAPER_ROWS_BY_VENDOR.get(self.design.name)
        if row is None:
            return {"vendor": (self.design.name, "<not in paper>")}
        expected = {
            "status": row.status,
            "bind": row.bind,
            "unbind": row.unbind,
            "A1": row.a1,
            "A2": row.a2,
            "A3": row.a3,
            "A4": row.a4,
        }
        computed = self.cells()
        return {
            key: (computed[key], expected[key])
            for key in expected
            if computed[key] != expected[key]
        }


def evaluate_vendor(design: VendorDesign, seed: int = 0) -> VendorEvaluation:
    """Run the battery against one vendor and build its Table III row."""
    return VendorEvaluation(design, run_all_attacks(design, seed=seed))


def evaluate_all_vendors(seed: int = 0) -> List[VendorEvaluation]:
    """Evaluate all ten studied vendors in Table III order."""
    return [evaluate_vendor(design, seed=seed) for design in STUDIED_VENDORS]


def summarize_attack_prevalence(evaluations: List[VendorEvaluation]) -> Dict[str, int]:
    """Section VI-B headline counts (e.g. "6 devices suffer from A2")."""
    return {
        "A1": sum(1 for ev in evaluations if ev.a1_cell == "yes"),
        "A2": sum(1 for ev in evaluations if ev.a2_cell == "yes"),
        "A3": sum(1 for ev in evaluations if ev.a3_cell != "no"),
        "A4": sum(1 for ev in evaluations if ev.a4_cell != "no"),
        "any": sum(
            1
            for ev in evaluations
            if ev.a1_cell == "yes"
            or ev.a2_cell == "yes"
            or ev.a3_cell != "no"
            or ev.a4_cell != "no"
        ),
    }
