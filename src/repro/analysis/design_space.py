"""Closed-form outcome model and design-space exploration.

The paper derives attack outcomes from design choices by argument
(Section V); the simulation derives them by execution.  This module
writes the argument down as a *pure function* from a
:class:`VendorDesign` to predicted attack outcomes, then:

* checks the prediction against the real simulation (conformance — the
  tests sample the design space and demand agreement), and
* sweeps the whole ACL design space to map which knob combinations are
  safe, partially safe, or broken — the kind of exhaustive analysis the
  paper lists as future work ("formally verify their security
  properties").

Three-valued logic mirrors the paper's evaluation: an attack can be
predicted to succeed, fail, or be *unconfirmable* for an analyst
without firmware access.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.attacks.results import Outcome
from repro.cloud.policy import BindSchema, BindSender, DeviceAuthMode, VendorDesign

ATTACK_IDS = ("A1", "A2", "A3-1", "A3-2", "A3-3", "A3-4", "A4-1", "A4-2", "A4-3")


# ---------------------------------------------------------------------------
# the closed-form model (Section V, rule by rule)
# ---------------------------------------------------------------------------


def _status_forgeable(design: VendorDesign) -> Optional[bool]:
    """Can a remote attacker authenticate as the device?  (None = cannot
    be determined without firmware — the paper's "O".)"""
    known = design.device_auth_known
    if known is None:
        return None
    if known in (DeviceAuthMode.DEV_TOKEN, DeviceAuthMode.PUBKEY):
        return False
    # DevId designs: the identifier is known, but *crafting* the device
    # message still needs the wire format from a firmware image.
    return True if design.firmware_available else None


def _bind_craftable(design: VendorDesign) -> Optional[bool]:
    """Can the attacker produce a syntactically valid Bind?"""
    if design.bind_sender is BindSender.APP:
        return True  # observed via MITM of one's own app
    return True if design.firmware_available else None


def _bind_accepted(design: VendorDesign, state: str) -> bool:
    """Would the cloud accept a foreign Bind in the given shadow state?"""
    if design.ip_match_required:
        return False  # no fresh same-IP registration exists remotely
    if state == "initial" and design.bind_requires_online_device:
        return False
    if state == "control" and not design.rebind_replaces_existing:
        return False
    return True


def _hijack_live(design: VendorDesign) -> bool:
    """After a foreign binding, does the real device keep serving it?

    DevToken designs rotate the token at (foreign) binding time, cutting
    the device off; post-binding tokens block the control relay.  Static
    identities (DevId) — and signatures, absent a post-binding token —
    keep the device live under the attacker's binding (Section V-E).
    """
    if design.post_binding_token:
        return False
    return design.device_auth is not DeviceAuthMode.DEV_TOKEN


def predict(design: VendorDesign) -> Dict[str, Outcome]:
    """Predicted outcome of every attack against *design*."""
    if design.bind_schema is BindSchema.CAPABILITY:
        return _predict_capability(design)

    fs = _status_forgeable(design)
    craft = _bind_craftable(design)
    outcomes: Dict[str, Outcome] = {}

    # A1 — data injection and stealing
    if fs is None:
        outcomes["A1"] = Outcome.UNCONFIRMED
    elif fs and design.status_yields_user_data:
        outcomes["A1"] = Outcome.SUCCESS
    else:
        outcomes["A1"] = Outcome.FAILED

    # A2 — binding denial-of-service (initial state).
    # Replacement lets the victim recover (KONKE) — but only if she can
    # actually submit her bind: with device-initiated binding under
    # DevToken auth, the occupied binding blocks token issuance, the
    # device never connects, and its bind is never sent.
    victim_can_rebind = design.rebind_replaces_existing and (
        design.bind_sender is BindSender.APP
        or design.device_auth is not DeviceAuthMode.DEV_TOKEN
    )
    if craft is None:
        outcomes["A2"] = Outcome.UNCONFIRMED
    elif not _bind_accepted(design, "initial"):
        outcomes["A2"] = Outcome.FAILED
    elif victim_can_rebind:
        outcomes["A2"] = Outcome.FAILED  # the victim's own bind recovers
    else:
        outcomes["A2"] = Outcome.SUCCESS

    # A3-1 — bare Unbind:DevId
    if not design.unbind_supported or not design.unbind_accepts_bare_dev_id:
        outcomes["A3-1"] = Outcome.FAILED
    elif design.firmware_available:
        outcomes["A3-1"] = Outcome.SUCCESS
    else:
        outcomes["A3-1"] = Outcome.UNCONFIRMED

    # A3-2 — Unbind:(DevId, attacker's UserToken)
    if design.unbind_supported and not design.unbind_checks_bound_user:
        outcomes["A3-2"] = Outcome.SUCCESS
    else:
        outcomes["A3-2"] = Outcome.FAILED

    # A3-3 — unbinding by binding replacement
    if craft is None:
        outcomes["A3-3"] = Outcome.UNCONFIRMED
    elif not _bind_accepted(design, "control"):
        outcomes["A3-3"] = Outcome.FAILED
    elif _hijack_live(design):
        outcomes["A3-3"] = Outcome.ESCALATED  # it is really A4-1
    else:
        outcomes["A3-3"] = Outcome.SUCCESS

    # A3-4 — disconnect via forged status
    if fs is None:
        outcomes["A3-4"] = Outcome.UNCONFIRMED
    elif fs and design.single_connection_per_device:
        outcomes["A3-4"] = Outcome.SUCCESS
    else:
        outcomes["A3-4"] = Outcome.FAILED

    # A4-1 — hijack by binding replacement (control state)
    if craft is None:
        outcomes["A4-1"] = Outcome.UNCONFIRMED
    elif _bind_accepted(design, "control") and _hijack_live(design):
        outcomes["A4-1"] = Outcome.SUCCESS
    else:
        outcomes["A4-1"] = Outcome.FAILED

    # A4-2 — hijack in the setup window (online state)
    if design.bind_sender is BindSender.DEVICE:
        outcomes["A4-2"] = Outcome.NOT_APPLICABLE
    elif _bind_accepted(design, "online") and _hijack_live(design):
        outcomes["A4-2"] = Outcome.SUCCESS
    else:
        outcomes["A4-2"] = Outcome.FAILED

    # A4-3 — unbind, then bind in the online state
    step1 = (
        outcomes["A3-1"] is Outcome.SUCCESS
        or outcomes["A3-2"] is Outcome.SUCCESS
    )
    if craft is None:
        outcomes["A4-3"] = Outcome.UNCONFIRMED
    elif step1 and _bind_accepted(design, "online") and _hijack_live(design):
        outcomes["A4-3"] = Outcome.SUCCESS
    else:
        outcomes["A4-3"] = Outcome.FAILED

    return outcomes


def _predict_capability(design: VendorDesign) -> Dict[str, Outcome]:
    """Capability binding: the BindToken is the authority and only the
    locally-provisioned device can submit it — every remote forgery
    fails, and device-initiated binding leaves no setup window."""
    fs = _status_forgeable(design)
    outcomes = {attack_id: Outcome.FAILED for attack_id in ATTACK_IDS}
    if fs is None:
        outcomes["A1"] = Outcome.UNCONFIRMED
        outcomes["A3-4"] = Outcome.UNCONFIRMED
    elif fs:
        outcomes["A1"] = (
            Outcome.SUCCESS if design.status_yields_user_data else Outcome.FAILED
        )
        if design.single_connection_per_device:
            outcomes["A3-4"] = Outcome.SUCCESS
    outcomes["A4-2"] = Outcome.NOT_APPLICABLE
    return outcomes


# ---------------------------------------------------------------------------
# the design-space sweep
# ---------------------------------------------------------------------------


def enumerate_design_space() -> Iterator[VendorDesign]:
    """Every consistent ACL design under full analyst knowledge.

    The grid covers the axes the paper decomposes: device auth x bind
    sender x online requirement x IP match x revocation policy x bare
    unbind x replacement x connection policy x post-binding token.
    Inconsistent combinations (per ``VendorDesign`` validation) are
    skipped.
    """
    auth_modes = [DeviceAuthMode.DEV_TOKEN, DeviceAuthMode.DEV_ID, DeviceAuthMode.PUBKEY]
    senders = [BindSender.APP, BindSender.DEVICE]
    booleans = [False, True]
    revocations = ["checked", "unchecked", "none"]
    counter = itertools.count()
    for (auth, sender, requires_online, ip_match, revocation,
         bare_unbind, replaces, single_conn, post_token) in itertools.product(
            auth_modes, senders, booleans, booleans, revocations,
            booleans, booleans, booleans, booleans):
        if revocation == "none" and not replaces:
            continue  # unbindable forever: rejected by validation
        if revocation == "none" and bare_unbind:
            continue  # no revocation endpoint at all
        try:
            yield VendorDesign(
                name=f"space-{next(counter)}",
                device_auth=auth,
                device_auth_known=auth,
                firmware_available=True,
                bind_sender=sender,
                bind_requires_online_device=requires_online,
                ip_match_required=ip_match,
                unbind_supported=revocation != "none",
                unbind_checks_bound_user=revocation == "checked",
                unbind_accepts_bare_dev_id=bare_unbind,
                rebind_replaces_existing=replaces,
                single_connection_per_device=single_conn,
                post_binding_token=post_token,
                id_scheme="serial-number",
                id_serial_digits=8,
            )
        except Exception:  # pragma: no cover - defensive
            continue


@dataclass
class SpaceSummary:
    """Aggregate facts over a design-space sweep."""

    total: int = 0
    fully_secure: int = 0
    hijackable: int = 0
    dos_able: int = 0
    unbindable_by_attacker: int = 0
    data_exposed: int = 0
    secure_examples: List[str] = field(default_factory=list)

    def render(self) -> str:
        return "\n".join([
            f"ACL design space: {self.total} consistent designs",
            f"  fully secure (no attack succeeds): {self.fully_secure}"
            f" ({self.fully_secure / self.total:.1%})" if self.total else "",
            f"  vulnerable to hijacking (any A4): {self.hijackable}",
            f"  vulnerable to binding DoS (A2):   {self.dos_able}",
            f"  vulnerable to unbinding (any A3): {self.unbindable_by_attacker}",
            f"  vulnerable to data attacks (A1):  {self.data_exposed}",
        ])


def sweep_design_space() -> SpaceSummary:
    """Predict outcomes over the whole grid and aggregate."""
    summary = SpaceSummary()
    for design in enumerate_design_space():
        outcomes = predict(design)
        summary.total += 1
        any_a4 = any(outcomes[a] is Outcome.SUCCESS for a in ("A4-1", "A4-2", "A4-3"))
        any_a3 = any(
            outcomes[a] is Outcome.SUCCESS for a in ("A3-1", "A3-2", "A3-3", "A3-4")
        )
        a2 = outcomes["A2"] is Outcome.SUCCESS
        a1 = outcomes["A1"] is Outcome.SUCCESS
        if any_a4:
            summary.hijackable += 1
        if any_a3:
            summary.unbindable_by_attacker += 1
        if a2:
            summary.dos_able += 1
        if a1:
            summary.data_exposed += 1
        if not (any_a4 or any_a3 or a2 or a1):
            summary.fully_secure += 1
            if len(summary.secure_examples) < 5:
                summary.secure_examples.append(design.name)
    return summary


# ---------------------------------------------------------------------------
# conformance: prediction vs. simulation
# ---------------------------------------------------------------------------


def conformance_diff(design: VendorDesign, seed: int = 0) -> Dict[str, Tuple[str, str]]:
    """Run the real attack battery and diff it against the prediction.

    Returns ``{attack_id: (simulated, predicted)}`` for every
    disagreement; empty means the closed-form model and the simulation
    agree on this design.
    """
    from repro.attacks.runner import run_all_attacks

    predicted = predict(design)
    simulated = run_all_attacks(design, seed=seed)
    return {
        attack_id: (simulated[attack_id].outcome.value, predicted[attack_id].value)
        for attack_id in ATTACK_IDS
        if simulated[attack_id].outcome is not predicted[attack_id]
    }
