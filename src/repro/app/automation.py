"""IFTTT-style automation rules (the paper's cascade-effect surface).

Section V-B: "it will have a cascade effect when data from the device is
involved in rules (e.g., IFTTT).  For instance, when an air conditioning
system is associated with a temperature sensor, fake data of the sensor
may turn on or turn off the air conditioning system."

The engine runs *user-side* (like the IFTTT applets the paper cites): it
polls the trigger device's telemetry through the user's app and fires
control commands at the action device.  Because it trusts cloud-stored
telemetry, an A1 injection against the sensor propagates into physical
actions — which is exactly what the cascade tests and the
``automation_cascade`` example demonstrate.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.app.mobile import MobileApp
from repro.core.errors import ConfigurationError, RequestRejected
from repro.sim.environment import Environment

_OPERATORS: Dict[str, Callable[[Any, Any], bool]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
}


@dataclass(frozen=True)
class Rule:
    """IF <metric> <op> <threshold> on trigger THEN <command> on action."""

    name: str
    trigger_device: str
    metric: str
    op: str
    threshold: Any
    action_device: str
    command: str
    arguments: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown operator {self.op!r}"
            )

    def matches(self, telemetry: Optional[Mapping[str, Any]]) -> bool:
        """Whether the trigger condition holds for *telemetry*."""
        if not telemetry or self.metric not in telemetry:
            return False
        try:
            return _OPERATORS[self.op](telemetry[self.metric], self.threshold)
        except TypeError:
            return False


@dataclass
class Firing:
    """One rule activation, for audit and tests."""

    time: float
    rule: str
    observed: Any
    command: str
    delivered: bool


class AutomationEngine:
    """Evaluates rules against cloud telemetry through one user's app."""

    def __init__(self, env: Environment, app: MobileApp,
                 poll_interval: float = 5.0) -> None:
        self.env = env
        self.app = app
        self.poll_interval = poll_interval
        self.rules: List[Rule] = []
        self.firings: List[Firing] = []
        self._handle = None
        #: edge-triggering: a rule re-fires only after its condition
        #: went false in between (like IFTTT applets).
        self._armed: Dict[str, bool] = {}

    # -- rule management -----------------------------------------------------

    def add_rule(self, rule: Rule) -> None:
        """Install a rule; names must be unique."""
        if any(r.name == rule.name for r in self.rules):
            raise ConfigurationError(f"duplicate rule name {rule.name!r}")
        self.rules.append(rule)
        self._armed[rule.name] = True

    def remove_rule(self, name: str) -> bool:
        """Uninstall a rule by name; returns whether it existed."""
        before = len(self.rules)
        self.rules = [r for r in self.rules if r.name != name]
        self._armed.pop(name, None)
        return len(self.rules) != before

    # -- evaluation ------------------------------------------------------------

    def evaluate_once(self) -> List[Firing]:
        """One polling pass over all rules; returns the new firings."""
        new: List[Firing] = []
        for rule in self.rules:
            telemetry = self._read_telemetry(rule.trigger_device)
            holds = rule.matches(telemetry)
            if not holds:
                self._armed[rule.name] = True
                continue
            if not self._armed[rule.name]:
                continue  # still latched from the previous firing
            self._armed[rule.name] = False
            delivered = self._fire(rule)
            firing = Firing(
                time=self.env.now,
                rule=rule.name,
                observed=(telemetry or {}).get(rule.metric),
                command=rule.command,
                delivered=delivered,
            )
            self.firings.append(firing)
            new.append(firing)
        return new

    def start(self) -> None:
        """Poll periodically on the simulation clock."""
        if self._handle is None:
            self._handle = self.env.every(self.poll_interval, self.evaluate_once)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # -- plumbing ----------------------------------------------------------------

    def _read_telemetry(self, device_id: str) -> Optional[Mapping[str, Any]]:
        try:
            response = self.app.query(device_id)
        except RequestRejected:
            return None
        return response.payload.get("telemetry")

    def _fire(self, rule: Rule) -> bool:
        try:
            self.app.control(rule.action_device, rule.command, rule.arguments)
            return True
        except RequestRejected:
            return False
