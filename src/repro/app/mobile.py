"""The companion mobile app: the user's agent in remote binding.

Implements the user side of Figure 1 end to end: login, network
provisioning (SmartConfig broadcast), local binding (SSDP discovery or
reading the label), local configuration (delivering whatever secret the
vendor's design calls for), binding creation, control/schedules/queries,
and device removal.  One :class:`MobileApp` per phone; the phone's
network position (home Wi-Fi vs. cellular) is just its LAN membership.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.cloud.policy import BindSchema, BindSender, DeviceAuthMode, VendorDesign
from repro.core.errors import ProtocolError, RequestRejected
from repro.core.messages import (
    BindingInfoRequest,
    BindMessage,
    BindTokenRequest,
    ControlMessage,
    DevTokenRequest,
    EventPollRequest,
    LoginRequest,
    LoginResponse,
    QueryRequest,
    Response,
    ScheduleUpdate,
    ShareRequest,
    ShareRevoke,
    TokenResponse,
    UnbindMessage,
)
from repro.device.base import DeviceFirmware
from repro.device.local import (
    DeliverBindToken,
    DeliverDevToken,
    DeliverPostBindingToken,
    DeliverUserCredential,
)
from repro.net.discovery import SsdpDescription, ssdp_discover
from repro.net.network import Network
from repro.net.provisioning import ProvisioningAir, WifiCredentials
from repro.sim.environment import Environment


@dataclass
class KnownDevice:
    """What the app remembers about one of the user's devices."""

    device_id: str
    model: str = ""
    post_binding_token: Optional[str] = None


class MobileApp:
    """A vendor companion app logged in (or not) as one user."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        air: ProvisioningAir,
        design: VendorDesign,
        user_id: str,
        password: str,
        location: str,
        node_name: Optional[str] = None,
        cloud_node: str = "cloud",
        cellular_ip: Optional[str] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.air = air
        self.design = design
        self.user_id = user_id
        self.password = password
        self.location = location
        self.cloud_node = cloud_node
        self.node_name = node_name or f"app:{user_id}"
        network.add_node(self.node_name, None, wan_ip=cellular_ip)
        self.user_token: Optional[str] = None
        self.devices: Dict[str, KnownDevice] = {}
        #: optional resilient cloud client (installed by enable_resilience)
        self._client: Optional[Any] = None

    def enable_resilience(self, policy: Any = None, breaker: Any = None) -> None:
        """Route this app's cloud traffic through a resilient client.

        Same survival kit as the device side: retries with backoff +
        jitter, per-request timeouts and a circuit breaker, with the
        jitter RNG forked by node name so same-seed runs keep identical
        retry schedules.  Local (LAN) traffic is unaffected.
        """
        from repro.chaos.resilience import (
            DEFAULT_RESILIENCE,
            CircuitBreaker,
            ResilientClient,
        )

        chosen = policy if policy is not None else DEFAULT_RESILIENCE
        self._client = ResilientClient(
            self.network,
            self.node_name,
            chosen,
            self.env.rng.fork(f"resilience:{self.node_name}"),
            breaker=breaker if breaker is not None else CircuitBreaker(),
            role="app",
        )

    # ------------------------------------------------------------------
    # network position
    # ------------------------------------------------------------------

    def join_wifi(self, lan_id: str, passphrase: str) -> None:
        """Connect the phone to a Wi-Fi network."""
        self.network.join_lan(self.node_name, lan_id, passphrase)

    def leave_wifi(self) -> None:
        """Drop to cellular (remote-connection mode of Section II-A)."""
        self.network.leave_lan(self.node_name)

    # ------------------------------------------------------------------
    # user authentication (Figure 1 step 1)
    # ------------------------------------------------------------------

    def login(self) -> str:
        """Password login; stores and returns the session UserToken."""
        response = self._request(LoginRequest(self.user_id, self.password))
        if not isinstance(response, LoginResponse):
            raise ProtocolError("unexpected login response")
        self.user_token = response.user_token
        return self.user_token

    def require_token(self) -> str:
        if self.user_token is None:
            raise ProtocolError("app is not logged in")
        return self.user_token

    # ------------------------------------------------------------------
    # local configuration (Figure 1 step 2)
    # ------------------------------------------------------------------

    def provision_wifi(self, ssid: str, passphrase: str) -> int:
        """SmartConfig/Airkiss broadcast of the home Wi-Fi credentials.

        Reaches every listening device at the phone's physical location;
        returns how many devices heard it.
        """
        return self.air.broadcast(self.location, WifiCredentials(ssid, passphrase))

    def discover(self) -> list:
        """SSDP search on the phone's current LAN."""
        return ssdp_discover(self.network, self.node_name)

    def obtain_device_identity(self, device: DeviceFirmware) -> str:
        """Learn the device ID the way the vendor intends.

        Label-on-device vendors have the user type it in (physical
        access); the rest are discovered via SSDP on the shared LAN.
        """
        if self.design.id_label_on_device:
            return device.device_id  # read off the sticker
        for description in self.discover():
            if isinstance(description, SsdpDescription) and description.device_id == device.device_id:
                return description.device_id
        raise ProtocolError(f"device {device.device_id!r} not discoverable on this LAN")

    def local_configure(self, device: DeviceFirmware) -> str:
        """Deliver whatever secret the design needs to the device, locally.

        Returns the device ID (now known to the app).  Must be on the
        same LAN as the device.
        """
        device_id = self.obtain_device_identity(device)
        design = self.design
        if design.device_auth is DeviceAuthMode.DEV_TOKEN:
            token = self._fetch_dev_token(device_id)
            self.network.request(
                self.node_name, device.node_name, DeliverDevToken(dev_token=token)
            )
        if design.bind_sender is BindSender.DEVICE and design.bind_schema is BindSchema.ACL:
            self.network.request(
                self.node_name,
                device.node_name,
                DeliverUserCredential(user_id=self.user_id, user_pw=self.password),
            )
        self.devices.setdefault(device_id, KnownDevice(device_id, device.model))
        return device_id

    def _fetch_dev_token(self, device_id: str) -> str:
        response = self._request(DevTokenRequest(self.require_token(), device_id))
        if not isinstance(response, TokenResponse):
            raise ProtocolError("expected a TokenResponse")
        return response.token

    # ------------------------------------------------------------------
    # binding creation (Figure 1 step 3)
    # ------------------------------------------------------------------

    def bind_device(self, device: DeviceFirmware) -> bool:
        """Create the cloud binding for *device* per the vendor design."""
        design = self.design
        device_id = device.device_id
        if design.bind_schema is BindSchema.CAPABILITY:
            return self._bind_capability(device)
        if design.bind_sender is BindSender.DEVICE:
            # Figure 4b: the device submits the binding itself once it
            # has the credentials (delivered in local_configure).  Fetch
            # the user's half of the post-binding token if the design
            # uses one.
            if design.post_binding_token:
                self._learn_post_token(device_id, device.model)
            return True
        try:
            response = self._request(
                BindMessage(device_id=device_id, user_token=self.require_token())
            )
        except RequestRejected:
            return False
        if not isinstance(response, Response) or not response.ok:
            return False
        known = self.devices.setdefault(device_id, KnownDevice(device_id, device.model))
        post_token = response.payload.get("post_binding_token")
        if post_token:
            known.post_binding_token = post_token
            # Deliver the device's half locally (Section IV-B).
            self._try_local(device, DeliverPostBindingToken(token=post_token))
        rotated = response.payload.get("dev_token")
        if rotated:
            self._try_local(device, DeliverDevToken(dev_token=rotated))
        return True

    def _bind_capability(self, device: DeviceFirmware) -> bool:
        """Figure 4c: fetch a BindToken, hand it to the device locally."""
        response = self._request(BindTokenRequest(self.require_token()))
        if not isinstance(response, TokenResponse):
            return False
        self.network.request(
            self.node_name, device.node_name, DeliverBindToken(bind_token=response.token)
        )
        known = self.devices.setdefault(device.device_id, KnownDevice(device.device_id, device.model))
        known.post_binding_token = device.post_binding_token
        return device.post_binding_token is not None

    def full_setup(self, device: DeviceFirmware, ssid: str, passphrase: str) -> bool:
        """The complete Figure 1 flow for a factory-fresh device."""
        if self.user_token is None:
            self.login()
        device.power_on()
        self.provision_wifi(ssid, passphrase)
        self.local_configure(device)
        return self.bind_device(device)

    # ------------------------------------------------------------------
    # post-binding operation (remote connection)
    # ------------------------------------------------------------------

    def control(self, device_id: str, command: str, arguments: Optional[Mapping[str, Any]] = None) -> Response:
        """Send a command to one of my devices through the cloud."""
        known = self.devices.get(device_id)
        message = ControlMessage(
            user_token=self.require_token(),
            device_id=device_id,
            command=command,
            arguments=dict(arguments or {}),
            post_binding_token=known.post_binding_token if known else None,
        )
        return self._request(message)

    def set_schedule(self, device_id: str, schedule: Mapping[str, Any]) -> Response:
        return self._request(
            ScheduleUpdate(self.require_token(), device_id, dict(schedule))
        )

    def query(self, device_id: str, what: str = "telemetry") -> Response:
        return self._request(QueryRequest(self.require_token(), device_id, what))

    def poll_events(self) -> list:
        """Fetch new notifications from the cloud's event feed."""
        response = self._request(EventPollRequest(self.require_token()))
        return response.payload.get("events", [])

    def _learn_post_token(self, device_id: str, model: str = "") -> None:
        """Fetch my binding's post-binding token from the cloud."""
        try:
            response = self._request(
                BindingInfoRequest(self.require_token(), device_id)
            )
        except RequestRejected:
            return
        token = response.payload.get("post_binding_token")
        if token:
            known = self.devices.setdefault(device_id, KnownDevice(device_id, model))
            known.post_binding_token = token

    def share_device(self, device_id: str, grantee: str) -> bool:
        """Grant another account access to one of my devices."""
        try:
            self._request(ShareRequest(self.require_token(), device_id, grantee))
        except RequestRejected:
            return False
        return True

    def revoke_share(self, device_id: str, grantee: str) -> bool:
        """Withdraw a previously granted share."""
        try:
            self._request(ShareRevoke(self.require_token(), device_id, grantee))
        except RequestRejected:
            return False
        return True

    def remove_device(self, device_id: str) -> bool:
        """Revoke the binding (Figure 1 step 4, app-side)."""
        try:
            self._request(
                UnbindMessage(device_id=device_id, user_token=self.require_token())
            )
        except RequestRejected:
            return False
        self.devices.pop(device_id, None)
        return True

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _request(self, message) -> Response:
        if self._client is not None:
            return self._client.request(self.cloud_node, message)
        return self.network.request(self.node_name, self.cloud_node, message)

    def _try_local(self, device: DeviceFirmware, message) -> bool:
        """Local delivery that degrades gracefully when not co-located."""
        try:
            self.network.request(self.node_name, device.node_name, message)
            return True
        except Exception:
            return False
