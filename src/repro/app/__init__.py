"""User-side agents: the companion mobile app."""

from repro.app.mobile import KnownDevice, MobileApp

__all__ = ["KnownDevice", "MobileApp"]
