"""Attack runner: fresh deployment + correct targeted state + dispatch.

Table II ties every attack to the shadow state it targets; the runner
prepares exactly that state before launching, in a *fresh* simulated
world per attempt, so attacks never contaminate each other — the paper
likewise reset devices between experiments.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.attacks.attacker import RemoteAttacker
from repro.attacks.data_attacks import attack_data_injection_and_stealing
from repro.attacks.dos import attack_binding_dos
from repro.attacks.hijacking import (
    attack_hijack_rebind,
    attack_hijack_unbind_then_bind,
    attack_hijack_window,
)
from repro.attacks.results import AttackReport, Outcome
from repro.attacks.unbinding import (
    attack_unbind_type1,
    attack_unbind_type2,
    attack_unbind_via_rebind,
    attack_unbind_via_status,
)
from repro.cloud.policy import BindSender, VendorDesign
from repro.core.errors import AttackPreconditionError
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.scenario import Deployment

AttackFn = Callable[[Deployment, RemoteAttacker], AttackReport]

#: attack id -> (implementation, targeted state)
ATTACKS: Dict[str, Tuple[AttackFn, str]] = {
    "A1": (attack_data_injection_and_stealing, "control"),
    "A2": (attack_binding_dos, "initial"),
    "A3-1": (attack_unbind_type2, "control"),
    "A3-2": (attack_unbind_type1, "control"),
    "A3-3": (attack_unbind_via_rebind, "control"),
    "A3-4": (attack_unbind_via_status, "control"),
    "A4-1": (attack_hijack_rebind, "control"),
    "A4-2": (attack_hijack_window, "online"),
    "A4-3": (attack_hijack_unbind_then_bind, "control"),
}

ATTACK_IDS: List[str] = list(ATTACKS)

#: The victim's smart-plug schedule used as the A1 stealing target
#: (the paper sets exactly such a schedule on device #10).
VICTIM_SCHEDULE = {"on": "19:00", "off": "23:00"}


def prepare_state(deployment: Deployment, targeted_state: str) -> None:
    """Drive the victim's shadow into the attack's targeted state."""
    if targeted_state == "initial":
        return  # factory fresh
    if targeted_state == "online":
        deployment.victim_partial_setup_online_unbound()
        if deployment.shadow_state() != "online":
            raise AttackPreconditionError(
                f"expected online state, got {deployment.shadow_state()}"
            )
        return
    if targeted_state == "control":
        if not deployment.victim_full_setup():
            raise AttackPreconditionError(
                f"victim setup failed on {deployment.design.name}; "
                "cannot stage a control-state attack"
            )
        deployment.victim.app.set_schedule(
            deployment.victim.device.device_id, VICTIM_SCHEDULE
        )
        return
    raise AttackPreconditionError(f"unknown targeted state {targeted_state!r}")


def run_attack(
    design: VendorDesign,
    attack_id: str,
    seed: int = 0,
    observer: Optional[Observer] = None,
) -> AttackReport:
    """Run one attack against one vendor in a fresh world.

    Passing an :class:`~repro.obs.runtime.Observability` as *observer*
    traces the attempt as one ``attack:<id>`` scenario span (with
    ``prepare``/``execute`` phases beneath it), profiles the execution
    hot path, and counts the outcome.
    """
    obs = observer if observer is not None else NULL_OBSERVER
    try:
        attack_fn, targeted_state = ATTACKS[attack_id]
    except KeyError:
        raise AttackPreconditionError(f"unknown attack {attack_id!r}") from None
    if attack_id == "A4-2" and design.bind_sender is BindSender.DEVICE:
        # Device-initiated binding is atomic with registration: the
        # "online, unbound" setup window A4-2 exploits never exists.
        report = AttackReport(
            "A4-2", design.name, Outcome.NOT_APPLICABLE,
            "device-initiated binding is atomic with registration: no window",
        )
        obs.on_attack(report)
        return report
    with obs.span(
        f"attack:{attack_id}", kind="scenario",
        vendor=design.name, targeted_state=targeted_state,
    ):
        deployment = Deployment(design, seed=seed, observer=observer)
        attacker = RemoteAttacker(deployment)
        attacker.login()
        with obs.span("prepare", kind="phase"):
            prepare_state(deployment, targeted_state)
        with obs.profile("attacks.run_attack"), obs.span("execute", kind="phase"):
            report = attack_fn(deployment, attacker)
    obs.on_attack(report)
    return report


def run_all_attacks(
    design: VendorDesign, seed: int = 0, observer: Optional[Observer] = None
) -> Dict[str, AttackReport]:
    """Run the full A1–A4-3 battery against one vendor."""
    return {
        attack_id: run_attack(design, attack_id, seed, observer=observer)
        for attack_id in ATTACK_IDS
    }
