"""A4: device hijacking — absolute control of the victim's device
(Section V-E).

* **A4-1** (control state): a Bind that replaces the victim's binding;
  under DevId authentication the real device keeps its cloud session,
  so the cloud now relays the *attacker's* commands to it.
* **A4-2** (online state): bind during the victim's setup window,
  before she does — only app-initiated designs have such a window.
* **A4-3** (control state): chain a successful unbinding (A3-1/A3-2)
  with a bind in the resulting online state.

All variants die on DevToken designs (the device never receives the
attacker's fresh token, Section V-E) and on post-binding-token designs
(the device never confirms the attacker's binding, Section IV-B).
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.attacker import RemoteAttacker
from repro.attacks.results import AttackReport, Outcome
from repro.cloud.policy import BindSender
from repro.scenario import Deployment


def _attempt_control(deployment: Deployment, attacker: RemoteAttacker,
                     command: str) -> bool:
    """Ground truth: does the victim's physical device execute the
    attacker's command?"""
    before = len(deployment.victim.device.executed_commands)
    attacker.control_victim_device(command)
    deployment.run_heartbeats(2)
    return any(
        c.issued_by == attacker.party.user_id and c.command == command
        for c in deployment.victim.device.executed_commands[before:]
    )


def _bind_and_control(deployment: Deployment, attacker: RemoteAttacker,
                      attack_id: str, command: str) -> AttackReport:
    """Shared tail: forge the bind, then try to drive the real device."""
    vendor = deployment.design.name
    if deployment.design.bind_sender is BindSender.DEVICE and not attacker.can_forge_device_messages:
        return AttackReport(
            attack_id, vendor, Outcome.UNCONFIRMED,
            "device-initiated binding and no firmware to craft it",
        )
    accepted, code, response = attacker.send(attacker.forge_bind())
    if not accepted:
        return AttackReport(attack_id, vendor, Outcome.FAILED, f"bind rejected ({code})")
    attacker.note_bind_response(response)
    if deployment.bound_user() != attacker.party.user_id:
        return AttackReport(
            attack_id, vendor, Outcome.FAILED, "binding did not transfer to the attacker"
        )
    if _attempt_control(deployment, attacker, command):
        return AttackReport(
            attack_id, vendor, Outcome.SUCCESS,
            "victim's device executes attacker-issued commands",
            {"executed": command},
        )
    return AttackReport(
        attack_id, vendor, Outcome.FAILED,
        "attacker bound but the device does not follow "
        "(token rotation or missing post-binding confirmation)",
    )


def attack_hijack_rebind(deployment: Deployment, attacker: RemoteAttacker) -> AttackReport:
    """A4-1: replace the binding while the victim is in control."""
    attacker.learn_victim_device_id(deployment.victim.device.device_id)
    return _bind_and_control(deployment, attacker, "A4-1", "a4-1-takeover")


def attack_hijack_window(deployment: Deployment, attacker: RemoteAttacker) -> AttackReport:
    """A4-2: bind first during the victim's setup window (online state).

    The deployment must be prepared with
    ``victim_partial_setup_online_unbound``.
    """
    vendor = deployment.design.name
    attacker.learn_victim_device_id(deployment.victim.device.device_id)
    if deployment.design.bind_sender is BindSender.DEVICE:
        return AttackReport(
            "A4-2", vendor, Outcome.NOT_APPLICABLE,
            "device-initiated binding is atomic with registration: no window",
        )
    return _bind_and_control(deployment, attacker, "A4-2", "a4-2-takeover")


def attack_hijack_unbind_then_bind(
    deployment: Deployment, attacker: RemoteAttacker
) -> AttackReport:
    """A4-3: revoke the victim's binding, then bind in the online state."""
    vendor = deployment.design.name
    attacker.learn_victim_device_id(deployment.victim.device.device_id)

    unbound = False
    step1_code: Optional[str] = None
    # Step 1: any unbinding primitive that works (the paper chains A3-1).
    if deployment.design.unbind_accepts_bare_dev_id and attacker.can_forge_device_messages:
        accepted, step1_code, _ = attacker.send(attacker.forge_unbind_type2())
        unbound = accepted
    if not unbound:
        accepted, step1_code, _ = attacker.send(attacker.forge_unbind_type1())
        unbound = accepted
    if not unbound:
        return AttackReport(
            "A4-3", vendor, Outcome.FAILED, f"no unbinding primitive works ({step1_code})"
        )
    # The device is now in the online state; step 2 is a fresh bind.
    return _bind_and_control(deployment, attacker, "A4-3", "a4-3-takeover")
