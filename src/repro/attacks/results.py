"""Attack outcome vocabulary shared by all attack implementations."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Any, Dict


@unique
class Outcome(Enum):
    """How an attack attempt ended (Table III cell vocabulary)."""

    SUCCESS = "yes"          # paper: check mark
    FAILED = "no"            # paper: cross
    UNCONFIRMED = "O"        # paper: unable to confirm (firmware challenges)
    NOT_APPLICABLE = "N.A."  # the design has no such surface / window
    #: the mechanism worked but the result is a *stronger* attack and the
    #: paper classifies it there (A3-3 that yields control is A4-1)
    ESCALATED = "escalated"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class AttackReport:
    """The result of one attack attempt against one deployment."""

    attack_id: str                 # "A1", "A2", "A3-1" ... "A4-3"
    vendor: str
    outcome: Outcome
    reason: str
    evidence: Dict[str, Any] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return self.outcome is Outcome.SUCCESS

    def line(self) -> str:
        return f"{self.attack_id:<5} {self.vendor:<14} {self.outcome.value:<9} {self.reason}"
