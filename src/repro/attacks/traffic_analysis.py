"""Traffic analysis of one's *own* app: the paper's methodology.

Section VI-A: "we first identify the binding and unbinding messages
through manual dynamic analysis of the apps ... To capture and analyze
the HTTP/HTTPS messages from the attacker's app, we use a
Man-in-the-Middle proxy" and "device IDs can be observed from the
traffic or be easily obtained with a differential analysis of the
messages".

This module automates that workflow against the simulation: run the
setup flow for the attacker's *own* device behind a MITM proxy, lift
the message shapes out of the capture, and locate the device-ID field
by differential analysis across two observed instances.  The output is
a :class:`ForgeryPlaybook` — exactly the knowledge the attack modules
assume when they call ``forge_bind``/``forge_unbind_*``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import List, Optional, Set

from repro.attacks.attacker import RemoteAttacker
from repro.core.messages import BindMessage, Message, UnbindMessage
from repro.scenario import Deployment


def differing_fields(a: Message, b: Message) -> Set[str]:
    """Differential analysis: which wire fields vary between two
    observations of the same message type?"""
    if type(a) is not type(b):
        raise TypeError("differential analysis needs two messages of one type")
    return {
        f.name
        for f in dataclass_fields(a)
        if getattr(a, f.name) != getattr(b, f.name)
    }


def locate_id_field(message: Message, known_id: str) -> Optional[str]:
    """Find the field carrying a *known* identifier (the analyst reads
    their own device's label and matches it against the capture)."""
    for f in dataclass_fields(message):
        if getattr(message, f.name) == known_id:
            return f.name
    return None


@dataclass
class ForgeryPlaybook:
    """What app-traffic analysis yields: the shapes to replay."""

    vendor: str
    bind_shape: Optional[str] = None       # e.g. "Bind:(DevId,UserToken)"
    unbind_shape: Optional[str] = None
    id_field: Optional[str] = None         # which field carries the DevId
    observed_types: List[str] = None

    @property
    def can_forge_bind(self) -> bool:
        return self.bind_shape is not None and self.id_field is not None

    @property
    def can_forge_unbind(self) -> bool:
        return self.unbind_shape is not None and self.id_field is not None


def analyze_own_traffic(deployment: Deployment, attacker: RemoteAttacker) -> ForgeryPlaybook:
    """Run the attacker's own setup+teardown behind the proxy and distil
    a forgery playbook from the captured messages.

    The attacker only ever observes their own phone's traffic — the
    proxy is installed on their own node (Section VI-A's ethics).
    """
    from repro.core.messages import describe

    party = deployment.attacker_party
    attacker.login()
    # Normal customer behaviour, observed through the proxy:
    party.device.power_on()
    party.app.provision_wifi(party.ssid, party.wifi_passphrase)
    try:
        party.app.local_configure(party.device)
    except Exception:
        pass
    if deployment.design.ip_match_required:
        party.device.press_button()
    party.app.bind_device(party.device)
    deployment.run_heartbeats(1)
    party.app.remove_device(party.device.device_id)

    playbook = ForgeryPlaybook(vendor=deployment.design.name, observed_types=[])
    own_id = party.device.device_id

    bind = attacker.proxy.last(BindMessage)
    if bind is not None:
        playbook.bind_shape = describe(bind)
        playbook.id_field = locate_id_field(bind, own_id) or playbook.id_field
    unbind = attacker.proxy.last(UnbindMessage)
    if unbind is not None:
        playbook.unbind_shape = describe(unbind)
        if playbook.id_field is None:
            playbook.id_field = locate_id_field(unbind, own_id)
    playbook.observed_types = sorted(
        {type(m).__name__ for m in attacker.proxy.messages()}
    )
    return playbook


def craft_foreign_bind(playbook: ForgeryPlaybook, template: BindMessage,
                       victim_id: str) -> BindMessage:
    """The Frida/Postman step: replay the observed bind with the victim's
    ID substituted into the located field."""
    if not playbook.can_forge_bind:
        raise ValueError("playbook lacks a bind shape or an ID field")
    values = {f.name: getattr(template, f.name) for f in dataclass_fields(template)}
    values[playbook.id_field] = victim_id
    return BindMessage(**values)
