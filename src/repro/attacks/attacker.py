"""The remote attacker: a legitimate customer with forged messages.

Per the adversary model (Section III-A) the attacker

* holds a valid account of the same vendor (and owns their own unit of
  the product, used to analyse the app's traffic with a MITM proxy);
* knows the victim's device ID (inferred/enumerated or leaked through
  ownership transfer — ``learn_victim_device_id`` represents that);
* has **no** access to the victim's LAN, the device firmware on the
  victim's unit, or the victim's phone.

Forgery capabilities are asymmetric, exactly as in the paper:

* *app-protocol* messages (Bind/Unbind/Control as the app sends them)
  can always be crafted — the attacker MITMs their own phone and
  replays modified requests (Postman/Frida, Section VI-A);
* *device-protocol* messages (Status/DeviceFetch, device-origin
  Bind/Unbind) require protocol knowledge from firmware reverse
  engineering, available for only some vendors.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.app.mobile import MobileApp
from repro.cloud.policy import BindSender
from repro.core.errors import RequestRejected
from repro.core.messages import (
    BindMessage,
    ControlMessage,
    DeviceFetch,
    Message,
    Origin,
    Response,
    StatusMessage,
    UnbindMessage,
)
from repro.device.firmware import ProtocolKnowledge, try_reverse_engineer
from repro.net.mitm import MitmProxy
from repro.scenario import Deployment


class RemoteAttacker:
    """Attack tooling bound to one deployment."""

    def __init__(self, deployment: Deployment) -> None:
        self.deployment = deployment
        self.design = deployment.design
        self.network = deployment.network
        self.cloud_node = deployment.cloud.node_name
        self.party = deployment.attacker_party
        self.app: MobileApp = self.party.app
        #: Node the attacker's forged traffic originates from: their own
        #: host behind their own AP (never the victim's network).
        self.node = self.app.node_name
        self.victim_device_id: Optional[str] = None
        self.protocol: Optional[ProtocolKnowledge] = try_reverse_engineer(self.design)
        self.proxy = MitmProxy(name="attacker-proxy")
        self.network.set_proxy(self.node, self.proxy)
        self.stolen: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # knowledge acquisition
    # ------------------------------------------------------------------

    def login(self) -> str:
        """The attacker is a legitimate, logged-in customer."""
        if self.app.user_token is None:
            self.app.login()
        return self.app.user_token

    def learn_victim_device_id(self, device_id: str) -> None:
        """Record the victim's ID (supply-chain leak / label copy /
        enumeration — see ``repro.attacks.id_inference``)."""
        self.victim_device_id = device_id

    def require_victim_id(self) -> str:
        if self.victim_device_id is None:
            raise RuntimeError("attack script must call learn_victim_device_id first")
        return self.victim_device_id

    @property
    def can_forge_device_messages(self) -> bool:
        """Device-protocol forgery needs firmware-derived knowledge."""
        return self.protocol is not None

    @property
    def knows_status_design(self) -> bool:
        """Whether the analyst determined how status messages authenticate
        (Table III's Status column is "O" when they could not)."""
        return self.design.device_auth_known is not None

    # ------------------------------------------------------------------
    # message forgery (Postman / Frida analogues)
    # ------------------------------------------------------------------

    def forge_status(self, telemetry: Optional[Mapping[str, Any]] = None,
                     is_registration: bool = False) -> StatusMessage:
        """Craft a Status message claiming to be the victim's device."""
        return StatusMessage(
            device_id=self.require_victim_id(),
            model=self.design.device_type,
            firmware_version="forged",
            telemetry=dict(telemetry or {}),
            is_registration=is_registration,
        )

    def forge_fetch(self) -> DeviceFetch:
        """Craft a DeviceFetch claiming to be the victim's device."""
        return DeviceFetch(device_id=self.require_victim_id())

    def forge_bind(self) -> BindMessage:
        """Craft a Bind pairing the attacker's identity with the victim's
        device, in whatever shape this vendor's protocol uses."""
        self.login()
        if self.design.bind_sender is BindSender.DEVICE:
            return BindMessage(
                device_id=self.require_victim_id(),
                user_id=self.party.user_id,
                user_pw=self.party.password,
                origin=Origin.DEVICE,
            )
        return BindMessage(
            device_id=self.require_victim_id(),
            user_token=self.app.user_token,
        )

    def forge_unbind_type1(self) -> UnbindMessage:
        """Unbind:(DevId, UserToken) with the *attacker's* token."""
        self.login()
        return UnbindMessage(
            device_id=self.require_victim_id(), user_token=self.app.user_token
        )

    def forge_unbind_type2(self) -> UnbindMessage:
        """Unbind:DevId — the bare device-reset message."""
        return UnbindMessage(device_id=self.require_victim_id(), origin=Origin.DEVICE)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send(self, message: Message) -> Tuple[bool, str, Optional[Response]]:
        """Fire a forged request at the cloud from the attacker's host.

        Returns ``(accepted, code, response)`` — the paper identifies
        attack failures from exactly these response codes.
        """
        try:
            response = self.network.request(self.node, self.cloud_node, message)
        except RequestRejected as exc:
            return False, exc.code, None
        if isinstance(response, Response):
            return True, "ok", response
        return True, "ok", None

    def control_victim_device(self, command: str = "attacker-on") -> Tuple[bool, str]:
        """Issue a control command for the victim's device under the
        attacker's *own* account (only works if the attacker is bound)."""
        self.login()
        message = ControlMessage(
            user_token=self.app.user_token,
            device_id=self.require_victim_id(),
            command=command,
            post_binding_token=self._own_post_token(),
        )
        accepted, code, _ = self.send(message)
        return accepted, code

    def _own_post_token(self) -> Optional[str]:
        """The post-binding token the cloud returned to *the attacker's*
        binding, if any (it is never the one the device holds)."""
        return self.stolen.get("post_binding_token")

    def note_bind_response(self, response: Optional[Response]) -> None:
        """Remember tokens returned to the attacker's forged binding."""
        if response is None:
            return
        token = response.payload.get("post_binding_token")
        if token:
            self.stolen["post_binding_token"] = token
