"""A3: device unbinding — disconnect the user from her device (Section V-D).

Four variants, all targeting the *control* state:

* **A3-1** ``Unbind:DevId`` — the bare reset-style revocation; anyone
  holding the ID can fire it (when the endpoint exists).
* **A3-2** ``Unbind:(DevId,UserToken)`` with the attacker's own token —
  works when the cloud forgets to check that the requester is the
  *bound* user.
* **A3-3** a Bind that *replaces* the victim's binding — counted as A3
  only when it yields disconnection without control (DevToken designs);
  when it yields control it is A4-1 and the paper's A3 cell stays empty.
* **A3-4** a forged Status that makes the cloud adopt the attacker as
  the device's connection, disconnecting the real device.
"""

from __future__ import annotations

from repro.attacks.attacker import RemoteAttacker
from repro.attacks.results import AttackReport, Outcome
from repro.cloud.policy import DeviceAuthMode
from repro.scenario import Deployment


def _victim_lost_device(deployment: Deployment) -> bool:
    """Ground truth: the victim is no longer the bound, working owner."""
    return deployment.bound_user() != deployment.victim.user_id


def attack_unbind_type2(deployment: Deployment, attacker: RemoteAttacker) -> AttackReport:
    """A3-1: forge the bare ``Unbind:DevId``."""
    vendor = deployment.design.name
    attacker.learn_victim_device_id(deployment.victim.device.device_id)
    if deployment.design.unbind_accepts_bare_dev_id and not attacker.can_forge_device_messages:
        return AttackReport(
            "A3-1", vendor, Outcome.UNCONFIRMED,
            "reset-unbind is a device message and no firmware is available",
        )
    accepted, code, _ = attacker.send(attacker.forge_unbind_type2())
    if accepted and _victim_lost_device(deployment):
        return AttackReport(
            "A3-1", vendor, Outcome.SUCCESS, "bare DevId unbind revoked the binding"
        )
    return AttackReport("A3-1", vendor, Outcome.FAILED, f"rejected ({code})")


def attack_unbind_type1(deployment: Deployment, attacker: RemoteAttacker) -> AttackReport:
    """A3-2: Unbind with the attacker's own (valid) user token."""
    vendor = deployment.design.name
    attacker.learn_victim_device_id(deployment.victim.device.device_id)
    accepted, code, _ = attacker.send(attacker.forge_unbind_type1())
    if accepted and _victim_lost_device(deployment):
        return AttackReport(
            "A3-2", vendor, Outcome.SUCCESS,
            "cloud revoked without checking the requester is the bound user",
        )
    return AttackReport("A3-2", vendor, Outcome.FAILED, f"rejected ({code})")


def attack_unbind_via_rebind(deployment: Deployment, attacker: RemoteAttacker) -> AttackReport:
    """A3-3: replace the victim's binding with the attacker's."""
    vendor = deployment.design.name
    design = deployment.design
    attacker.learn_victim_device_id(deployment.victim.device.device_id)
    if design.bind_sender.value == "device" and not attacker.can_forge_device_messages:
        return AttackReport(
            "A3-3", vendor, Outcome.UNCONFIRMED,
            "device-initiated binding and no firmware to craft it",
        )
    accepted, code, response = attacker.send(attacker.forge_bind())
    if not accepted:
        return AttackReport("A3-3", vendor, Outcome.FAILED, f"rejected ({code})")
    attacker.note_bind_response(response)
    if not _victim_lost_device(deployment):
        return AttackReport(
            "A3-3", vendor, Outcome.FAILED, "binding accepted but victim still bound"
        )
    # Disconnection achieved.  If the attacker can now actually drive the
    # real device, the paper classifies this as device hijacking (A4-1).
    deployment.run_heartbeats(2)
    attacker.control_victim_device("a3-probe")
    deployment.run_heartbeats(2)
    if deployment.device_executed_for(attacker.party.user_id):
        return AttackReport(
            "A3-3", vendor, Outcome.ESCALATED,
            "binding replaced AND device follows the attacker: this is A4-1",
        )
    return AttackReport(
        "A3-3", vendor, Outcome.SUCCESS,
        "binding replaced; device disconnected from the victim "
        "(DevToken rotation keeps the attacker from controlling it)",
    )


def attack_unbind_via_status(deployment: Deployment, attacker: RemoteAttacker) -> AttackReport:
    """A3-4: a forged Status makes the cloud drop the real device."""
    vendor = deployment.design.name
    design = deployment.design
    attacker.learn_victim_device_id(deployment.victim.device.device_id)
    if not attacker.knows_status_design:
        return AttackReport(
            "A3-4", vendor, Outcome.UNCONFIRMED,
            "status authentication undetermined without firmware",
        )
    if design.device_auth_known is not DeviceAuthMode.DEV_ID:
        return AttackReport(
            "A3-4", vendor, Outcome.FAILED, "status messages cannot be forged"
        )
    if not attacker.can_forge_device_messages:
        return AttackReport(
            "A3-4", vendor, Outcome.UNCONFIRMED,
            "no firmware image: device message format unknown",
        )
    accepted, code, _ = attacker.send(attacker.forge_status())
    if not accepted:
        return AttackReport("A3-4", vendor, Outcome.FAILED, f"rejected ({code})")
    shadow = deployment.cloud.shadows.get(deployment.victim.device.device_id)
    if shadow.connection_id == attacker.node:
        return AttackReport(
            "A3-4", vendor, Outcome.SUCCESS,
            "cloud adopted the attacker as the device connection; "
            "the real device is cut off",
            {"connection": shadow.connection_id},
        )
    return AttackReport(
        "A3-4", vendor, Outcome.FAILED,
        "cloud kept the real device's connection alongside the forged one",
    )
