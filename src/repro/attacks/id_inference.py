"""Device-ID inference: enumeration and brute-force (Section III-A).

Weak ID schemes let a remote attacker *discover* registered device IDs
by probing a cloud endpoint and distinguishing "unknown device" from
any other answer.  The binding endpoint is such an oracle on every
studied vendor: an unregistered ID yields ``unknown-device`` while a
registered one yields success or a binding conflict.  This is the
mechanism behind the paper's "scalable denial-of-service attacks to the
entire product series" (Section V-C).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.attacks.attacker import RemoteAttacker
from repro.core.messages import BindMessage
from repro.identity.device_ids import DeviceIdScheme


@dataclass
class ProbeStats:
    """Result of an enumeration sweep."""

    attempted: int = 0
    found: List[str] = field(default_factory=list)
    #: virtual seconds consumed at the modelled request rate
    virtual_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        return len(self.found) / self.attempted if self.attempted else 0.0


def probe_device_id(attacker: RemoteAttacker, candidate: str) -> bool:
    """One oracle query: is *candidate* a registered device?

    Sends a Bind for the candidate and inspects the answer.  Any code
    other than ``unknown-device`` — including success and every
    authorization failure — confirms the ID exists.  ``rate-limited``
    answers carry no information (the countermeasure working) and count
    as a miss.
    """
    attacker.login()
    message = BindMessage(device_id=candidate, user_token=attacker.app.user_token)
    accepted, code, _ = attacker.send(message)
    if accepted:
        return True
    return code not in ("unknown-device", "rate-limited")


def enumerate_ids(
    attacker: RemoteAttacker,
    scheme: DeviceIdScheme,
    max_probes: int,
    request_rate: float = 3000.0,
    stop_after: Optional[int] = None,
) -> ProbeStats:
    """Sweep the candidate space in order, probing the real cloud.

    ``max_probes`` bounds the sweep (simulations should not iterate
    2^24 times to make a point); ``request_rate`` converts probe count
    into modelled wall-clock time.  Stops early after ``stop_after``
    hits if given.
    """
    stats = ProbeStats()
    for candidate in itertools.islice(scheme.candidates(), max_probes):
        stats.attempted += 1
        if probe_device_id(attacker, candidate):
            stats.found.append(candidate)
            if stop_after is not None and len(stats.found) >= stop_after:
                break
    stats.virtual_seconds = stats.attempted / request_rate
    return stats


def targeted_search(
    attacker: RemoteAttacker,
    candidates: Iterable[str],
    target: str,
    request_rate: float = 3000.0,
) -> ProbeStats:
    """Probe until *target* is confirmed; models a targeted brute force."""
    stats = ProbeStats()
    for candidate in candidates:
        stats.attempted += 1
        if candidate == target and probe_device_id(attacker, candidate):
            stats.found.append(candidate)
            break
    stats.virtual_seconds = stats.attempted / request_rate
    return stats
