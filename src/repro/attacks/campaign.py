"""Product-line-wide attack campaigns (Section V-C's scalable DoS).

A campaign is ID enumeration plus a per-ID attack primitive, run
against a whole fleet.  The two campaigns here bracket the paper's
scenarios:

* :func:`campaign_binding_dos` — enumerate the sequential ID space and
  occupy every binding *before* the customers set up ("binding
  denial-of-service to the entire product series");
* :func:`campaign_mass_unbind` — against an already-deployed fleet on
  an unchecked-unbind vendor, revoke every customer's binding;
* :func:`campaign_shadow_probe` — A1 at fleet scale: forged DeviceFetch
  polls across the ID space, stealing every exposed customer's data;
* :func:`campaign_mass_rebind` — A4 at fleet scale: hijack every
  deployed binding on a rebind-replaces vendor.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.core.errors import ConfigurationError, NetworkError, RequestRejected
from repro.core.messages import BindMessage, DeviceFetch, UnbindMessage
from repro.fleet import FleetDeployment


@dataclass
class CampaignReport:
    """Fleet-wide damage assessment."""

    campaign: str
    vendor: str
    households: int
    ids_probed: int
    ids_hit: int
    victims_denied: int
    modelled_seconds: float
    details: List[str] = field(default_factory=list)

    @property
    def denial_rate(self) -> float:
        return self.victims_denied / self.households if self.households else 0.0

    @classmethod
    def merge(cls, reports: Sequence["CampaignReport"]) -> "CampaignReport":
        """Fold per-shard reports into one fleet-wide report.

        Counts sum (a sharded run partitions both the households and the
        probe budget, so the sums equal what one serial run over the
        whole fleet would have produced — see ``docs/parallelism.md``).
        Detail lines keep their shard of origin as a ``[shard i]``
        prefix.  Merging a single report returns it unchanged (no
        provenance prefix), so a one-shard run stays bit-identical to
        the serial path.
        """
        if not reports:
            raise ConfigurationError("cannot merge zero campaign reports")
        first = reports[0]
        if len(reports) == 1:
            return dataclasses.replace(first, details=list(first.details))
        for other in reports[1:]:
            if (other.campaign, other.vendor) != (first.campaign, first.vendor):
                raise ConfigurationError(
                    "cannot merge reports from different campaigns or vendors: "
                    f"{(first.campaign, first.vendor)} vs "
                    f"{(other.campaign, other.vendor)}"
                )
        details = [
            f"[shard {shard}] {line}"
            for shard, report in enumerate(reports)
            for line in report.details
        ]
        return cls(
            campaign=first.campaign,
            vendor=first.vendor,
            households=sum(r.households for r in reports),
            ids_probed=sum(r.ids_probed for r in reports),
            ids_hit=sum(r.ids_hit for r in reports),
            victims_denied=sum(r.victims_denied for r in reports),
            modelled_seconds=sum(r.modelled_seconds for r in reports),
            details=details,
        )

    def render(self) -> str:
        """Multi-line damage summary."""
        lines = [
            f"campaign {self.campaign!r} against {self.vendor} "
            f"({self.households} households)",
            f"  IDs probed: {self.ids_probed}  hits: {self.ids_hit}  "
            f"modelled time: {self.modelled_seconds:.1f}s",
            f"  customers denied service: {self.victims_denied}/{self.households} "
            f"({self.denial_rate:.0%})",
        ]
        lines.extend(f"  {detail}" for detail in self.details)
        return "\n".join(lines)


def _send(fleet: FleetDeployment, message) -> tuple:
    try:
        fleet.network.request("attacker:host", fleet.cloud.node_name, message)
        return True, "ok"
    except RequestRejected as exc:
        return False, exc.code
    except NetworkError:
        # Chaos dropped the probe; the attacker gets nothing for this ID.
        return False, "network-error"


def _attacker_token(fleet: FleetDeployment):
    """The attacker's session token, or ``None`` if chaos blocked login."""
    try:
        return fleet.attacker_token()
    except NetworkError:
        return None


def campaign_binding_dos(
    fleet: FleetDeployment, max_probes: int = 256, request_rate: float = 3000.0
) -> CampaignReport:
    """Occupy the whole product series before customers bind.

    Sweeps the ID space in order, sending a Bind for every candidate.
    Then every household attempts its normal setup; a household counts
    as denied if the flow fails end to end.
    """
    obs = fleet.env.observer
    with obs.span(
        "campaign:binding-dos", kind="scenario",
        vendor=fleet.design.name, households=len(fleet.households),
    ):
        token = _attacker_token(fleet)
        probed = hits = 0
        details = []
        if token is None:
            details.append("attacker login failed (network); probe sweep skipped")
        else:
            with obs.span("probe-sweep", kind="phase", max_probes=max_probes):
                for candidate in itertools.islice(
                    fleet.id_scheme.candidates(), max_probes
                ):
                    probed += 1
                    accepted, code = _send(
                        fleet, BindMessage(device_id=candidate, user_token=token)
                    )
                    if accepted or code not in ("unknown-device", "network-error"):
                        hits += 1

        denied = 0
        with obs.span("victim-setups", kind="phase"):
            for household in fleet.households:
                ok = fleet.setup_household(household)
                if not ok:
                    denied += 1
                    details.append(f"{household.user_id}: setup DENIED")
        obs.count("campaign.probes", probed, campaign="binding-dos")
        obs.count("campaign.hits", hits, campaign="binding-dos")
        obs.count("campaign.denied", denied, campaign="binding-dos")
    return CampaignReport(
        campaign="binding-dos",
        vendor=fleet.design.name,
        households=len(fleet.households),
        ids_probed=probed,
        ids_hit=hits,
        victims_denied=denied,
        modelled_seconds=probed / request_rate,
        details=details,
    )


def campaign_mass_unbind(
    fleet: FleetDeployment, max_probes: int = 256, request_rate: float = 3000.0
) -> CampaignReport:
    """Revoke every deployed customer's binding (A3-2 at fleet scale).

    Requires an already-set-up fleet; effective only on vendors whose
    Type-1 unbind skips the bound-user check.
    """
    obs = fleet.env.observer
    with obs.span(
        "campaign:mass-unbind", kind="scenario",
        vendor=fleet.design.name, households=len(fleet.households),
    ):
        token = _attacker_token(fleet)
        probed = hits = 0
        details = []
        if token is None:
            details.append("attacker login failed (network); probe sweep skipped")
        else:
            with obs.span("probe-sweep", kind="phase", max_probes=max_probes):
                for candidate in itertools.islice(
                    fleet.id_scheme.candidates(), max_probes
                ):
                    probed += 1
                    accepted, _ = _send(
                        fleet, UnbindMessage(device_id=candidate, user_token=token)
                    )
                    if accepted:
                        hits += 1

        denied = sum(
            1
            for household in fleet.households
            if fleet.cloud.bound_user_of(household.device.device_id) != household.user_id
        )
        obs.count("campaign.probes", probed, campaign="mass-unbind")
        obs.count("campaign.hits", hits, campaign="mass-unbind")
        obs.count("campaign.denied", denied, campaign="mass-unbind")
    return CampaignReport(
        campaign="mass-unbind",
        vendor=fleet.design.name,
        households=len(fleet.households),
        ids_probed=probed,
        ids_hit=hits,
        victims_denied=denied,
        modelled_seconds=probed / request_rate,
        details=details,
    )


def campaign_shadow_probe(
    fleet: FleetDeployment, max_probes: int = 256, request_rate: float = 3000.0
) -> CampaignReport:
    """Steal every exposed customer's device data (A1 at fleet scale).

    Requires an already-set-up fleet.  The attacker sweeps the ID space
    with forged :class:`DeviceFetch` polls — no session, no token, just
    the guessable identifier (the device #10 weakness).  A household
    counts as a victim when a forged fetch for *its* device was
    accepted: the cloud handed the attacker that customer's command
    queue and schedule.
    """
    obs = fleet.env.observer
    with obs.span(
        "campaign:shadow-probe", kind="scenario",
        vendor=fleet.design.name, households=len(fleet.households),
    ):
        fleet_devices = {
            household.device.device_id for household in fleet.households
        }
        probed = hits = 0
        exposed = set()
        details = []
        with obs.span("probe-sweep", kind="phase", max_probes=max_probes):
            for candidate in itertools.islice(
                fleet.id_scheme.candidates(), max_probes
            ):
                probed += 1
                accepted, _ = _send(fleet, DeviceFetch(device_id=candidate))
                if accepted:
                    hits += 1
                    if candidate in fleet_devices:
                        exposed.add(candidate)
        if exposed:
            details.append(f"{len(exposed)} household device(s) EXPOSED")
        obs.count("campaign.probes", probed, campaign="shadow-probe")
        obs.count("campaign.hits", hits, campaign="shadow-probe")
        obs.count("campaign.denied", len(exposed), campaign="shadow-probe")
    return CampaignReport(
        campaign="shadow-probe",
        vendor=fleet.design.name,
        households=len(fleet.households),
        ids_probed=probed,
        ids_hit=hits,
        victims_denied=len(exposed),
        modelled_seconds=probed / request_rate,
        details=details,
    )


def campaign_mass_rebind(
    fleet: FleetDeployment, max_probes: int = 256, request_rate: float = 3000.0
) -> CampaignReport:
    """Hijack every deployed customer's binding (A4 at fleet scale).

    Requires an already-set-up fleet; effective only on vendors whose
    Bind replaces an existing binding (``rebind_replaces_existing``).
    A household counts as denied when its binding no longer names it
    after the sweep.
    """
    obs = fleet.env.observer
    with obs.span(
        "campaign:mass-rebind", kind="scenario",
        vendor=fleet.design.name, households=len(fleet.households),
    ):
        token = _attacker_token(fleet)
        probed = hits = 0
        details = []
        if token is None:
            details.append("attacker login failed (network); probe sweep skipped")
        else:
            with obs.span("probe-sweep", kind="phase", max_probes=max_probes):
                for candidate in itertools.islice(
                    fleet.id_scheme.candidates(), max_probes
                ):
                    probed += 1
                    accepted, _ = _send(
                        fleet, BindMessage(device_id=candidate, user_token=token)
                    )
                    if accepted:
                        hits += 1

        denied = sum(
            1
            for household in fleet.households
            if fleet.cloud.bound_user_of(household.device.device_id) != household.user_id
        )
        obs.count("campaign.probes", probed, campaign="mass-rebind")
        obs.count("campaign.hits", hits, campaign="mass-rebind")
        obs.count("campaign.denied", denied, campaign="mass-rebind")
    return CampaignReport(
        campaign="mass-rebind",
        vendor=fleet.design.name,
        households=len(fleet.households),
        ids_probed=probed,
        ids_hit=hits,
        victims_denied=denied,
        modelled_seconds=probed / request_rate,
        details=details,
    )
