"""A2: binding denial-of-service (Section V-C).

Before the victim ever binds her device (the shadow's *initial* state),
the attacker submits a Bind pairing the attacker's account with the
victim's device ID.  If the cloud accepts it, the victim's own setup
later fails — she cannot create a binding with her own device.

The attack *fails* when the cloud refuses the foreign binding (Philips'
IP-match, TP-LINK's online-device requirement) or when it accepts it
but a later legitimate binding simply replaces it (KONKE's
revocation-by-replacement, which ironically makes it immune to A2).
"""

from __future__ import annotations

from repro.attacks.attacker import RemoteAttacker
from repro.attacks.results import AttackReport, Outcome
from repro.cloud.policy import BindSender
from repro.scenario import Deployment


def attack_binding_dos(deployment: Deployment, attacker: RemoteAttacker) -> AttackReport:
    """Run A2 against a factory-fresh victim device (initial state)."""
    vendor = deployment.design.name
    attacker.learn_victim_device_id(deployment.victim.device.device_id)

    if deployment.design.bind_sender is BindSender.DEVICE and not attacker.can_forge_device_messages:
        return AttackReport(
            "A2", vendor, Outcome.UNCONFIRMED,
            "device-initiated binding and no firmware to craft it",
        )

    accepted, code, response = attacker.send(attacker.forge_bind())
    if not accepted:
        return AttackReport(
            "A2", vendor, Outcome.FAILED, f"cloud rejected the foreign binding ({code})"
        )
    attacker.note_bind_response(response)

    # The occupation exists; now the ground truth: can the victim still
    # complete her own setup?
    victim_ok = deployment.victim_full_setup()
    if victim_ok:
        return AttackReport(
            "A2", vendor, Outcome.FAILED,
            "binding accepted but the victim's setup replaced it (no DoS)",
            {"bound_user": deployment.bound_user()},
        )
    return AttackReport(
        "A2", vendor, Outcome.SUCCESS,
        "victim can no longer bind her own device",
        {
            "bound_user": deployment.bound_user(),
            "victim_setup_succeeded": victim_ok,
        },
    )
