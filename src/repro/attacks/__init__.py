"""The attacker toolkit: forgery, ID inference, and the A1–A4 attacks."""

from repro.attacks.attacker import RemoteAttacker
from repro.attacks.campaign import (
    CampaignReport,
    campaign_binding_dos,
    campaign_mass_unbind,
)
from repro.attacks.data_attacks import attack_data_injection_and_stealing
from repro.attacks.dos import attack_binding_dos
from repro.attacks.hijacking import (
    attack_hijack_rebind,
    attack_hijack_unbind_then_bind,
    attack_hijack_window,
)
from repro.attacks.id_inference import ProbeStats, enumerate_ids, probe_device_id, targeted_search
from repro.attacks.results import AttackReport, Outcome
from repro.attacks.runner import ATTACK_IDS, ATTACKS, run_all_attacks, run_attack
from repro.attacks.traffic_analysis import (
    ForgeryPlaybook,
    analyze_own_traffic,
    craft_foreign_bind,
    differing_fields,
    locate_id_field,
)
from repro.attacks.unbinding import (
    attack_unbind_type1,
    attack_unbind_type2,
    attack_unbind_via_rebind,
    attack_unbind_via_status,
)

__all__ = [
    "ATTACKS",
    "ATTACK_IDS",
    "AttackReport",
    "CampaignReport",
    "ForgeryPlaybook",
    "analyze_own_traffic",
    "campaign_binding_dos",
    "campaign_mass_unbind",
    "craft_foreign_bind",
    "differing_fields",
    "locate_id_field",
    "Outcome",
    "ProbeStats",
    "RemoteAttacker",
    "attack_binding_dos",
    "attack_data_injection_and_stealing",
    "attack_hijack_rebind",
    "attack_hijack_unbind_then_bind",
    "attack_hijack_window",
    "attack_unbind_type1",
    "attack_unbind_type2",
    "attack_unbind_via_rebind",
    "attack_unbind_via_status",
    "enumerate_ids",
    "probe_device_id",
    "run_all_attacks",
    "run_attack",
    "targeted_search",
]
