"""A1: data injection and stealing (Section V-B).

The attacker forges *device* messages with the victim's device ID:

* **injection** — a forged Status carries fake telemetry, which the
  cloud stores and the victim's app reads back (the fire-alarm /
  IFTTT-cascade examples);
* **stealing** — a forged DeviceFetch returns data meant for the
  device, e.g. the on/off schedule the victim configured (the paper's
  smart-plug/smart-lock example on device #10).

Preconditions mirror the paper's: the attacker must know the status
authentication design (Table III "O" rows are UNCONFIRMED), the design
must be forgeable (DevId, not DevToken), and device-protocol knowledge
requires an available firmware image.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.attacks.attacker import RemoteAttacker
from repro.attacks.results import AttackReport, Outcome
from repro.cloud.policy import DeviceAuthMode
from repro.core.messages import Response
from repro.scenario import Deployment

FAKE_TELEMETRY: Dict[str, Any] = {"power_w": 9999.0, "forged": True}


def attack_data_injection_and_stealing(
    deployment: Deployment, attacker: RemoteAttacker
) -> AttackReport:
    """Run A1 against a victim in the control state."""
    design = deployment.design
    vendor = design.name
    attacker.learn_victim_device_id(deployment.victim.device.device_id)

    # -- feasibility gates (the paper's "O" and DevToken cells) ----------
    if not attacker.knows_status_design:
        return AttackReport(
            "A1", vendor, Outcome.UNCONFIRMED,
            "status authentication undetermined without firmware",
        )
    if design.device_auth_known is DeviceAuthMode.DEV_TOKEN:
        return AttackReport(
            "A1", vendor, Outcome.FAILED,
            "DevToken authentication: the random token cannot be forged",
        )
    if design.device_auth_known is DeviceAuthMode.PUBKEY:
        return AttackReport(
            "A1", vendor, Outcome.FAILED,
            "signed status messages cannot be forged without the private key",
        )
    if not attacker.can_forge_device_messages:
        return AttackReport(
            "A1", vendor, Outcome.UNCONFIRMED,
            "no firmware image: device message format unknown",
        )

    evidence: Dict[str, Any] = {}

    # -- injection: forged telemetry surfaces in the victim's app ---------
    accepted, code, _ = attacker.send(attacker.forge_status(FAKE_TELEMETRY))
    injected = False
    if accepted:
        query = deployment.victim.app.query(deployment.victim.device.device_id)
        telemetry = query.payload.get("telemetry") or {}
        injected = telemetry.get("forged") is True
        evidence["victim_sees"] = telemetry

    # -- stealing: forged fetch returns the victim's schedule --------------
    stolen = False
    fetch_ok, fetch_code, response = attacker.send(attacker.forge_fetch())
    if fetch_ok and isinstance(response, Response):
        schedule = response.payload.get("schedule")
        if schedule:
            attacker.stolen["schedule"] = schedule
            stolen = True
            evidence["stolen_schedule"] = schedule

    if injected or stolen:
        what = " and ".join(
            label for label, flag in (("injection", injected), ("stealing", stolen)) if flag
        )
        return AttackReport(
            "A1", vendor, Outcome.SUCCESS, f"forged device messages achieved {what}",
            evidence,
        )
    if not accepted and not fetch_ok:
        return AttackReport(
            "A1", vendor, Outcome.FAILED, f"cloud rejected forged device messages ({code})",
            evidence,
        )
    return AttackReport(
        "A1", vendor, Outcome.FAILED,
        "forged messages accepted but the channel carries no user data",
        evidence,
    )
