"""The persistent worker pool: long-lived shard runners with warm starts.

The spawn-per-shard path (``context.Pool.map`` in
``repro.parallel.engine``) pays process start-up, interpreter import
and — for deployed campaigns — a full fleet build + Figure 1 setup +
settling run *per shard, per campaign*.  On small shards that overhead
dwarfs the campaign itself, which is how a "parallel" run ends up
slower than serial (``benchmarks/output/BENCH_parallel.json`` measured
0.59x at 4 workers on a 1-CPU box).  This pool keeps the workers
alive instead:

* each worker slot owns a dedicated task queue and a dedicated outbound
  queue (heartbeats + results), so one crashed writer can never corrupt
  a channel other workers share;
* dispatch is deterministic round-robin — task *i* goes to slot
  ``i % workers`` — so repeated campaigns route the same shard to the
  same slot and its :class:`~repro.parallel.protocol.WorldImageCache`
  actually hits;
* workers warm-start deployed-campaign shards from cached
  :class:`~repro.fleet.WorldImage` captures instead of rebuilding the
  fleet (bit-identical results; see ``docs/performance.md``);
* a daemon thread in every worker emits
  :class:`~repro.parallel.protocol.Heartbeat` beacons; the coordinator
  detects a dead or wedged worker (process exit, stale heartbeat, or a
  per-task deadline) and **respawns the slot without losing the
  campaign** — outstanding tasks are requeued to the fresh worker, up
  to an attempts cap;
* Python exceptions raised inside a shard are *propagated*, never
  retried: the worlds are deterministic, so a deterministic failure
  would just fail again.

Start method: ``forkserver`` where available (clean template process,
no inherited locks), else ``fork``, else ``spawn`` — the worker entry
point imports everything it needs, so all three behave identically.
"""

from __future__ import annotations

import os
import queue as queue_module
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import multiprocessing

from repro.parallel.protocol import (
    Heartbeat,
    Shutdown,
    TaskRequest,
    TaskResult,
    WorkerHello,
    WorldImageCache,
)

#: How long a worker sleeps between heartbeats (seconds).
HEARTBEAT_INTERVAL = 0.25

#: Heartbeats a worker may miss before the coordinator declares it dead.
HEARTBEAT_GRACE = 40

#: How many times one task may be dispatched before the pool gives up.
MAX_TASK_ATTEMPTS = 3


class PoolError(RuntimeError):
    """The pool cannot make progress (task retries exhausted)."""


class WorkerTaskError(RuntimeError):
    """A shard raised inside a worker; carries the worker traceback."""

    def __init__(self, task_id: int, worker: int, worker_traceback: str) -> None:
        super().__init__(
            f"task {task_id} raised in worker {worker}:\n{worker_traceback}"
        )
        self.task_id = task_id
        self.worker = worker
        self.worker_traceback = worker_traceback


def preferred_start_method(mp_start: Optional[str] = None) -> str:
    """``forkserver`` > ``fork`` > ``spawn``, unless *mp_start* pins one."""
    methods = multiprocessing.get_all_start_methods()
    if mp_start is not None:
        if mp_start not in methods:
            raise PoolError(f"start method {mp_start!r} unavailable on this platform")
        return mp_start
    for method in ("forkserver", "fork", "spawn"):
        if method in methods:
            return method
    return methods[0]  # pragma: no cover - every platform has spawn


def task_overdue(
    busy_since: Optional[float], now: float, timeout: Optional[float]
) -> bool:
    """Has a worker been grinding without producing, past *timeout*?

    ``busy_since`` is coordinator-side bookkeeping: the moment the
    worker's current head-of-line task became its sole focus (first
    dispatch while idle, or the arrival of the previous result while
    more tasks were outstanding).  ``None`` means idle.  A ``None``
    timeout disables the deadline entirely — shards can legitimately
    run for minutes.
    """
    if timeout is None or busy_since is None:
        return False
    return (now - busy_since) > timeout


def _worker_main(
    slot: int,
    task_queue: Any,
    out_queue: Any,
    heartbeat_interval: float,
    warm_start: bool,
    cache_entries: int,
) -> None:
    """Worker process entry point: loop tasks until :class:`Shutdown`.

    Imports the engine lazily so the module graph stays acyclic
    (``engine`` imports this module for the pooled execution path) and
    the entry point works under every start method.
    """
    from repro.parallel.engine import run_shard

    cache = WorldImageCache(max_entries=cache_entries) if warm_start else None
    out_queue.put(WorkerHello(worker=slot, pid=os.getpid()))

    stop = threading.Event()

    def beat() -> None:
        seq = 0
        while not stop.is_set():
            try:
                out_queue.put(Heartbeat(worker=slot, seq=seq))
            except Exception:  # pragma: no cover - queue torn down mid-exit
                return
            seq += 1
            stop.wait(heartbeat_interval)

    heartbeats = threading.Thread(target=beat, daemon=True)
    heartbeats.start()
    try:
        while True:
            message = task_queue.get()
            if isinstance(message, Shutdown):
                return
            try:
                result = run_shard(message.spec, image_cache=cache)
                out_queue.put(
                    TaskResult(
                        task_id=message.task_id,
                        worker=slot,
                        result=result,
                        cache=cache.stats() if cache is not None else {},
                    )
                )
            except BaseException:
                out_queue.put(
                    TaskResult(
                        task_id=message.task_id,
                        worker=slot,
                        error=traceback.format_exc(),
                        cache=cache.stats() if cache is not None else {},
                    )
                )
    finally:
        stop.set()


@dataclass
class _Slot:
    """Coordinator-side state for one worker slot."""

    index: int
    process: Any = None
    task_queue: Any = None
    out_queue: Any = None
    #: task_id -> TaskRequest, in dispatch order
    outstanding: Dict[int, TaskRequest] = field(default_factory=dict)
    busy_since: Optional[float] = None
    last_heartbeat: Optional[float] = None
    cache_stats: Dict[str, int] = field(default_factory=dict)


class WorkerPool:
    """A fixed set of persistent shard-running worker processes.

    Usable as a context manager; :meth:`run` may be called repeatedly
    (that is the point — campaign sweeps reuse the workers *and* their
    world-image caches).  All coordinator bookkeeping uses its own
    monotonic clock; nothing compares clocks across processes.
    """

    def __init__(
        self,
        workers: int,
        mp_start: Optional[str] = None,
        warm_start: bool = True,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        task_timeout: Optional[float] = None,
        max_task_attempts: int = MAX_TASK_ATTEMPTS,
        cache_entries: int = 4,
        observer: Any = None,
    ) -> None:
        if workers < 1:
            raise PoolError("need at least one worker")
        self.workers = workers
        self.start_method = preferred_start_method(mp_start)
        self.warm_start = warm_start
        self.heartbeat_interval = heartbeat_interval
        self.task_timeout = task_timeout
        self.max_task_attempts = max_task_attempts
        self.cache_entries = cache_entries
        self._observer = observer
        self._context = multiprocessing.get_context(self.start_method)
        self._slots: List[_Slot] = [_Slot(index=i) for i in range(workers)]
        self._started = False
        self._closed = False
        self._on_dispatch: Optional[Callable[[int, int], None]] = None
        # lifetime accounting
        self.respawns = 0
        self.tasks_completed = 0
        self.warm_starts = 0
        self.cold_builds = 0
        self.busy_seconds = 0.0
        self.run_wall_seconds = 0.0

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def start(self) -> None:
        """Spawn every worker (idempotent)."""
        if self._closed:
            raise PoolError("pool is closed")
        if self._started:
            return
        for slot in self._slots:
            self._spawn(slot)
        self._started = True

    def close(self) -> None:
        """Shut the workers down; joins briefly, then terminates."""
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            if slot.process is None:
                continue
            try:
                slot.task_queue.put(Shutdown())
            except Exception:  # pragma: no cover - queue already broken
                pass
        for slot in self._slots:
            if slot.process is None:
                continue
            slot.process.join(timeout=2.0)
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(timeout=1.0)

    def _spawn(self, slot: _Slot) -> None:
        """(Re)create the processes and queues behind one slot."""
        slot.task_queue = self._context.Queue()
        slot.out_queue = self._context.Queue()
        slot.process = self._context.Process(
            target=_worker_main,
            args=(
                slot.index,
                slot.task_queue,
                slot.out_queue,
                self.heartbeat_interval,
                self.warm_start,
                self.cache_entries,
            ),
            daemon=True,
        )
        slot.process.start()
        slot.busy_since = None
        slot.last_heartbeat = time.monotonic()

    # -- test hooks ----------------------------------------------------------

    def kill_worker(self, slot_index: int) -> None:
        """SIGKILL one worker process (crash-injection for tests)."""
        process = self._slots[slot_index].process
        if process is not None and process.is_alive():
            os.kill(process.pid, signal.SIGKILL)

    # -- execution -----------------------------------------------------------

    def run(
        self,
        specs: List[Any],
        on_dispatch: Optional[Callable[[int, int], None]] = None,
    ) -> List[Any]:
        """Run every spec, returning results in spec order.

        Dispatch is deterministic round-robin (spec *i* to slot
        ``i % workers``); *on_dispatch(task_id, slot_index)* fires after
        each enqueue (tests use it to kill a worker at a precise,
        reproducible moment).  Results are collected by ``task_id``, so
        neither completion order nor respawns can reorder them.
        """
        if self._closed:
            raise PoolError("pool is closed")
        if not specs:
            return []
        self.start()
        started = time.monotonic()
        attempts: Dict[int, int] = {}
        results: Dict[int, Any] = {}
        self._on_dispatch = on_dispatch
        try:
            for task_id, spec in enumerate(specs):
                slot = self._slots[task_id % self.workers]
                self._dispatch(
                    slot, TaskRequest(task_id=task_id, spec=spec), attempts
                )
            while len(results) < len(specs):
                progressed = self._drain(results)
                if not progressed:
                    self._check_workers(attempts, results)
                    time.sleep(0.01)
        finally:
            self._on_dispatch = None
            self.run_wall_seconds += time.monotonic() - started
        self._emit_run_metrics()
        return [results[task_id] for task_id in range(len(specs))]

    # -- internals -----------------------------------------------------------

    def _dispatch(
        self, slot: _Slot, request: TaskRequest, attempts: Dict[int, int]
    ) -> None:
        count = attempts.get(request.task_id, 0) + 1
        if count > self.max_task_attempts:
            raise PoolError(
                f"task {request.task_id} failed {self.max_task_attempts} "
                "dispatch attempts (worker kept dying)"
            )
        attempts[request.task_id] = count
        slot.outstanding[request.task_id] = request
        if slot.busy_since is None:
            slot.busy_since = time.monotonic()
        slot.task_queue.put(request)
        if self._on_dispatch is not None:
            self._on_dispatch(request.task_id, slot.index)

    def _drain(self, results: Dict[int, Any]) -> bool:
        """Collect everything currently readable; True if anything was."""
        progressed = False
        now = time.monotonic()
        for slot in self._slots:
            while True:
                try:
                    message = slot.out_queue.get_nowait()
                except queue_module.Empty:
                    break
                except (EOFError, OSError):  # pragma: no cover - torn pipe
                    break
                progressed = True
                if isinstance(message, Heartbeat) or isinstance(message, WorkerHello):
                    slot.last_heartbeat = now
                    continue
                if isinstance(message, TaskResult):
                    slot.last_heartbeat = now
                    self._absorb(slot, message, results, now)
        return progressed

    def _absorb(
        self, slot: _Slot, message: TaskResult, results: Dict[int, Any], now: float
    ) -> None:
        slot.outstanding.pop(message.task_id, None)
        slot.busy_since = now if slot.outstanding else None
        slot.cache_stats = dict(message.cache)
        if message.error is not None:
            raise WorkerTaskError(message.task_id, slot.index, message.error)
        results[message.task_id] = message.result
        self.tasks_completed += 1
        result = message.result
        source = getattr(result, "world_source", "cold")
        if source == "warm":
            self.warm_starts += 1
        else:
            self.cold_builds += 1
        self.busy_seconds += getattr(result, "wall_seconds", 0.0)
        metrics = self._metrics()
        if metrics is not None:
            metrics.histogram("parallel.pool.world_seconds").observe(
                getattr(result, "world_seconds", 0.0)
            )
            metrics.counter("parallel.pool.tasks").inc(1, world=source)

    def _check_workers(
        self, attempts: Dict[int, int], results: Dict[int, Any]
    ) -> None:
        """Respawn any slot that is dead, silent, or past its deadline."""
        now = time.monotonic()
        stale_after = self.heartbeat_interval * HEARTBEAT_GRACE
        for slot in self._slots:
            dead = slot.process is not None and not slot.process.is_alive()
            silent = (
                not dead
                and slot.outstanding
                and slot.last_heartbeat is not None
                and (now - slot.last_heartbeat) > stale_after
            )
            overdue = task_overdue(slot.busy_since, now, self.task_timeout)
            if not (dead or silent or overdue):
                continue
            self._respawn(slot, attempts, results)

    def _respawn(
        self, slot: _Slot, attempts: Dict[int, int], results: Dict[int, Any]
    ) -> None:
        """Replace a failed worker and requeue its outstanding tasks.

        The fresh worker starts with an empty world-image cache, so the
        requeued shards run cold — slower, but bit-identical (that
        equivalence is exactly what the warm-start tests pin down).
        """
        process = slot.process
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stubborn process
                os.kill(process.pid, signal.SIGKILL)
                process.join(timeout=1.0)
        # Salvage results the worker managed to send before dying, then
        # requeue whatever never came back.  The old queues die with the
        # slot: a killed writer can hold a queue lock forever, so the
        # replacement worker gets fresh channels.
        self._drain(results)
        requeue = [slot.outstanding[task_id] for task_id in sorted(slot.outstanding)]
        slot.outstanding = {}
        self.respawns += 1
        self._spawn(slot)
        for request in requeue:
            self._dispatch(slot, request, attempts)

    def _metrics(self) -> Any:
        """The metrics registry behind *observer*, if any.

        Accepts either an :class:`~repro.obs.runtime.Observability`
        (uses its ``.metrics`` registry) or a bare
        :class:`~repro.obs.metrics.MetricsRegistry`.  These are
        *coordinator-side* pool metrics; they never enter the merged
        shard results, so pooled campaign output stays bit-identical
        to serial.
        """
        if self._observer is None:
            return None
        return getattr(self._observer, "metrics", self._observer)

    def _emit_run_metrics(self) -> None:
        metrics = self._metrics()
        if metrics is None:
            return
        metrics.gauge("parallel.pool.utilization").set(self.utilization)
        metrics.gauge("parallel.pool.respawns").set(self.respawns)

    # -- accounting ----------------------------------------------------------

    @property
    def utilization(self) -> float:
        """Busy worker-seconds over available worker-seconds, 0..1."""
        available = self.workers * self.run_wall_seconds
        return (self.busy_seconds / available) if available > 0 else 0.0

    def stats(self) -> Dict[str, Any]:
        """JSON-able pool accounting (reports, benchmarks, CLI)."""
        cache = {"entries": 0, "hits": 0, "misses": 0}
        for slot in self._slots:
            for key in cache:
                cache[key] += slot.cache_stats.get(key, 0)
        return {
            "workers": self.workers,
            "start_method": self.start_method,
            "warm_start_enabled": self.warm_start,
            "tasks": self.tasks_completed,
            "warm_starts": self.warm_starts,
            "cold_builds": self.cold_builds,
            "respawns": self.respawns,
            "busy_seconds": self.busy_seconds,
            "run_wall_seconds": self.run_wall_seconds,
            "utilization": self.utilization,
            "image_cache": cache,
        }
