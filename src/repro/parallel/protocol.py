"""Worker-pool wire protocol and the per-worker world-image cache.

The persistent pool (``repro.parallel.pool``) feeds shard specs to
long-lived worker processes over typed queues; this module defines the
message dataclasses both sides exchange and the warm-start machinery a
worker keeps between tasks:

* :func:`world_key` — the cache key identifying the *deployed world* a
  shard spec needs, independent of the campaign run against it.  All
  three deployed campaigns (mass unbind, shadow probe, mass rebind)
  over the same ``(design, households, seed, build, run_seconds,
  trace_messages)`` share one key — which is exactly why an A2/A3/A4
  detection sweep amortizes one world build across three campaigns.
  Chaos shards and ``binding-dos`` (which attacks factory-fresh fleets,
  so a "deployed image" would be nothing but the plain rebuild) key to
  ``None``: they always run cold.
* :class:`WorldImageCache` — a small per-process LRU of
  :class:`~repro.fleet.WorldImage` captures with hit/miss accounting.
  Workers keep one each; the deterministic round-robin dispatch in the
  pool sends repeats of a shard index to the same worker slot, so the
  cache actually gets hit.
* message types — :class:`WorkerHello`, :class:`Heartbeat`,
  :class:`TaskRequest`, :class:`TaskResult`, :class:`Shutdown`.
  Heartbeats carry only a slot and a sequence number; the coordinator
  stamps arrival with its *own* clock, so liveness tracking never
  compares clocks across processes.

Everything here is picklable under every ``multiprocessing`` start
method (the pool prefers ``forkserver``).
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Campaigns that attack an already-deployed (set-up) fleet — the only
#: ones a warm-started world can serve.  ``repro.parallel.engine``
#: imports this tuple; keep it in sync with ``CAMPAIGNS`` there.
DEPLOYED_CAMPAIGNS = ("mass-unbind", "shadow-probe", "mass-rebind")


def world_key(spec: Any) -> Optional[str]:
    """The warm-start cache key for *spec*'s world, or ``None``.

    ``None`` means "this shard must run cold": chaos shards (fault
    plans perturb the world mid-build, and resilience clients are
    uncapturable by design) and non-deployed campaigns (binding-dos
    starts from a factory-fresh fleet, so there is nothing to warm).

    The key hashes ``repr(design)`` — not just the design name — so two
    custom designs that happen to share a name never share an image.
    Campaign name, probe budget and request rate are deliberately
    absent: they parameterize the attack, not the world it runs
    against.
    """
    if getattr(spec, "chaos", None) is not None:
        return None
    if spec.campaign not in DEPLOYED_CAMPAIGNS:
        return None
    material = "|".join(
        (
            repr(spec.design),
            str(spec.households),
            str(spec.seed),
            spec.build,
            repr(spec.run_seconds),
            str(spec.trace_messages),
        )
    )
    digest = zlib.crc32(material.encode("utf-8"))
    return (
        f"w{digest:08x}:{spec.design.name}"
        f":h{spec.households}:s{spec.seed}:{spec.build}"
    )


class WorldImageCache:
    """A small LRU of deployed-world images, with hit/miss accounting.

    One per worker process (and one per inline warm-start scope).  The
    cap exists because a :class:`~repro.fleet.WorldImage` scales with
    the shard's household count; a handful of distinct worlds covers
    every realistic campaign sweep.
    """

    def __init__(self, max_entries: int = 4) -> None:
        if max_entries < 1:
            raise ValueError("cache needs room for at least one image")
        self.max_entries = max_entries
        self._images: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Optional[Any]:
        """The cached image under *key*, marking a hit or miss."""
        image = self._images.get(key)
        if image is None:
            self.misses += 1
            return None
        self.hits += 1
        self._images.move_to_end(key)
        return image

    def put(self, key: str, image: Any) -> None:
        """Cache *image* under *key*, evicting the least recent overflow."""
        self._images[key] = image
        self._images.move_to_end(key)
        while len(self._images) > self.max_entries:
            self._images.popitem(last=False)

    def __len__(self) -> int:
        return len(self._images)

    def stats(self) -> Dict[str, int]:
        """Accounting for the pool's warm-start report."""
        return {"entries": len(self._images), "hits": self.hits, "misses": self.misses}


# -- queue messages ----------------------------------------------------------


@dataclass(frozen=True)
class WorkerHello:
    """A worker announcing it is up and consuming its task queue."""

    worker: int
    pid: int


@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness beacon from a worker's daemon thread.

    Carries no timestamp on purpose: the coordinator stamps arrival
    with its own monotonic clock, so staleness detection never depends
    on cross-process clock agreement.
    """

    worker: int
    seq: int


@dataclass(frozen=True)
class TaskRequest:
    """One shard of work, addressed to a specific worker slot."""

    task_id: int
    spec: Any  # a ShardSpec; typed loosely to keep this module leaf-level


@dataclass
class TaskResult:
    """A worker's answer: a shard result or a formatted traceback.

    ``error`` carries ``traceback.format_exc()`` when the shard raised —
    Python-level failures are *propagated*, not retried, because a
    deterministic world raises deterministically.  ``cache`` reports
    the worker's image-cache accounting after this task.
    """

    task_id: int
    worker: int
    result: Optional[Any] = None
    error: Optional[str] = None
    cache: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class Shutdown:
    """Orderly stop: the worker drains nothing further and exits."""
