"""The sharded campaign engine: partition, fan out, merge.

Section V-C frames binding DoS as an attack on "the entire product
series of a vendor"; this module is what lets the reproduction actually
operate at product-series scale.  A campaign over N households is
partitioned into S independent shards (each its own simulated world —
own cloud, scheduler, RNG), the shards run across worker processes, and
the results are merged deterministically:

* shard *i* seeds its world with
  :func:`~repro.parallel.shards.derive_shard_seed`, so re-runs are
  reproducible and a one-worker run bit-matches the serial path;
* per-shard :class:`~repro.attacks.campaign.CampaignReport`\\ s merge via
  :meth:`CampaignReport.merge`, metric snapshots fold into one
  :class:`~repro.obs.metrics.MetricsRegistry`, and observability
  snapshots merge with shard provenance via
  :func:`~repro.obs.export.merge_snapshots`;
* merge order is shard order, never completion order, so worker
  scheduling cannot leak into the results.

:func:`run_shard` is the spawn-safe worker entry point: a module-level
function over a picklable :class:`ShardSpec`, so it works under every
``multiprocessing`` start method.  The spawn-per-shard path prefers
``fork`` where the platform offers it and falls back to ``spawn``;
``run_campaign(pool=True)`` instead routes shards through a persistent
:class:`~repro.parallel.pool.WorkerPool` whose workers warm-start
deployed worlds from cached :class:`~repro.fleet.WorldImage`\\ s — see
``docs/performance.md`` for the cost model of when each wins.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.attacks.campaign import (
    CampaignReport,
    campaign_binding_dos,
    campaign_mass_rebind,
    campaign_mass_unbind,
    campaign_shadow_probe,
)
from repro.chaos.campaign import (
    ChaosSpec,
    apply_chaos,
    binding_liveness,
    merge_liveness,
)
from repro.cloud.policy import VendorDesign
from repro.core.errors import ConfigurationError
from repro.fleet import FleetDeployment
from repro.obs.detect.pipeline import DetectionPipeline
from repro.obs.detect.score import merge_detection, score_detection
from repro.obs.export import merge_snapshots, snapshot
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import Observability
from repro.parallel.protocol import DEPLOYED_CAMPAIGNS, WorldImageCache, world_key
from repro.parallel.shards import derive_shard_seed, partition

if TYPE_CHECKING:  # import cycle guard: pool imports engine lazily
    from repro.parallel.pool import WorkerPool

#: Campaigns the engine can shard.
CAMPAIGNS = ("binding-dos", "mass-unbind", "shadow-probe", "mass-rebind")

#: Campaigns that attack an already-deployed (set-up) fleet.
_DEPLOYED_CAMPAIGNS = DEPLOYED_CAMPAIGNS


@dataclass(frozen=True)
class ShardSpec:
    """Everything one worker needs to run its shard (picklable)."""

    shard_index: int
    shards: int
    design: VendorDesign
    campaign: str
    households: int
    max_probes: int
    seed: int
    request_rate: float = 3000.0
    build: str = "replay"
    run_seconds: float = 12.0
    trace_messages: bool = True
    snapshot_max_spans: Optional[int] = None
    #: optional chaos configuration; the plan is materialized inside the
    #: shard world so its fault RNG derives from the shard seed
    chaos: Optional[ChaosSpec] = None
    #: attach a read-only detection pipeline to the shard cloud and
    #: score it against ground truth (never perturbs the world)
    detect: bool = False


@dataclass
class ShardResult:
    """What one shard hands back for merging (picklable)."""

    shard_index: int
    seed: int
    report: CampaignReport
    metrics: Dict[str, Any]
    obs_snapshot: Dict[str, Any]
    audit_entries: int
    matches_audit: bool
    wall_seconds: float
    #: per-store ``{records, mutations}`` from the shard cloud's state
    #: layer (``CloudService.state_counts``), captured at shard end
    state_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: chaos summary for this shard (plan, injector stats, restarts,
    #: resilience totals, binding liveness); ``None`` on calm runs
    chaos: Optional[Dict[str, Any]] = None
    #: detection score for this shard (``repro.obs.detect.score``);
    #: ``None`` when the shard ran without detection
    detection: Optional[Dict[str, Any]] = None
    #: how this shard's world came to be: ``"cold"`` (built + set up in
    #: place) or ``"warm"`` (restored from a cached world image)
    world_source: str = "cold"
    #: wall seconds spent producing the ready-to-attack world (build +
    #: setup + settling run when cold, image restore when warm)
    world_seconds: float = 0.0
    #: observer-side runtime statistics (authorization-cache hit rates,
    #: …) captured at shard end.  Like pool stats, these describe the
    #: *execution*, not the campaign: they feed the report's "runtime"
    #: line only and never enter merged results, so pooled/warm runs
    #: stay bit-identical to serial.
    runtime: Dict[str, Any] = field(default_factory=dict)


def run_shard(
    spec: ShardSpec, image_cache: Optional[WorldImageCache] = None
) -> ShardResult:
    """Run one shard in a fresh world; the worker-process entry point.

    Builds the shard's fleet from its derived seed, runs the campaign
    against it, and returns the report plus the shard's metric and
    observability snapshots and its audit-consistency verdict.

    With an *image_cache*, deployed-campaign shards warm-start: the
    first run of a world captures a :class:`~repro.fleet.WorldImage`
    after setup + settling, and later shards over the same world key
    restore it instead of rebuilding (bit-identical results — the
    warm-start equality tests pin reports, audit logs, forensic
    timelines and metrics).  Chaos shards and ``binding-dos`` always
    run cold (:func:`~repro.parallel.protocol.world_key` is ``None``).
    """
    started = time.perf_counter()
    obs = Observability(trace_messages=spec.trace_messages)
    key = world_key(spec) if image_cache is not None else None
    image = image_cache.get(key) if key is not None else None
    world_source = "cold"
    pipeline: Optional[DetectionPipeline] = None
    controller = None
    runner = {
        "mass-unbind": campaign_mass_unbind,
        "shadow-probe": campaign_shadow_probe,
        "mass-rebind": campaign_mass_rebind,
    }.get(spec.campaign)
    if image is not None:
        # Warm start: restore the deployed world, then attach detection.
        # The pipeline sees campaign events live and back-fills history
        # via catch_up below — alerts are seq-deduplicated, so this is
        # equivalent to having streamed the whole run.
        fleet = FleetDeployment.from_image(image, observer=obs)
        world_source = "warm"
        world_seconds = time.perf_counter() - started
        if spec.detect:
            pipeline = DetectionPipeline()
            pipeline.attach(fleet.cloud)
        report = runner(
            fleet, max_probes=spec.max_probes, request_rate=spec.request_rate
        )
    else:
        fleet = FleetDeployment(
            spec.design,
            households=spec.households,
            seed=spec.seed,
            observer=obs,
            build=spec.build,
        )
        if spec.chaos is not None:
            controller = apply_chaos(fleet, spec.chaos)
        if spec.detect:
            pipeline = DetectionPipeline()
            pipeline.attach(fleet.cloud)
        if spec.campaign == "binding-dos":
            world_seconds = time.perf_counter() - started
            report = campaign_binding_dos(
                fleet, max_probes=spec.max_probes, request_rate=spec.request_rate
            )
        elif spec.campaign in _DEPLOYED_CAMPAIGNS:
            fleet.setup_all()
            fleet.run(spec.run_seconds)
            world_seconds = time.perf_counter() - started
            if key is not None:
                image_cache.put(key, fleet.capture_image())
            report = runner(
                fleet, max_probes=spec.max_probes, request_rate=spec.request_rate
            )
        else:
            raise ConfigurationError(f"unknown campaign {spec.campaign!r}")
    # Publish per-store size/churn gauges before snapshotting metrics so
    # the shard's state-layer numbers ride the normal merge path.
    fleet.cloud.emit_state_gauges()
    chaos_summary: Optional[Dict[str, Any]] = None
    if controller is not None:
        chaos_summary = controller.summary()
        chaos_summary["intensity"] = spec.chaos.intensity
        chaos_summary["resilience_enabled"] = spec.chaos.resilience
        chaos_summary["liveness"] = binding_liveness(fleet)
    detection_score: Optional[Dict[str, Any]] = None
    if pipeline is not None:
        # A chaos CloudRestart replaces fleet.cloud with the recovered
        # successor; catch_up re-reads whichever cloud finished the run
        # (seq-deduplicated, so unreplaced clouds are a no-op).
        pipeline.catch_up(fleet.cloud)
        detection_score = score_detection(
            fleet.cloud.forensics.events(), pipeline.alerts
        )
    return ShardResult(
        shard_index=spec.shard_index,
        seed=spec.seed,
        report=report,
        metrics=obs.metrics.snapshot(),
        obs_snapshot=snapshot(obs, max_spans=spec.snapshot_max_spans),
        audit_entries=len(fleet.cloud.audit),
        matches_audit=obs.matches_audit(fleet.cloud.audit),
        wall_seconds=time.perf_counter() - started,
        state_counts=fleet.cloud.state_counts(),
        chaos=chaos_summary,
        detection=detection_score,
        world_source=world_source,
        world_seconds=world_seconds,
        runtime={"authz_cache": fleet.cloud.authz_cache.stats()},
    )


@dataclass
class ShardedCampaignResult:
    """A merged sharded campaign: fleet-wide report plus provenance."""

    campaign: str
    vendor: str
    workers: int
    shards: int
    seed: int
    report: CampaignReport
    shard_results: List[ShardResult]
    metrics: MetricsRegistry
    snapshot: Dict[str, Any]
    wall_seconds: float
    details: List[str] = field(default_factory=list)
    #: :meth:`WorkerPool.stats` when the campaign ran through a
    #: persistent pool; ``None`` on spawn-per-shard and inline runs
    pool_stats: Optional[Dict[str, Any]] = None

    @property
    def audit_entries_total(self) -> int:
        """Sum of every shard's cloud audit-log length."""
        return sum(result.audit_entries for result in self.shard_results)

    @property
    def consistent(self) -> bool:
        """The sharded analogue of :meth:`Observability.matches_audit`.

        True iff every shard's counters matched its own audit log *and*
        the merged ``cloud.audit.entries`` total equals the sum of the
        shard audit-log lengths — i.e. no request was lost or double
        counted anywhere between the workers and the merge.
        """
        if not all(result.matches_audit for result in self.shard_results):
            return False
        merged_total = self.metrics.counter("cloud.audit.entries").total()
        return merged_total == self.audit_entries_total

    @property
    def chaotic(self) -> bool:
        """Whether any shard ran with chaos enabled."""
        return any(result.chaos is not None for result in self.shard_results)

    @property
    def liveness(self) -> Optional[Dict[str, float]]:
        """Fleet-wide binding liveness under chaos (``None`` when calm)."""
        per_shard = [
            result.chaos["liveness"]
            for result in self.shard_results
            if result.chaos is not None and "liveness" in result.chaos
        ]
        if not per_shard:
            return None
        return merge_liveness(per_shard)

    @property
    def state_counts(self) -> Dict[str, Dict[str, int]]:
        """Fleet-wide per-store ``{records, mutations}`` (summed shards)."""
        from repro.cloud.state.protocol import merge_state_counts

        return merge_state_counts(
            [result.state_counts for result in self.shard_results]
        )

    @property
    def detection(self) -> Optional[Dict[str, Any]]:
        """Fleet-wide detection score (``None`` when detection was off).

        Merged in shard order from the per-shard scores, so the result
        is bit-identical for any worker count over the same shards.
        """
        return merge_detection(
            [result.detection for result in self.shard_results]
        )

    @property
    def runtime_stats(self) -> Dict[str, Any]:
        """Execution-side statistics: authz-cache hit rates (+ pool).

        Summed over shards from each :attr:`ShardResult.runtime` plus
        the coordinator's pool stats when a pool ran the shards.  Part
        of the *runtime* report line only — deliberately excluded from
        merged campaign results and the default :meth:`to_dict`, so
        execution strategy never leaks into the bit-identical outputs.
        """
        authz = {"hits": 0, "misses": 0, "lookups": 0, "invalidations": 0}
        for result in self.shard_results:
            stats = result.runtime.get("authz_cache", {})
            for key in authz:
                authz[key] += stats.get(key, 0)
        authz["hit_rate"] = (
            authz["hits"] / authz["lookups"] if authz["lookups"] else 0.0
        )
        data: Dict[str, Any] = {"authz_cache": authz}
        if self.pool_stats is not None:
            stats = self.pool_stats
            data["pool"] = {
                "tasks": stats.get("tasks", 0),
                "world_seconds": sum(
                    r.world_seconds for r in self.shard_results
                ),
                "utilization": stats.get("utilization", 0.0),
                "respawns": stats.get("respawns", 0),
            }
        return data

    def to_dict(self, include_pool: bool = False) -> Dict[str, Any]:
        """JSON-able report dict (what the benchmarks/CLI JSON consume).

        ``include_pool`` adds pool statistics and per-shard world
        provenance (warm vs cold, world-prep seconds).  It defaults off
        so the dict stays bit-identical to pre-pool runs — pool
        execution is an *engine* concern and must never leak into the
        campaign results themselves.
        """
        data: Dict[str, Any] = {
            "campaign": self.campaign,
            "vendor": self.vendor,
            "workers": self.workers,
            "shards": self.shards,
            "seed": self.seed,
            "households": self.report.households,
            "ids_probed": self.report.ids_probed,
            "ids_hit": self.report.ids_hit,
            "victims_denied": self.report.victims_denied,
            "denial_rate": self.report.denial_rate,
            "modelled_seconds": self.report.modelled_seconds,
            "details": list(self.report.details),
            "audit_entries": self.audit_entries_total,
            "consistent": self.consistent,
            "state_counts": self.state_counts,
        }
        liveness = self.liveness
        if liveness is not None:
            data["liveness"] = liveness
        detection = self.detection
        if detection is not None:
            data["detection"] = detection
        if include_pool:
            if self.pool_stats is not None:
                data["pool"] = dict(self.pool_stats)
            data["runtime"] = self.runtime_stats
            data["shard_worlds"] = [
                {
                    "shard": result.shard_index,
                    "world_source": result.world_source,
                    "world_seconds": result.world_seconds,
                }
                for result in self.shard_results
            ]
        return data

    def render(self) -> str:
        """Multi-line summary: merged report, shard table, consistency."""
        lines = [self.report.render(), ""]
        lines.append(
            f"sharded execution: {self.shards} shard(s) across "
            f"{self.workers} worker(s), base seed {self.seed}"
        )
        if self.pool_stats is not None:
            stats = self.pool_stats
            lines.append(
                f"worker pool: start={stats['start_method']} "
                f"tasks={stats['tasks']} warm={stats['warm_starts']} "
                f"cold={stats['cold_builds']} respawns={stats['respawns']} "
                f"utilization={stats['utilization']:.0%}"
            )
        runtime = self.runtime_stats
        authz = runtime["authz_cache"]
        runtime_line = (
            f"runtime: authz-cache {authz['hits']}/{authz['lookups']} hits "
            f"({authz['hit_rate']:.0%})"
        )
        pool_runtime = runtime.get("pool")
        if pool_runtime is not None:
            runtime_line += (
                f" · pool tasks={pool_runtime['tasks']} "
                f"world={pool_runtime['world_seconds']:.2f}s "
                f"utilization={pool_runtime['utilization']:.0%} "
                f"respawns={pool_runtime['respawns']}"
            )
        lines.append(runtime_line)
        for result in self.shard_results:
            lines.append(
                f"  shard {result.shard_index}: seed={result.seed} "
                f"households={result.report.households} "
                f"probes={result.report.ids_probed} "
                f"denied={result.report.victims_denied} "
                f"audit={result.audit_entries} "
                f"wall={result.wall_seconds:.2f}s"
            )
        lines.append(
            "merged metrics vs shard audits: "
            f"{'consistent' if self.consistent else 'MISMATCH'} "
            f"({self.audit_entries_total} audit entries fleet-wide)"
        )
        liveness = self.liveness
        if liveness is not None:
            first = next(
                r.chaos for r in self.shard_results if r.chaos is not None
            )
            dropped = sum(
                r.chaos["injector"]["dropped"]
                for r in self.shard_results
                if r.chaos is not None
            )
            restarts = sum(
                r.chaos.get("restarts", 0)
                for r in self.shard_results
                if r.chaos is not None
            )
            lines.append(
                f"chaos: plan={first['plan']} "
                f"intensity={first.get('intensity', 1.0):g} "
                f"dropped={dropped} restarts={restarts}"
            )
            lines.append(
                f"binding liveness: bound {liveness['bound']}/"
                f"{liveness['households']} ({liveness['bound_fraction']:.0%})  "
                f"online {liveness['online']}/{liveness['households']} "
                f"({liveness['online_fraction']:.0%})"
            )
        state = self.state_counts
        if state:
            lines.append(
                "cloud state (records/mutations per store): "
                + "  ".join(
                    f"{name}={counts.get('records', 0)}/{counts.get('mutations', 0)}"
                    for name, counts in sorted(state.items())
                )
            )
        detection = self.detection
        if detection is not None:
            ttd = detection["time_to_detect"]
            lines.append(
                f"detection: precision={detection['precision']:.3f} "
                f"recall={detection['recall']:.3f} "
                f"fp-rate={detection['false_positive_rate']:.4f} "
                f"time-to-detect="
                + (f"{ttd:.3f}s" if ttd is not None else "undetected")
                + f" ({detection['alerts']} alerts over {detection['events']} events)"
            )
        return "\n".join(lines)


def _pool_context(mp_start: Optional[str]) -> multiprocessing.context.BaseContext:
    """The multiprocessing context to fan out with.

    Prefers ``fork`` (cheap worker start; available on POSIX) and falls
    back to ``spawn`` — :func:`run_shard` is spawn-safe either way.
    """
    methods = multiprocessing.get_all_start_methods()
    if mp_start is None:
        mp_start = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(mp_start)


def build_shard_specs(
    design: VendorDesign,
    campaign: str = "binding-dos",
    households: int = 100,
    max_probes: int = 256,
    shards: int = 1,
    seed: int = 0,
    request_rate: float = 3000.0,
    build: str = "replay",
    run_seconds: float = 12.0,
    trace_messages: bool = True,
    snapshot_max_spans: Optional[int] = None,
    chaos: Optional[ChaosSpec] = None,
    detect: bool = False,
) -> List[ShardSpec]:
    """Partition one campaign into per-shard specs.

    Households and the probe budget are split with
    :func:`~repro.parallel.shards.partition` (parts sum back to the
    serial totals) and each shard's seed is derived from
    ``(seed, shard_index)``.
    """
    if campaign not in CAMPAIGNS:
        raise ConfigurationError(f"unknown campaign {campaign!r}")
    if campaign == "binding-dos" and build == "clone":
        raise ConfigurationError(
            "binding-dos attacks factory-fresh fleets; clone-built fleets "
            "are already bound (use build='replay')"
        )
    shards = max(1, min(shards, households))
    household_parts = partition(households, shards)
    probe_parts = partition(max_probes, shards)
    return [
        ShardSpec(
            shard_index=index,
            shards=shards,
            design=design,
            campaign=campaign,
            households=household_parts[index],
            max_probes=probe_parts[index],
            seed=derive_shard_seed(seed, index),
            request_rate=request_rate,
            build=build,
            run_seconds=run_seconds,
            trace_messages=trace_messages,
            snapshot_max_spans=snapshot_max_spans,
            chaos=chaos,
            detect=detect,
        )
        for index in range(shards)
    ]


def run_campaign(
    design: VendorDesign,
    campaign: str = "binding-dos",
    households: int = 100,
    max_probes: int = 256,
    workers: int = 1,
    seed: int = 0,
    shards: Optional[int] = None,
    request_rate: float = 3000.0,
    build: str = "replay",
    run_seconds: float = 12.0,
    trace_messages: bool = True,
    snapshot_max_spans: Optional[int] = None,
    mp_start: Optional[str] = None,
    chaos: Optional[ChaosSpec] = None,
    detect: bool = False,
    pool: bool = False,
    warm_start: bool = True,
    worker_pool: Optional["WorkerPool"] = None,
    image_cache: Optional[WorldImageCache] = None,
) -> ShardedCampaignResult:
    """Run one fleet campaign sharded across *workers* processes.

    With ``workers=1`` (one shard) everything runs in-process and the
    result bit-matches the serial ``campaign_*`` path for the same
    seed.  With more workers, *shards* (default: one per worker) shards
    are mapped over worker processes and merged in shard order:
    reports via :meth:`CampaignReport.merge`, metrics into one
    registry, observability snapshots via
    :func:`~repro.obs.export.merge_snapshots` with shard provenance.

    Three execution strategies, all producing bit-identical campaign
    results for the same specs:

    * default — spawn-per-shard via a throwaway ``multiprocessing``
      pool (``mp_start`` picks the start method);
    * ``pool=True`` — a :class:`~repro.parallel.pool.WorkerPool` of
      persistent workers with heartbeat, per-task timeout and
      crash-respawn; ``warm_start`` (default on) lets workers restore
      cached world images instead of rebuilding deployed fleets;
    * ``worker_pool=...`` — reuse a caller-owned started pool across
      campaigns, amortizing worker start *and* world builds over a
      whole sweep (``pool``/``warm_start``/``mp_start`` are ignored).

    ``image_cache`` serves the in-process paths (``workers=1`` or a
    single shard): sharing one cache across calls warm-starts repeat
    campaigns without any worker processes at all.
    """
    if workers < 1:
        raise ConfigurationError("need at least one worker")
    specs = build_shard_specs(
        design, campaign=campaign, households=households, max_probes=max_probes,
        shards=shards if shards is not None else workers, seed=seed,
        request_rate=request_rate, build=build, run_seconds=run_seconds,
        trace_messages=trace_messages, snapshot_max_spans=snapshot_max_spans,
        chaos=chaos, detect=detect,
    )
    started = time.perf_counter()
    pool_stats: Optional[Dict[str, Any]] = None
    if worker_pool is not None:
        results = worker_pool.run(specs)
        pool_stats = worker_pool.stats()
    elif workers == 1 or len(specs) == 1:
        results = [run_shard(spec, image_cache=image_cache) for spec in specs]
    elif pool:
        from repro.parallel.pool import WorkerPool

        with WorkerPool(
            workers=min(workers, len(specs)),
            mp_start=mp_start,
            warm_start=warm_start,
        ) as owned_pool:
            results = owned_pool.run(specs)
            pool_stats = owned_pool.stats()
    else:
        context = _pool_context(mp_start)
        with context.Pool(processes=min(workers, len(specs))) as mp_pool:
            results = mp_pool.map(run_shard, specs)
    wall = time.perf_counter() - started

    merged_report = CampaignReport.merge([result.report for result in results])
    registry = MetricsRegistry()
    for result in results:
        registry.merge_snapshot(result.metrics)
    merged_snapshot = merge_snapshots(
        [result.obs_snapshot for result in results],
        shard_meta=[{"seed": result.seed} for result in results],
        max_spans=snapshot_max_spans,
    )
    return ShardedCampaignResult(
        campaign=campaign,
        vendor=design.name,
        workers=workers,
        shards=len(specs),
        seed=seed,
        report=merged_report,
        shard_results=results,
        metrics=registry,
        snapshot=merged_snapshot,
        wall_seconds=wall,
        pool_stats=pool_stats,
    )
