"""Sharded parallel execution of fleet campaigns.

Partitions a fleet campaign into independent shards, fans the shards
out across worker processes, and merges the per-shard reports, metrics
and observability snapshots deterministically.  See
``docs/parallelism.md`` for the shard model and its guarantees.
"""

from repro.parallel.engine import (
    CAMPAIGNS,
    ShardedCampaignResult,
    ShardResult,
    ShardSpec,
    build_shard_specs,
    run_campaign,
    run_shard,
)
from repro.parallel.shards import derive_shard_seed, partition

__all__ = [
    "CAMPAIGNS",
    "ShardSpec",
    "ShardResult",
    "ShardedCampaignResult",
    "build_shard_specs",
    "derive_shard_seed",
    "partition",
    "run_campaign",
    "run_shard",
]
