"""Sharded parallel execution of fleet campaigns.

Partitions a fleet campaign into independent shards, fans the shards
out across worker processes, and merges the per-shard reports, metrics
and observability snapshots deterministically.  Shards run either
spawn-per-shard or through a persistent :class:`WorkerPool` whose
workers warm-start deployed worlds from cached images.  See
``docs/parallelism.md`` for the shard model and its guarantees, and
``docs/performance.md`` for the pool/warm-start cost model.
"""

from repro.parallel.engine import (
    CAMPAIGNS,
    ShardedCampaignResult,
    ShardResult,
    ShardSpec,
    build_shard_specs,
    run_campaign,
    run_shard,
)
from repro.parallel.pool import PoolError, WorkerPool, WorkerTaskError
from repro.parallel.protocol import (
    DEPLOYED_CAMPAIGNS,
    WorldImageCache,
    world_key,
)
from repro.parallel.shards import derive_shard_seed, partition

__all__ = [
    "CAMPAIGNS",
    "DEPLOYED_CAMPAIGNS",
    "PoolError",
    "ShardSpec",
    "ShardResult",
    "ShardedCampaignResult",
    "WorkerPool",
    "WorkerTaskError",
    "WorldImageCache",
    "build_shard_specs",
    "derive_shard_seed",
    "partition",
    "run_campaign",
    "run_shard",
    "world_key",
]
