"""Shard arithmetic: seed derivation and deterministic partitioning.

A sharded campaign splits a fleet of N households (and its probe
budget) into S independent shards.  Two rules make the split
reproducible and serial-comparable:

* **Seed derivation** — shard *i* seeds its world with
  :func:`derive_shard_seed`\\ ``(seed, i)``.  Shard 0 keeps the base
  seed unchanged, so a one-shard run builds *exactly* the world the
  serial path builds and bit-matches its results; later shards mix the
  index in via CRC32 (the same construction
  :meth:`~repro.sim.rand.DeterministicRandom.fork` uses), so shards
  never share randomness and the derivation survives Python's
  per-process hash randomisation.
* **Partitioning** — :func:`partition` splits an integer total into S
  near-equal parts, the remainder spread over the leading shards.
  Applied to both the household count and the probe budget, the parts
  always sum back to the serial totals.
"""

from __future__ import annotations

import zlib
from typing import List


def derive_shard_seed(seed: int, shard_index: int) -> int:
    """The world seed for shard *shard_index* of a run seeded *seed*.

    Shard 0 returns *seed* unchanged (bit-compatibility with the serial
    path); every other shard gets a stable CRC32 mix of the pair.
    """
    if shard_index == 0:
        return seed
    return zlib.crc32(f"{seed}/shard-{shard_index}".encode("utf-8"))


def partition(total: int, shards: int) -> List[int]:
    """Split *total* into *shards* deterministic near-equal parts.

    The first ``total % shards`` parts are one larger; parts sum to
    *total* exactly.  ``partition(400, 4) == [100, 100, 100, 100]``.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    base, remainder = divmod(total, shards)
    return [base + (1 if i < remainder else 0) for i in range(shards)]
