"""The simulation environment: clock + scheduler + RNG in one handle.

Every simulated component (cloud, device, app, attacker, network)
receives the same :class:`Environment`, so the whole world shares one
timeline and one seeded randomness stream.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.observer import NULL_OBSERVER, Observer
from repro.sim.clock import VirtualClock
from repro.sim.rand import DeterministicRandom
from repro.sim.scheduler import EventHandle, Scheduler


class Environment:
    """Shared simulation context.

    Pass an :class:`~repro.obs.runtime.Observability` as *observer* to
    instrument every layer built on this environment; the default is the
    shared no-op :data:`~repro.obs.observer.NULL_OBSERVER`, which keeps
    uninstrumented runs essentially free.
    """

    def __init__(
        self,
        seed: int = 0,
        start_time: float = 0.0,
        observer: Optional[Observer] = None,
    ) -> None:
        self.clock = VirtualClock(start_time)
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.observer.attach(self)
        self.scheduler = Scheduler(self.clock, observer=self.observer)
        self.rng = DeterministicRandom(seed)

    # -- time ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now

    def run_for(self, duration: float) -> int:
        """Advance the world by *duration* virtual seconds."""
        return self.scheduler.run_for(duration)

    def run_until(self, time: float) -> int:
        """Advance the world to absolute *time*."""
        return self.scheduler.run_until(time)

    # -- scheduling shortcuts ---------------------------------------------

    def after(self, delay: float, callback) -> EventHandle:
        return self.scheduler.after(delay, callback)

    def every(self, interval: float, callback, start_delay: Optional[float] = None) -> EventHandle:
        return self.scheduler.every(interval, callback, start_delay=start_delay)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Environment(t={self.now:.3f}, pending={len(self.scheduler)})"
