"""The simulation environment: clock + scheduler + RNG in one handle.

Every simulated component (cloud, device, app, attacker, network)
receives the same :class:`Environment`, so the whole world shares one
timeline and one seeded randomness stream.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.clock import VirtualClock
from repro.sim.rand import DeterministicRandom
from repro.sim.scheduler import EventHandle, Scheduler


class Environment:
    """Shared simulation context."""

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self.clock = VirtualClock(start_time)
        self.scheduler = Scheduler(self.clock)
        self.rng = DeterministicRandom(seed)

    # -- time ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now

    def run_for(self, duration: float) -> int:
        """Advance the world by *duration* virtual seconds."""
        return self.scheduler.run_for(duration)

    def run_until(self, time: float) -> int:
        """Advance the world to absolute *time*."""
        return self.scheduler.run_until(time)

    # -- scheduling shortcuts ---------------------------------------------

    def after(self, delay: float, callback) -> EventHandle:
        return self.scheduler.after(delay, callback)

    def every(self, interval: float, callback, start_delay: Optional[float] = None) -> EventHandle:
        return self.scheduler.every(interval, callback, start_delay=start_delay)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Environment(t={self.now:.3f}, pending={len(self.scheduler)})"
