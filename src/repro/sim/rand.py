"""Seeded randomness for the simulation.

A single :class:`DeterministicRandom` instance is threaded through the
environment so that token generation, MAC assignment, telemetry noise
and attack sampling are all reproducible from one seed.  Tokens are
generated from the seeded stream — they model *unguessable* secrets, not
cryptographic ones (see DESIGN.md §7).
"""

from __future__ import annotations

import random
import string
import zlib
from typing import Sequence, TypeVar

T = TypeVar("T")

_HEX = "0123456789abcdef"
_ALNUM = string.ascii_lowercase + string.digits


class DeterministicRandom:
    """Thin wrapper over :class:`random.Random` with domain helpers."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    # -- generic ---------------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def choice(self, options: Sequence[T]) -> T:
        return self._rng.choice(options)

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    # -- identifiers -----------------------------------------------------

    def hex_string(self, length: int) -> str:
        """A lowercase hex string of *length* characters."""
        return "".join(self._rng.choice(_HEX) for _ in range(length))

    def token(self, length: int = 32) -> str:
        """An opaque session/binding token (alphanumeric)."""
        return "".join(self._rng.choice(_ALNUM) for _ in range(length))

    def mac_suffix(self) -> str:
        """The 3 device-specific bytes of a MAC address, as ``xx:xx:xx``."""
        return ":".join(self.hex_string(2) for _ in range(3))

    def serial_digits(self, digits: int) -> str:
        """A numeric serial of exactly *digits* digits (may lead with 0)."""
        return "".join(self._rng.choice(string.digits) for _ in range(digits))

    # -- state capture ---------------------------------------------------

    def getstate(self):
        """The stream's full state (picklable; pairs with :meth:`setstate`).

        Lets a warm-started world resume the exact stream position a
        captured world had reached, so post-restore draws bit-match the
        original run's.
        """
        return (self.seed, self._rng.getstate())

    def setstate(self, state) -> None:
        """Restore a state captured by :meth:`getstate`.

        The derivation seed is restored too, so :meth:`fork` labels keep
        producing the same child streams they would have originally.
        """
        seed, rng_state = state
        self.seed = seed
        self._rng.setstate(rng_state)

    def fork(self, label: str) -> "DeterministicRandom":
        """A derived, independent stream (stable for a given seed+label).

        Uses CRC32 rather than ``hash()`` so the derivation survives
        Python's per-process hash randomization.
        """
        derived = zlib.crc32(f"{self.seed}/{label}".encode("utf-8"))
        return DeterministicRandom(derived)
