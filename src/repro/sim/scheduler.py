"""Deterministic discrete-event scheduler.

A minimal priority-queue event loop: callbacks are executed in
timestamp order, ties broken by insertion order, so every run of a
scenario is bit-for-bit reproducible.  Periodic events (device
heartbeats, the cloud's liveness sweep) are built from one-shot events
that re-schedule themselves.

Cancelled entries are lazily discarded when popped, but a long campaign
that cancels far more than it fires (e.g. a DoS sweep re-arming timers)
would otherwise grow the heap without bound — so whenever cancelled
entries exceed half the queue the heap is *compacted* in place.
Compaction never changes execution order: entries are totally ordered
by ``(time, seq)``, so re-heapifying the survivors pops identically.

The scheduler reports batch sizes, queue depth and compactions to an
:class:`~repro.obs.observer.Observer`; the default
:data:`~repro.obs.observer.NULL_OBSERVER` makes those calls no-ops.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.errors import SimulationError
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.sim.clock import VirtualClock

Callback = Callable[[], None]

#: Queues smaller than this are never compacted (not worth the sweep).
COMPACT_MIN_QUEUE = 64


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    in_heap: bool = field(default=True, compare=False)


class EventHandle:
    """Handle to a scheduled event; allows cancellation."""

    def __init__(self, entry: _Entry, scheduler: Optional["Scheduler"] = None) -> None:
        self._entry = entry
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        entry = self._entry
        if entry.cancelled:
            return
        entry.cancelled = True
        if self._scheduler is not None and entry.in_heap:
            self._scheduler._note_cancel()

    @property
    def time(self) -> float:
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled


class RepeatingHandle(EventHandle):
    """Handle to a periodic chain; always tracks the *pending* firing.

    :meth:`Scheduler.every` chains one-shot events, so a plain
    :class:`EventHandle` to the first event goes stale as soon as it
    fires — its ``time`` freezes and ``cancel`` stops nothing.  This
    handle reads through to whichever entry is currently scheduled:
    ``time`` is the chain's next firing (what the warm-start capture
    records as the phase to re-arm with) and ``cancel`` both cancels
    that entry and stops the chain from re-arming.
    """

    def __init__(self, state: dict) -> None:
        self._state = state

    def cancel(self) -> None:
        """Stop the chain: cancel the pending firing, never re-arm."""
        self._state["stopped"] = True
        self._state["handle"].cancel()

    @property
    def time(self) -> float:
        return self._state["handle"].time

    @property
    def cancelled(self) -> bool:
        return self._state["stopped"]


class Scheduler:
    """Priority-queue event loop over a :class:`VirtualClock`."""

    def __init__(
        self,
        clock: Optional[VirtualClock] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._queue: List[_Entry] = []
        self._counter = itertools.count()
        self._cancelled = 0
        #: how many times the heap has been compacted (exposed as a gauge)
        self.compactions = 0
        self._observer = observer if observer is not None else NULL_OBSERVER

    def __len__(self) -> int:
        return len(self._queue) - self._cancelled

    def at(self, time: float, callback: Callback) -> EventHandle:
        """Schedule *callback* at absolute simulation *time*."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule in the past (t={time} < now={self.clock.now})"
            )
        entry = _Entry(time, next(self._counter), callback)
        heapq.heappush(self._queue, entry)
        return EventHandle(entry, self)

    def after(self, delay: float, callback: Callback) -> EventHandle:
        """Schedule *callback* after *delay* virtual seconds."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self.at(self.clock.now + delay, callback)

    def every(self, interval: float, callback: Callback, start_delay: Optional[float] = None) -> EventHandle:
        """Schedule *callback* periodically; returns the chain's handle.

        The returned :class:`RepeatingHandle` follows the chain: its
        ``time`` is always the next pending firing and cancelling it
        stops the chain for good.  ``start_delay`` offsets the first
        firing from now (default: one full *interval*) — the warm-start
        restore path uses it to re-arm a captured chain at exactly the
        phase it had.
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")
        first_delay = interval if start_delay is None else start_delay

        state: dict = {"handle": None, "stopped": False}

        def tick() -> None:
            callback()
            if not state["stopped"]:
                state["handle"] = self.after(interval, tick)

        state["handle"] = self.after(first_delay, tick)
        return RepeatingHandle(state)

    # -- cancelled-entry bookkeeping ------------------------------------------

    def _note_cancel(self) -> None:
        """Count one cancellation; compact when the heap is mostly dead."""
        self._cancelled += 1
        if (
            len(self._queue) >= COMPACT_MIN_QUEUE
            and self._cancelled * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify the survivors."""
        live = [entry for entry in self._queue if not entry.cancelled]
        removed = len(self._queue) - len(live)
        for entry in self._queue:
            if entry.cancelled:
                entry.in_heap = False
        heapq.heapify(live)
        self._queue = live
        self._cancelled = 0
        self.compactions += 1
        self._observer.on_compaction(removed, self.compactions)

    # -- execution -------------------------------------------------------------

    def step(self) -> bool:
        """Run the single earliest pending event; return False if none."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            entry.in_heap = False
            if entry.cancelled:
                self._cancelled -= 1
                continue
            self.clock.advance_to(entry.time)
            entry.callback()
            return True
        return False

    def _pending_at_or_before(self, time: float) -> bool:
        """True iff a live (uncancelled) event is due at or before *time*."""
        while self._queue and self._queue[0].cancelled:
            entry = heapq.heappop(self._queue)
            entry.in_heap = False
            self._cancelled -= 1
        return bool(self._queue) and self._queue[0].time <= time

    def run_until(self, time: float, max_events: int = 1_000_000) -> int:
        """Run all events with timestamp <= *time*; returns events run.

        The clock ends exactly at *time* even if the queue drains early.
        Raises only when the event budget is exhausted *and* a live event
        at or before *time* is still pending (a genuine livelock); a run
        that happens to execute exactly ``max_events`` events and then
        drains, or leaves only events past *time*, completes normally.
        """
        executed = 0
        with self._observer.profile("scheduler.run"):
            while self._queue and executed < max_events:
                entry = self._queue[0]
                if entry.time > time:
                    break
                heapq.heappop(self._queue)
                entry.in_heap = False
                if entry.cancelled:
                    self._cancelled -= 1
                    continue
                self.clock.advance_to(entry.time)
                entry.callback()
                executed += 1
        self._observer.on_scheduler_flush(executed, len(self))
        if executed >= max_events and self._pending_at_or_before(time):
            raise SimulationError("event budget exhausted; livelock suspected")
        if time > self.clock.now:
            self.clock.advance_to(time)
        return executed

    def run_for(self, duration: float, max_events: int = 1_000_000) -> int:
        """Run all events within the next *duration* virtual seconds."""
        return self.run_until(self.clock.now + duration, max_events=max_events)
