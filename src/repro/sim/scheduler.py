"""Deterministic discrete-event scheduler.

A minimal priority-queue event loop: callbacks are executed in
timestamp order, ties broken by insertion order, so every run of a
scenario is bit-for-bit reproducible.  Periodic events (device
heartbeats, the cloud's liveness sweep) are built from one-shot events
that re-schedule themselves.

The heap stores ``(time, seq, entry)`` tuples so that ordering is
decided by C-level tuple comparison — the entry itself is a plain
``__slots__`` record and never participates in comparisons.  The
``run_until`` inner loop pops all live entries that share a timestamp
as one batch, advancing the clock once per distinct timestamp instead
of once per event.

Cancelled entries are lazily discarded when popped, but a long campaign
that cancels far more than it fires (e.g. a DoS sweep re-arming timers)
would otherwise grow the heap without bound — so whenever cancelled
entries exceed half the queue the heap is *compacted* in place.
Compaction never changes execution order: heap items are totally
ordered by ``(time, seq)``, so re-heapifying the survivors pops
identically.  Compaction mutates the queue list in place (rather than
rebinding it) so the hot loop's local alias stays valid even when a
callback cancels enough events to trigger a compaction mid-run.

The scheduler reports batch sizes, queue depth and compactions to an
:class:`~repro.obs.observer.Observer`; when the installed observer is
:data:`~repro.obs.observer.NULL_OBSERVER` the hot path skips the
``profile()``/``on_scheduler_flush`` calls entirely via a precomputed
boolean instead of paying a no-op call per flush.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.core.errors import SimulationError
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.sim.clock import VirtualClock

Callback = Callable[[], None]

#: Queues smaller than this are never compacted (not worth the sweep).
COMPACT_MIN_QUEUE = 64


class _Entry:
    """One scheduled callback; ordering lives in the heap tuple, not here."""

    __slots__ = ("time", "seq", "callback", "cancelled", "in_heap")

    def __init__(self, time: float, seq: int, callback: Callback) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.in_heap = True


#: Heap item: ``(time, seq, entry)`` — compared left-to-right by C code;
#: ``seq`` is unique so the entry itself is never compared.
_HeapItem = Tuple[float, int, _Entry]


class EventHandle:
    """Handle to a scheduled event; allows cancellation."""

    __slots__ = ("_entry", "_scheduler")

    def __init__(self, entry: _Entry, scheduler: Optional["Scheduler"] = None) -> None:
        self._entry = entry
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        entry = self._entry
        if entry.cancelled:
            return
        entry.cancelled = True
        if self._scheduler is not None and entry.in_heap:
            self._scheduler._note_cancel()

    @property
    def time(self) -> float:
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled


class RepeatingHandle(EventHandle):
    """Handle to a periodic chain; always tracks the *pending* firing.

    :meth:`Scheduler.every` chains one-shot events, so a plain
    :class:`EventHandle` to the first event goes stale as soon as it
    fires — its ``time`` freezes and ``cancel`` stops nothing.  This
    handle reads through to whichever entry is currently scheduled:
    ``time`` is the chain's next firing (what the warm-start capture
    records as the phase to re-arm with) and ``cancel`` both cancels
    that entry and stops the chain from re-arming.
    """

    __slots__ = ("_state",)

    def __init__(self, state: dict) -> None:
        self._state = state

    def cancel(self) -> None:
        """Stop the chain: cancel the pending firing, never re-arm."""
        self._state["stopped"] = True
        self._state["handle"].cancel()

    @property
    def time(self) -> float:
        return self._state["handle"].time

    @property
    def cancelled(self) -> bool:
        return self._state["stopped"]


class Scheduler:
    """Priority-queue event loop over a :class:`VirtualClock`."""

    def __init__(
        self,
        clock: Optional[VirtualClock] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._queue: List[_HeapItem] = []
        self._counter = itertools.count()
        self._cancelled = 0
        #: how many times the heap has been compacted (exposed as a gauge)
        self.compactions = 0
        self._observer = observer if observer is not None else NULL_OBSERVER
        self._observed = self._observer is not NULL_OBSERVER

    def __len__(self) -> int:
        return len(self._queue) - self._cancelled

    def at(self, time: float, callback: Callback) -> EventHandle:
        """Schedule *callback* at absolute simulation *time*."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule in the past (t={time} < now={self.clock.now})"
            )
        entry = _Entry(time, next(self._counter), callback)
        heapq.heappush(self._queue, (entry.time, entry.seq, entry))
        return EventHandle(entry, self)

    def after(self, delay: float, callback: Callback) -> EventHandle:
        """Schedule *callback* after *delay* virtual seconds."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self.at(self.clock.now + delay, callback)

    def every(self, interval: float, callback: Callback, start_delay: Optional[float] = None) -> "RepeatingHandle":
        """Schedule *callback* periodically; returns the chain's handle.

        The returned :class:`RepeatingHandle` follows the chain: its
        ``time`` is always the next pending firing and cancelling it
        stops the chain for good.  ``start_delay`` offsets the first
        firing from now (default: one full *interval*) — the warm-start
        restore path uses it to re-arm a captured chain at exactly the
        phase it had.
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")
        first_delay = interval if start_delay is None else start_delay

        state: dict = {"handle": None, "stopped": False}

        def tick() -> None:
            callback()
            if not state["stopped"]:
                state["handle"] = self.after(interval, tick)

        state["handle"] = self.after(first_delay, tick)
        return RepeatingHandle(state)

    # -- cancelled-entry bookkeeping ------------------------------------------

    def _note_cancel(self) -> None:
        """Count one cancellation; compact when the heap is mostly dead."""
        self._cancelled += 1
        if (
            len(self._queue) >= COMPACT_MIN_QUEUE
            and self._cancelled * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify the survivors in place."""
        queue = self._queue
        live = [item for item in queue if not item[2].cancelled]
        removed = len(queue) - len(live)
        for item in queue:
            entry = item[2]
            if entry.cancelled:
                entry.in_heap = False
        heapq.heapify(live)
        # In-place so hot-loop aliases of the queue list stay valid.
        queue[:] = live
        self._cancelled = 0
        self.compactions += 1
        self._observer.on_compaction(removed, self.compactions)

    # -- execution -------------------------------------------------------------

    def step(self) -> bool:
        """Run the single earliest pending event; return False if none."""
        while self._queue:
            entry = heapq.heappop(self._queue)[2]
            entry.in_heap = False
            if entry.cancelled:
                self._cancelled -= 1
                continue
            self.clock.advance_to(entry.time)
            entry.callback()
            return True
        return False

    def _pending_at_or_before(self, time: float) -> bool:
        """True iff a live (uncancelled) event is due at or before *time*."""
        while self._queue and self._queue[0][2].cancelled:
            entry = heapq.heappop(self._queue)[2]
            entry.in_heap = False
            self._cancelled -= 1
        return bool(self._queue) and self._queue[0][0] <= time

    def run_until(self, time: float, max_events: int = 1_000_000) -> int:
        """Run all events with timestamp <= *time*; returns events run.

        The clock ends exactly at *time* even if the queue drains early.
        Raises only when the event budget is exhausted *and* a live event
        at or before *time* is still pending (a genuine livelock); a run
        that happens to execute exactly ``max_events`` events and then
        drains, or leaves only events past *time*, completes normally.

        Entries sharing a timestamp are popped as one batch so the clock
        advances once per distinct timestamp.  A callback that cancels a
        later event in the same batch still wins: cancellation is
        re-checked immediately before each callback runs.  A callback
        that *schedules* at the current timestamp gets a larger ``seq``,
        lands in the next batch, and runs after the current one — the
        same order the one-at-a-time loop produced.
        """
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        advance = self.clock.advance_to
        observed = self._observed
        cm = self._observer.profile("scheduler.run") if observed else None
        if cm is not None:
            cm.__enter__()
        try:
            while queue and executed < max_events:
                when = queue[0][0]
                if when > time:
                    break
                # Pop every entry sharing this timestamp (within budget).
                batch: List[_Entry] = []
                room = max_events - executed
                while queue and queue[0][0] == when and len(batch) < room:
                    entry = pop(queue)[2]
                    entry.in_heap = False
                    if entry.cancelled:
                        self._cancelled -= 1
                    else:
                        batch.append(entry)
                if not batch:
                    continue
                advance(when)
                for entry in batch:
                    if entry.cancelled:  # cancelled by an earlier callback
                        continue
                    entry.callback()
                    executed += 1
        finally:
            if cm is not None:
                cm.__exit__(None, None, None)
        if observed:
            self._observer.on_scheduler_flush(executed, len(self))
        if executed >= max_events and self._pending_at_or_before(time):
            raise SimulationError("event budget exhausted; livelock suspected")
        if time > self.clock.now:
            self.clock.advance_to(time)
        return executed

    def run_for(self, duration: float, max_events: int = 1_000_000) -> int:
        """Run all events within the next *duration* virtual seconds."""
        return self.run_until(self.clock.now + duration, max_events=max_events)
