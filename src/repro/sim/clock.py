"""Virtual time for the discrete-event simulation.

All timeouts in the reproduction (heartbeat intervals, the cloud's
offline detection, Philips Hue's 30-second button window) are expressed
in virtual seconds; nothing in the library reads wall-clock time, which
keeps every experiment deterministic and instantaneous.
"""

from __future__ import annotations

from repro.core.errors import SimulationError


class VirtualClock:
    """A monotonically advancing simulated clock."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError("clock cannot start before t=0")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in virtual seconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Jump the clock forward to *time* (never backwards)."""
        if time < self._now:
            raise SimulationError(
                f"time cannot move backwards ({time} < {self._now})"
            )
        self._now = float(time)

    def advance_by(self, delta: float) -> None:
        """Advance the clock by *delta* seconds."""
        if delta < 0:
            raise SimulationError("cannot advance by a negative delta")
        self._now += float(delta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(t={self._now:.3f})"
