"""Simulation kernel: virtual clock, event scheduler, seeded randomness."""

from repro.sim.clock import VirtualClock
from repro.sim.environment import Environment
from repro.sim.rand import DeterministicRandom
from repro.sim.scheduler import EventHandle, RepeatingHandle, Scheduler

__all__ = [
    "DeterministicRandom",
    "Environment",
    "EventHandle",
    "RepeatingHandle",
    "Scheduler",
    "VirtualClock",
]
