"""Smart bulbs (devices #7, #8)."""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.device.base import DeviceFirmware


class SmartBulb(DeviceFirmware):
    """A colour-tunable Wi-Fi bulb."""

    model = "smart-bulb"
    firmware_version = "3.1.4"

    def initial_state(self) -> Dict[str, Any]:
        return {"on": False, "brightness": 100, "color_temp_k": 2700}

    def read_telemetry(self) -> Dict[str, Any]:
        return {
            "on": self.state["on"],
            "brightness": self.state["brightness"],
        }

    def apply_command(self, command: str, arguments: Mapping[str, Any]) -> None:
        if command == "brightness":
            level = int(arguments.get("level", 100))
            self.state["brightness"] = max(0, min(100, level))
            self.state["on"] = self.state["brightness"] > 0
        elif command == "color_temp":
            kelvin = int(arguments.get("kelvin", 2700))
            self.state["color_temp_k"] = max(1500, min(6500, kelvin))
        else:
            super().apply_command(command, arguments)


class ButtonBulbBridge(SmartBulb):
    """Device #7's bridge: binding needs a physical button press.

    The bulb itself talks Zigbee to the bridge; the reproduction models
    the IP-facing bridge, which is the party in the remote binding.
    """

    model = "bulb-bridge"
    firmware_version = "1.29.0"
