"""Stand-alone sensor devices: fire alarm and temperature sensor.

These are the paper's cascade-effect examples (Section V-B): a forged
fire-alarm reading annoys the user; a forged temperature reading flips
an IFTTT-style rule that drives the air conditioning.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.device.base import DeviceFirmware
from repro.device.peripherals import SmokeDetector, Thermometer


class FireAlarm(DeviceFirmware):
    """A smoke alarm reporting concentration and alarm state."""

    model = "fire-alarm"
    firmware_version = "1.2.2"

    def initial_state(self) -> Dict[str, Any]:
        self._detector = SmokeDetector(self.env.rng.fork(f"smoke-{self.device_id}"))
        return {"on": True, "alarming": False}

    def read_telemetry(self) -> Dict[str, Any]:
        """Smoke concentration plus the alarm flag."""
        reading = self._detector.read()
        self.state["alarming"] = self._detector.is_alarm(reading)
        return {"smoke_ppm": reading, "alarm": self.state["alarming"]}

    def apply_command(self, command: str, arguments: Mapping[str, Any]) -> None:
        if command == "silence":
            self.state["alarming"] = False
        else:
            super().apply_command(command, arguments)


class TemperatureSensor(DeviceFirmware):
    """An ambient temperature sensor (drives rule-based automations)."""

    model = "temp-sensor"
    firmware_version = "1.0.9"

    def initial_state(self) -> Dict[str, Any]:
        self._thermo = Thermometer(self.env.rng.fork(f"thermo-{self.device_id}"))
        return {"on": True}

    def read_telemetry(self) -> Dict[str, Any]:
        return {"temperature_c": self._thermo.read(self.env.now)}
