"""Firmware images and what an analyst can learn from them.

The paper could only forge *device-side* messages for the 3 of 10
vendors whose firmware images were downloadable (Section VI-A); the
other cells of Table III's A1 column are "O — unable to confirm".
:class:`FirmwareImage` models exactly that gate: protocol knowledge —
the ability to craft syntactically valid ``Status`` / ``DeviceFetch`` /
device-origin ``Bind``/``Unbind`` messages — is obtainable only from an
available image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cloud.policy import DeviceAuthMode, VendorDesign
from repro.core.errors import AttackPreconditionError


@dataclass(frozen=True)
class FirmwareImage:
    """Metadata of a vendor's firmware image."""

    vendor: str
    version: str
    available: bool
    analysis_method: str = "static"  # "static" | "emulated" | "n/a"


@dataclass(frozen=True)
class ProtocolKnowledge:
    """What reverse engineering an image yields for message forgery."""

    vendor: str
    device_auth: DeviceAuthMode
    can_craft_status: bool
    can_craft_fetch: bool
    can_craft_device_bind: bool
    can_craft_device_unbind: bool


def image_for(design: VendorDesign) -> FirmwareImage:
    """The firmware image situation for a vendor design."""
    return FirmwareImage(
        vendor=design.name,
        version="official",
        available=design.firmware_available,
        analysis_method="static" if design.firmware_available else "n/a",
    )


def reverse_engineer(image: FirmwareImage, design: VendorDesign) -> ProtocolKnowledge:
    """Extract protocol knowledge from an *available* image.

    Raises :class:`AttackPreconditionError` when the image cannot be
    obtained — the analysis layer maps that to Table III's "O" cells.
    """
    if not image.available:
        raise AttackPreconditionError(
            f"{design.name}: firmware image not obtainable; device messages "
            "cannot be crafted (Table III: unable to confirm)"
        )
    return ProtocolKnowledge(
        vendor=design.name,
        device_auth=design.device_auth,
        can_craft_status=True,
        can_craft_fetch=True,
        can_craft_device_bind=True,
        can_craft_device_unbind=True,
    )


def try_reverse_engineer(design: VendorDesign) -> Optional[ProtocolKnowledge]:
    """``reverse_engineer`` that returns ``None`` instead of raising."""
    try:
        return reverse_engineer(image_for(design), design)
    except AttackPreconditionError:
        return None
