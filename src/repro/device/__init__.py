"""Simulated device firmware: base behaviour plus concrete device types."""

from repro.device.base import DeviceFirmware, ExecutedCommand
from repro.device.bulb import ButtonBulbBridge, SmartBulb
from repro.device.camera import IpCamera
from repro.device.firmware import (
    FirmwareImage,
    ProtocolKnowledge,
    image_for,
    reverse_engineer,
    try_reverse_engineer,
)
from repro.device.local import (
    DeliverBindToken,
    DeliverDevToken,
    DeliverPostBindingToken,
    DeliverUserCredential,
    LocalAck,
)
from repro.device.lock import SmartLock
from repro.device.plug import SmartPlug, SmartSocket
from repro.device.sensors import FireAlarm, TemperatureSensor
from repro.device.thermostat import Thermostat
from repro.hub.hub import HubFirmware

#: Map from a vendor profile's ``device_type`` to the firmware class.
DEVICE_CLASSES = {
    "zigbee-hub": HubFirmware,
    "smart-plug": SmartPlug,
    "smart-socket": SmartSocket,
    "smart-bulb": SmartBulb,
    "bulb-bridge": ButtonBulbBridge,
    "ip-camera": IpCamera,
    "smart-lock": SmartLock,
    "fire-alarm": FireAlarm,
    "temp-sensor": TemperatureSensor,
    "thermostat": Thermostat,
}

__all__ = [
    "ButtonBulbBridge",
    "DEVICE_CLASSES",
    "DeliverBindToken",
    "DeliverDevToken",
    "DeliverPostBindingToken",
    "DeliverUserCredential",
    "DeviceFirmware",
    "ExecutedCommand",
    "FireAlarm",
    "FirmwareImage",
    "HubFirmware",
    "IpCamera",
    "LocalAck",
    "ProtocolKnowledge",
    "SmartBulb",
    "SmartLock",
    "SmartPlug",
    "SmartSocket",
    "TemperatureSensor",
    "Thermostat",
    "image_for",
    "reverse_engineer",
    "try_reverse_engineer",
]
