"""Smart plugs and sockets (devices #1, #2, #3, #4, #5, #10)."""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.device.base import DeviceFirmware
from repro.device.peripherals import PowerMeter


class SmartPlug(DeviceFirmware):
    """A Wi-Fi plug: on/off relay plus a power meter.

    The paper's A1 case study (device #10) forges exactly this device's
    power-consumption reports and steals its on/off schedule.
    """

    model = "smart-plug"
    firmware_version = "2.3.1"

    def initial_state(self) -> Dict[str, Any]:
        """Per-outlet relay states plus the master flag."""
        self._meter = PowerMeter(self.env.rng.fork(f"meter-{self.device_id}"))
        return {"on": False}

    def read_telemetry(self) -> Dict[str, Any]:
        return {"power_w": self._meter.read(self.state["on"], self.env.now)}

    def apply_command(self, command: str, arguments: Mapping[str, Any]) -> None:
        """Handle per-outlet and master on/off commands."""
        if command in ("on", "off"):
            self.state["on"] = command == "on"
        else:
            super().apply_command(command, arguments)


class SmartSocket(SmartPlug):
    """A multi-outlet socket (device #3): independent outlet relays."""

    model = "smart-socket"
    firmware_version = "1.8.0"
    outlets = 4

    def initial_state(self) -> Dict[str, Any]:
        """Per-outlet relay states plus the master flag."""
        state = super().initial_state()
        state["outlets"] = [False] * self.outlets
        return state

    def apply_command(self, command: str, arguments: Mapping[str, Any]) -> None:
        """Handle per-outlet and master on/off commands."""
        if command == "outlet":
            index = int(arguments.get("index", 0))
            if 0 <= index < self.outlets:
                self.state["outlets"][index] = bool(arguments.get("on", False))
                self.state["on"] = any(self.state["outlets"])
            return
        super().apply_command(command, arguments)
        if command in ("on", "off"):
            self.state["outlets"] = [self.state["on"]] * self.outlets
