"""Simulated sensors: the physical quantities devices report upstream.

Telemetry matters to the reproduction because A1 is about *data*: the
attacker injects fake readings or steals real ones.  Each sensor
produces a plausible, seeded time series so that injected values are
distinguishable from organic ones in tests.
"""

from __future__ import annotations

import math

from repro.sim.rand import DeterministicRandom


class PowerMeter:
    """Instantaneous power draw of a plug/socket load (watts)."""

    def __init__(self, rng: DeterministicRandom, base_watts: float = 40.0) -> None:
        self._rng = rng
        self.base_watts = base_watts

    def read(self, on: bool, now: float) -> float:
        """Current reading."""
        if not on:
            return round(abs(self._rng.gauss(0.3, 0.1)), 2)  # vampire draw
        daily = 1.0 + 0.2 * math.sin(2 * math.pi * (now % 86400) / 86400)
        return round(self.base_watts * daily + self._rng.gauss(0, 1.5), 2)


class Thermometer:
    """Ambient temperature (Celsius) with slow drift."""

    def __init__(self, rng: DeterministicRandom, base_c: float = 22.0) -> None:
        self._rng = rng
        self.base_c = base_c

    def read(self, now: float) -> float:
        drift = 2.0 * math.sin(2 * math.pi * (now % 86400) / 86400)
        return round(self.base_c + drift + self._rng.gauss(0, 0.2), 2)


class SmokeDetector:
    """Smoke concentration; normally near zero."""

    def __init__(self, rng: DeterministicRandom) -> None:
        self._rng = rng
        self.alarm_threshold = 50.0

    def read(self) -> float:
        return round(abs(self._rng.gauss(1.0, 0.5)), 2)

    def is_alarm(self, reading: float) -> bool:
        return reading >= self.alarm_threshold


class MotionSensor:
    """Binary motion events with a configurable activity rate."""

    def __init__(self, rng: DeterministicRandom, activity: float = 0.1) -> None:
        self._rng = rng
        self.activity = activity

    def read(self) -> bool:
        return self._rng.uniform(0.0, 1.0) < self.activity
