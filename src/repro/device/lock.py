"""Smart locks — the paper's running example for why A1/A3 are serious
(a stolen schedule reveals when a door opens; a silenced lock endangers
property, Sections V-B and V-D)."""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.device.base import DeviceFirmware


class SmartLock(DeviceFirmware):
    """A deadbolt with an open/close schedule and an event log."""

    model = "smart-lock"
    firmware_version = "2.0.7"

    def initial_state(self) -> Dict[str, Any]:
        self.event_log: List[Dict[str, Any]] = []
        return {"on": True, "locked": True, "auto_lock": True}

    def read_telemetry(self) -> Dict[str, Any]:
        return {"locked": self.state["locked"], "battery_pct": 87}

    def apply_command(self, command: str, arguments: Mapping[str, Any]) -> None:
        if command in ("lock", "unlock"):
            self.state["locked"] = command == "lock"
            self.event_log.append({"time": self.env.now, "event": command})
        elif command == "auto_lock":
            self.state["auto_lock"] = bool(arguments.get("enable", True))
        else:
            super().apply_command(command, arguments)
