"""A thermostat: sensor and actuator in one device.

Used by the automation tests as both a rule trigger (its temperature
reading) and a rule action (its setpoint) — the tightest version of the
paper's sensor-drives-AC cascade, where forged telemetry makes a device
fight itself.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.device.base import DeviceFirmware
from repro.device.peripherals import Thermometer


class Thermostat(DeviceFirmware):
    """A heating/cooling controller with an ambient sensor."""

    model = "thermostat"
    firmware_version = "3.3.0"

    def initial_state(self) -> Dict[str, Any]:
        self._thermo = Thermometer(self.env.rng.fork(f"thermo-{self.device_id}"))
        return {
            "on": True,
            "setpoint_c": 21.0,
            "mode": "auto",        # "auto" | "heat" | "cool" | "off"
        }

    def read_telemetry(self) -> Dict[str, Any]:
        """Ambient reading plus derived heating/cooling demand."""
        ambient = self._thermo.read(self.env.now)
        heating = (
            self.state["mode"] in ("auto", "heat")
            and ambient < self.state["setpoint_c"] - 0.5
        )
        cooling = (
            self.state["mode"] in ("auto", "cool")
            and ambient > self.state["setpoint_c"] + 0.5
        )
        return {
            "temperature_c": ambient,
            "setpoint_c": self.state["setpoint_c"],
            "heating": heating,
            "cooling": cooling,
        }

    def apply_command(self, command: str, arguments: Mapping[str, Any]) -> None:
        if command == "setpoint":
            target = float(arguments.get("celsius", 21.0))
            self.state["setpoint_c"] = max(5.0, min(35.0, target))
        elif command == "mode":
            mode = str(arguments.get("mode", "auto"))
            if mode in ("auto", "heat", "cool", "off"):
                self.state["mode"] = mode
        else:
            super().apply_command(command, arguments)
