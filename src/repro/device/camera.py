"""IP cameras (devices #6, #9) — the class behind the paper's motivating
spying incidents (6/7-digit enumerable IDs, Section I)."""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.device.base import DeviceFirmware
from repro.device.peripherals import MotionSensor


class IpCamera(DeviceFirmware):
    """A Wi-Fi camera: motion events up, stream toggles down."""

    model = "ip-camera"
    firmware_version = "4.0.2"

    def initial_state(self) -> Dict[str, Any]:
        self._motion = MotionSensor(self.env.rng.fork(f"motion-{self.device_id}"))
        return {"on": True, "streaming": False, "pan_deg": 0}

    def read_telemetry(self) -> Dict[str, Any]:
        return {"motion": self._motion.read(), "streaming": self.state["streaming"]}

    def apply_command(self, command: str, arguments: Mapping[str, Any]) -> None:
        if command == "stream":
            self.state["streaming"] = bool(arguments.get("enable", True))
        elif command == "pan":
            self.state["pan_deg"] = int(arguments.get("deg", 0)) % 360
        else:
            super().apply_command(command, arguments)
