"""Device firmware base class: the behaviour every simulated IoT device shares.

A :class:`DeviceFirmware` is the "thing" of the paper's Figure 1: it is
provisioned onto the home Wi-Fi (SmartConfig-style), authenticates to
the cloud with whatever material its vendor's design prescribes, sends
registration/heartbeat status messages, polls for relayed commands, and
answers local traffic (SSDP discovery, the local-configuration
protocol).  Device types (plug, bulb, camera, ...) subclass it with
their telemetry and command sets.

Ground truth for attacks lives here: ``executed_commands`` records every
command the *physical* device actually carried out and who issued it —
device hijacking (A4) is confirmed only when an attacker-issued command
shows up in this list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.cloud.policy import BindSchema, BindSender, DeviceAuthMode, VendorDesign
from repro.core.errors import ProtocolError, RequestRejected
from repro.core.messages import (
    BindMessage,
    DeviceFetch,
    Message,
    Origin,
    Response,
    StatusMessage,
    UnbindMessage,
)
from repro.device.local import (
    DeliverBindToken,
    DeliverDevToken,
    DeliverPostBindingToken,
    DeliverUserCredential,
    LocalAck,
)
from repro.identity.keys import KeyPair
from repro.net.discovery import SsdpDescription, SsdpSearch
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.provisioning import ProvisioningAir, WifiCredentials
from repro.sim.environment import Environment


SECONDS_PER_DAY = 86400.0


def _parse_time_of_day(spec: Optional[str]) -> Optional[float]:
    """Parse "HH:MM" into seconds-of-day; None for absent/invalid specs."""
    if not spec or ":" not in spec:
        return None
    hours, _, minutes = spec.partition(":")
    try:
        h, m = int(hours), int(minutes)
    except ValueError:
        return None
    if not (0 <= h < 24 and 0 <= m < 60):
        return None
    return h * 3600.0 + m * 60.0


def _crossed_time_of_day(previous: float, now: float, due: float) -> bool:
    """Did the interval (previous, now] cross the time-of-day *due*?"""
    if now <= previous:
        return False
    if now - previous >= SECONDS_PER_DAY:
        return True
    prev_tod = previous % SECONDS_PER_DAY
    now_tod = now % SECONDS_PER_DAY
    if prev_tod < now_tod:
        return prev_tod < due <= now_tod
    return due > prev_tod or due <= now_tod  # wrapped past midnight


@dataclass(frozen=True)
class ExecutedCommand:
    """One command the physical device actually executed."""

    time: float
    command: str
    arguments: Mapping[str, Any]
    issued_by: str


class DeviceFirmware:
    """Base simulated firmware; subclass per device type."""

    #: override in subclasses
    model: str = "generic-device"
    firmware_version: str = "1.0.0"

    def __init__(
        self,
        env: Environment,
        network: Network,
        air: ProvisioningAir,
        design: VendorDesign,
        device_id: str,
        location: str,
        cloud_node: str = "cloud",
        keypair: Optional[KeyPair] = None,
        node_name: Optional[str] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.air = air
        self.design = design
        self.device_id = device_id
        self.location = location
        self.cloud_node = cloud_node
        self.keypair = keypair
        self.node_name = node_name or f"device:{device_id}"
        network.add_node(self.node_name, self._handle_local)

        # volatile firmware state
        #: optional resilient cloud client (installed by enable_resilience)
        self._client: Optional[Any] = None

        self.powered = False
        self.wifi: Optional[WifiCredentials] = None
        self._lan_id: Optional[str] = None
        self.dev_token: Optional[str] = None
        self.post_binding_token: Optional[str] = None
        self._pending_user_credential: Optional[DeliverUserCredential] = None
        self._stop_listening = None
        self._heartbeat_handle = None
        self.connected = False
        self.last_error: Optional[str] = None
        self.executed_commands: List[ExecutedCommand] = []
        #: cloud-synced on/off schedule ({"on": "HH:MM", "off": "HH:MM"})
        self.schedule: Dict[str, str] = {}
        self._last_schedule_check: Optional[float] = None
        self.state: Dict[str, Any] = self.initial_state()

    # ------------------------------------------------------------------
    # subclass surface
    # ------------------------------------------------------------------

    def initial_state(self) -> Dict[str, Any]:
        """Initial actuator/sensor state; override per device type."""
        return {"on": False}

    def read_telemetry(self) -> Dict[str, Any]:
        """Current sensor readings sent with heartbeats; override."""
        return {}

    def apply_command(self, command: str, arguments: Mapping[str, Any]) -> None:
        """Execute one relayed command; override for richer types."""
        if command == "on":
            self.state["on"] = True
        elif command == "off":
            self.state["on"] = False
        else:
            self.state[command] = dict(arguments) if arguments else True

    # ------------------------------------------------------------------
    # power and provisioning
    # ------------------------------------------------------------------

    def power_on(self) -> None:
        """Boot: reconnect if provisioned, else wait for provisioning."""
        if self.powered:
            return
        self.powered = True
        if self.wifi is not None:
            self._join_and_connect()
        else:
            self.enter_provisioning_mode()

    def power_off(self) -> None:
        """Cut power: stop heartbeats, drop the connection."""
        self.powered = False
        self.connected = False
        if self._heartbeat_handle is not None:
            self._heartbeat_handle.cancel()
            self._heartbeat_handle = None
        if self._stop_listening is not None:
            self._stop_listening()
            self._stop_listening = None

    def enter_provisioning_mode(self) -> None:
        """Listen on the local radio for SmartConfig/Airkiss credentials."""
        if self._stop_listening is not None:
            return

        def on_credentials(credentials: WifiCredentials) -> None:
            if not self.powered:
                return
            self.wifi = credentials
            if self._stop_listening is not None:
                self._stop_listening()
                self._stop_listening = None
            self._join_and_connect()

        self._stop_listening = self.air.listen(self.location, on_credentials)

    def _join_and_connect(self) -> None:
        """Join the Wi-Fi and register with the cloud."""
        lan_id = self._find_lan(self.wifi.ssid)
        if lan_id is None:
            self.last_error = "ssid-not-found"
            return
        try:
            self.network.join_lan(self.node_name, lan_id, self.wifi.passphrase)
        except Exception:
            self.last_error = "wifi-join-failed"
            return
        self._lan_id = lan_id
        self.register_with_cloud()
        self._start_heartbeats()

    def _find_lan(self, ssid: str) -> Optional[str]:
        return self.network.find_lan_by_ssid(ssid)

    def factory_reset(self) -> None:
        """User holds the reset button: wipe Wi-Fi and tokens.

        On designs with a Type-2 unbind endpoint, the device notifies
        the cloud to revoke its binding before dropping off (the
        convenience-over-security trade-off of Section IV-C).
        """
        if self.connected and self.design.unbind_accepts_bare_dev_id:
            try:
                self._cloud_request(
                    UnbindMessage(device_id=self.device_id, origin=Origin.DEVICE)
                )
            except (RequestRejected, Exception):
                pass
        self.power_off()
        self.wifi = None
        self.dev_token = None
        self.post_binding_token = None
        self._pending_user_credential = None
        if self._lan_id is not None:
            self.network.leave_lan(self.node_name)
            self._lan_id = None
        self.state = self.initial_state()

    # ------------------------------------------------------------------
    # cloud communication
    # ------------------------------------------------------------------

    def enable_resilience(self, policy: Any = None, breaker: Any = None) -> None:
        """Route this device's cloud traffic through a resilient client.

        Installs retries with backoff + jitter, per-request timeouts and
        a circuit breaker around every cloud call (heartbeats, polls,
        binding).  The client's jitter RNG is forked off the environment
        by node name so retry schedules never perturb the world's other
        draws.  Idempotent knob update if called again.
        """
        from repro.chaos.resilience import (
            DEFAULT_RESILIENCE,
            CircuitBreaker,
            ResilientClient,
        )

        chosen = policy if policy is not None else DEFAULT_RESILIENCE
        self._client = ResilientClient(
            self.network,
            self.node_name,
            chosen,
            self.env.rng.fork(f"resilience:{self.node_name}"),
            breaker=breaker if breaker is not None else CircuitBreaker(),
            role="device",
        )

    def _cloud_request(self, message: Message) -> Message:
        """One cloud round-trip, via the resilient client when installed."""
        if self._client is not None:
            return self._client.request(self.cloud_node, message)
        return self.network.request(self.node_name, self.cloud_node, message)

    def _auth_fields(self, payload_model: str = "") -> Dict[str, Any]:
        """Authentication material per the vendor's Figure 3 design."""
        design = self.design
        if design.device_auth is DeviceAuthMode.DEV_ID:
            return {"device_id": self.device_id}
        if design.device_auth is DeviceAuthMode.DEV_TOKEN:
            return {"device_id": self.device_id, "dev_token": self.dev_token}
        if design.device_auth is DeviceAuthMode.PUBKEY:
            if self.keypair is None:
                raise ProtocolError(f"{self.device_id}: pubkey design without a keypair")
            payload = {"device_id": self.device_id, "model": payload_model}
            return {
                "device_id": self.device_id,
                "signature": self.keypair.private.sign(payload),
            }
        raise ProtocolError(f"unhandled auth mode {design.device_auth}")  # pragma: no cover

    def register_with_cloud(self) -> bool:
        """Send the registration status message (Figure 1 step 2)."""
        message = StatusMessage(
            model=self.model,
            firmware_version=self.firmware_version,
            telemetry=self.read_telemetry(),
            is_registration=True,
            **self._auth_fields(self.model),
        )
        if not self._send_to_cloud(message):
            return False
        self.connected = True
        # Device-initiated binding happens right after registration.
        if self._pending_user_credential is not None:
            self._send_device_bind(self._pending_user_credential)
            self._pending_user_credential = None
        return True

    def heartbeat(self) -> None:
        """One heartbeat: status up, then poll for commands."""
        if not self.powered or self._lan_id is None:
            return
        message = StatusMessage(
            model=self.model,
            firmware_version=self.firmware_version,
            telemetry=self.read_telemetry(),
            **self._auth_fields(self.model),
        )
        if not self._send_to_cloud(message):
            self.connected = False
            return
        self.connected = True
        self.poll_commands()

    def poll_commands(self) -> None:
        """DeviceFetch: drain relayed commands and execute them."""
        fetch = DeviceFetch(
            post_binding_token=self.post_binding_token, **self._auth_fields()
        )
        try:
            response = self._cloud_request(fetch)
        except (RequestRejected, Exception) as exc:
            self.last_error = getattr(exc, "code", "network-error")
            return
        if not isinstance(response, Response):
            return
        for item in response.payload.get("commands", []):
            self.apply_command(item["command"], item.get("arguments", {}))
            self.executed_commands.append(
                ExecutedCommand(
                    self.env.now,
                    item["command"],
                    dict(item.get("arguments", {})),
                    item.get("issued_by", "?"),
                )
            )
        schedule = response.payload.get("schedule")
        if schedule is not None:
            self.schedule = dict(schedule)
        self._run_schedule()

    def _run_schedule(self) -> None:
        """Execute on/off schedule entries that came due since last check.

        Schedules use virtual time of day ("HH:MM" within the 86400-second
        simulated day).  The paper's A1 case study sets exactly such a
        schedule on a smart plug (Section VI-B, device #10).
        """
        now = self.env.now
        previous = self._last_schedule_check
        self._last_schedule_check = now
        if previous is None or not self.schedule:
            return
        for action in ("on", "off"):
            spec = self.schedule.get(action)
            due = _parse_time_of_day(spec)
            if due is None:
                continue
            if _crossed_time_of_day(previous, now, due):
                self.apply_command(action, {})
                self.executed_commands.append(
                    ExecutedCommand(now, action, {}, "schedule")
                )

    def press_button(self) -> bool:
        """Physical button press: sends a fresh registration status.

        Device #7's binding flow requires this within the 30-second
        window so the cloud can compare source IPs (Section VI-B).
        """
        if not self.powered or self._lan_id is None:
            return False
        return self.register_with_cloud()

    def _send_to_cloud(self, message: Message) -> bool:
        try:
            self._cloud_request(message)
            return True
        except RequestRejected as exc:
            self.last_error = exc.code
            return False
        except Exception:
            self.last_error = "network-error"
            return False

    def _send_device_bind(self, credential: DeliverUserCredential) -> None:
        """Figure 4b: the device submits the binding with user credentials.

        The cloud's response may carry the device's half of the
        post-binding token (Section IV-B); keep it for future fetches.
        """
        message = BindMessage(
            device_id=self.device_id,
            user_id=credential.user_id,
            user_pw=credential.user_pw,
            origin=Origin.DEVICE,
        )
        try:
            response = self._cloud_request(message)
        except RequestRejected as exc:
            self.last_error = exc.code
            return
        except Exception:
            self.last_error = "network-error"
            return
        if isinstance(response, Response):
            token = response.payload.get("post_binding_token")
            if token:
                self.post_binding_token = token
            fresh = response.payload.get("dev_token")
            if fresh:
                self.dev_token = fresh

    def _submit_bind_token(self, bind_token: str) -> None:
        """Figure 4c: the device confirms a capability binding."""
        if not self.connected and self.powered and self._lan_id is not None:
            self.register_with_cloud()
        message = BindMessage(
            device_id=self.device_id, bind_token=bind_token, origin=Origin.DEVICE
        )
        try:
            response = self._cloud_request(message)
        except RequestRejected as exc:
            self.last_error = exc.code
            return
        if isinstance(response, Response):
            token = response.payload.get("post_binding_token")
            if token:
                self.post_binding_token = token

    def _start_heartbeats(self) -> None:
        if self._heartbeat_handle is not None:
            return
        self._heartbeat_handle = self.env.every(
            self.design.heartbeat_interval, self.heartbeat
        )

    # ------------------------------------------------------------------
    # local (LAN) protocol
    # ------------------------------------------------------------------

    def _handle_local(self, packet: Packet) -> Message:
        """Answer SSDP and local-configuration traffic from the app."""
        message = packet.message
        if isinstance(message, SsdpSearch):
            return SsdpDescription(
                device_id=self.device_id,
                model=self.model,
                vendor=self.design.name,
                services={"binding": "1"},
            )
        if isinstance(message, DeliverDevToken):
            self.dev_token = message.dev_token
            # Fresh credentials: reconnect right away so the cloud sees
            # the device online before the user proceeds to binding.
            if self.powered and self._lan_id is not None:
                self.register_with_cloud()
            return LocalAck(device_id=self.device_id, note="dev-token-installed")
        if isinstance(message, DeliverPostBindingToken):
            self.post_binding_token = message.token
            return LocalAck(device_id=self.device_id, note="post-token-installed")
        if isinstance(message, DeliverUserCredential):
            if self.design.bind_sender is not BindSender.DEVICE:
                return LocalAck(
                    device_id=self.device_id, accepted=False, note="not-device-initiated"
                )
            if self.connected:
                self._send_device_bind(message)
            else:
                self._pending_user_credential = message
            return LocalAck(device_id=self.device_id, note="credential-installed")
        if isinstance(message, DeliverBindToken):
            if self.design.bind_schema is not BindSchema.CAPABILITY:
                return LocalAck(
                    device_id=self.device_id, accepted=False, note="not-capability"
                )
            self._submit_bind_token(message.bind_token)
            return LocalAck(device_id=self.device_id, note="bind-token-submitted")
        raise ProtocolError(f"device cannot handle {type(message).__name__}")
