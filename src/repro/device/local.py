"""The local configuration protocol between the app and the device.

During local binding the app and the device exchange secrets over the
LAN (Section II-B): the DevToken (Type-1 auth), the user credential
(device-initiated binding), the BindToken (capability binding) and the
post-binding authorization token.  These messages only ever travel
inside a LAN — the network layer's WPA2/NAT boundary guarantees a remote
attacker can neither send nor observe them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import Message


@dataclass(frozen=True)
class DeliverDevToken(Message):
    """App -> device: the DevToken fetched from the cloud (Figure 3a)."""

    dev_token: str = ""


@dataclass(frozen=True)
class DeliverPostBindingToken(Message):
    """App -> device: the post-binding authorization token (Section IV-B)."""

    token: str = ""


@dataclass(frozen=True)
class DeliverUserCredential(Message):
    """App -> device: the user's login, for device-initiated binding
    (Figure 4b) — the practice Section VII's last lesson warns against."""

    user_id: str = ""
    user_pw: str = ""


@dataclass(frozen=True)
class DeliverBindToken(Message):
    """App -> device: the capability BindToken to submit to the cloud
    (Figure 4c)."""

    bind_token: str = ""


@dataclass(frozen=True)
class LocalAck(Message):
    """Device -> app: local configuration step accepted."""

    device_id: str = ""
    accepted: bool = True
    note: str = ""
