"""User accounts and password login (Section II-B, user authentication).

The paper treats user authentication as a solved problem ("IoT vendors
usually deploy password-based schemes") and focuses elsewhere; the
reproduction still implements it for real, because the attacks depend
on both victim and attacker holding *valid* accounts and tokens of
their own — the adversary is a legitimate customer of the same vendor.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.state.protocol import Record, RecordStoreBase
from repro.core.errors import AuthenticationFailed, ConfigurationError
from repro.identity.tokens import TokenKind, TokenService


def _digest(password: str, salt: str) -> str:
    return hashlib.sha256(f"{salt}:{password}".encode("utf-8")).hexdigest()


@dataclass
class Account:
    """One registered user."""

    user_id: str
    salt: str
    password_digest: str
    created_at: float = 0.0


class AccountStore(RecordStoreBase):
    """Registration, login and token-based user authentication."""

    state_name = "accounts"

    def __init__(self, tokens: TokenService) -> None:
        self._tokens = tokens
        self._accounts: Dict[str, Account] = {}

    # -- registration --------------------------------------------------------

    def register(self, user_id: str, password: str, now: float = 0.0) -> Account:
        """Create a new account (sign-up)."""
        if not user_id or not password:
            raise ConfigurationError("user id and password must be non-empty")
        if user_id in self._accounts:
            raise ConfigurationError(f"account {user_id!r} already exists")
        salt = hashlib.sha256(user_id.encode("utf-8")).hexdigest()[:16]
        account = Account(user_id, salt, _digest(password, salt), now)
        self._accounts[user_id] = account
        self._record_put(self.to_record(account))
        return account

    def exists(self, user_id: str) -> bool:
        return user_id in self._accounts

    # -- authentication --------------------------------------------------------

    def check_password(self, user_id: str, password: str) -> bool:
        """Constant-shape password check (no user-existence oracle)."""
        account = self._accounts.get(user_id)
        if account is None:
            return False
        return account.password_digest == _digest(password, account.salt)

    def login(self, user_id: str, password: str, now: float = 0.0) -> str:
        """Password login; returns a fresh ``UserToken``."""
        if not self.check_password(user_id, password):
            raise AuthenticationFailed("bad-credentials", f"login failed for {user_id!r}")
        return self._tokens.issue(TokenKind.USER, user_id, now)

    def user_for_token(self, user_token: Optional[str]) -> Optional[str]:
        """The account a live user token belongs to, else ``None``."""
        return self._tokens.subject_of(user_token, TokenKind.USER)

    def require_user(self, user_token: Optional[str]) -> str:
        """Resolve a token to a user or raise ``bad-user-token``."""
        user = self.user_for_token(user_token)
        if user is None:
            raise AuthenticationFailed("bad-user-token", "invalid or expired user token")
        return user

    def logout(self, user_token: str) -> bool:
        return self._tokens.revoke(user_token)

    # -- StateStore protocol --------------------------------------------------

    def to_record(self, obj: Account) -> Record:
        """One account as a snapshot/journal record."""
        return {
            "user_id": obj.user_id,
            "salt": obj.salt,
            "password_digest": obj.password_digest,
            "created_at": obj.created_at,
        }

    def from_record(self, record: Record) -> Account:
        """Decode one account record."""
        return Account(
            record["user_id"],
            record["salt"],
            record["password_digest"],
            record["created_at"],
        )

    def record_key(self, record: Record) -> str:
        """Accounts are keyed by user id."""
        return record["user_id"]

    def record_count(self) -> int:
        """Number of registered accounts."""
        return len(self._accounts)

    def snapshot_state(self) -> List[Record]:
        """Every account record, sorted by user id."""
        return [
            self.to_record(self._accounts[user_id])
            for user_id in sorted(self._accounts)
        ]

    def apply_record(self, record: Record) -> Account:
        """Upsert one account (restore / journal replay / clone)."""
        account = self.from_record(record)
        self._accounts[account.user_id] = account
        self._record_put(record)
        return account

    def discard_record(self, key: str) -> bool:
        """Remove one account by user id."""
        existed = self._accounts.pop(key, None) is not None
        if existed:
            self._record_del(key)
        return existed

    def find_record(self, key: str) -> Optional[Record]:
        """O(1) lookup of one account record."""
        account = self._accounts.get(key)
        return self.to_record(account) if account is not None else None
