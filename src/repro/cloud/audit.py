"""Cloud-side audit log of every handled request.

The paper identifies attack failures "from response messages"
(Section VIII); the audit log is the reproduction's equivalent record —
every request, its claimed origin, and the outcome code.  It also powers
the Figure 1/3/4 sequence traces.

The log doubles as the cloud's single observability feed: when an
observer is installed (``AuditLog(observer=...)``), every recorded entry
is forwarded to :meth:`~repro.obs.observer.Observer.on_audit`, which the
:class:`~repro.obs.runtime.Observability` runtime turns into message
counters and exchange spans — one source of truth, no duplicate
bookkeeping, and counter totals provably equal to the log's.
"""

from __future__ import annotations

from typing import Any, List, Optional


class AuditEntry:
    """One handled request.

    A ``__slots__`` record (one per handled request, so allocation is on
    the cloud hot path); treat instances as immutable.  Equality and
    hashing cover all fields — shard merges compare and pickle entries.
    """

    __slots__ = (
        "time",
        "source_node",
        "source_ip",
        "summary",
        "outcome",
        "detail",
        "trace_id",
    )

    def __init__(
        self,
        time: float,
        source_node: str,
        source_ip: str,
        summary: str,
        outcome: str,  # "ok" or a rejection code
        detail: str = "",
        trace_id: str = "",  # causal chain id from the request packet, if any
    ) -> None:
        self.time = time
        self.source_node = source_node
        self.source_ip = source_ip
        self.summary = summary
        self.outcome = outcome
        self.detail = detail
        self.trace_id = trace_id

    def _key(self) -> tuple:
        return (
            self.time,
            self.source_node,
            self.source_ip,
            self.summary,
            self.outcome,
            self.detail,
            self.trace_id,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AuditEntry):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AuditEntry(time={self.time!r}, source_node={self.source_node!r}, "
            f"source_ip={self.source_ip!r}, summary={self.summary!r}, "
            f"outcome={self.outcome!r}, detail={self.detail!r}, "
            f"trace_id={self.trace_id!r})"
        )

    def line(self) -> str:
        """One fixed-width log line."""
        mark = "+" if self.outcome == "ok" else "!"
        detail = f" ({self.detail})" if self.detail else ""
        return (
            f"{mark} [t={self.time:8.3f}] {self.source_node:<18} "
            f"{self.summary:<28} -> {self.outcome}{detail}"
        )


class AuditLog:
    """Append-only record of handled requests (optionally observed)."""

    def __init__(self, observer: Optional[Any] = None) -> None:
        self.entries: List[AuditEntry] = []
        self._observer = observer

    def record(
        self,
        time: float,
        source_node: str,
        source_ip: str,
        summary: str,
        outcome: str = "ok",
        detail: str = "",
        trace_id: str = "",
    ) -> None:
        """Append one entry; forward it to the observer when installed."""
        entry = AuditEntry(
            time, source_node, source_ip, summary, outcome, detail, trace_id
        )
        self.entries.append(entry)
        if self._observer is not None:
            self._observer.on_audit(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def rejected(self) -> List[AuditEntry]:
        return [entry for entry in self.entries if entry.outcome != "ok"]

    def matching(self, fragment: str) -> List[AuditEntry]:
        return [entry for entry in self.entries if fragment in entry.summary]

    def last_outcome(self, fragment: str) -> Optional[str]:
        hits = self.matching(fragment)
        return hits[-1].outcome if hits else None

    def render(self, limit: Optional[int] = None) -> str:
        entries = self.entries if limit is None else self.entries[-limit:]
        return "\n".join(entry.line() for entry in entries)
