"""The cloud's device registry: every manufactured device of the vendor.

The registry is populated at *manufacture time* (the vendor knows its
own IDs and, for public-key designs, the per-device public keys).  It
also tracks the current ``DevToken`` holder for Type-1 authentication,
including the rotation rule that makes binding replacement lock the
real device out under DevToken designs (Section VI-B, device #3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.state.protocol import Record, RecordStoreBase
from repro.core.errors import ConfigurationError, UnknownDevice
from repro.identity.keys import PublicKey
from repro.identity.tokens import TokenKind, TokenService


@dataclass
class DeviceRecord:
    """Factory data and live authentication material for one device."""

    device_id: str
    model: str
    public_key: Optional[PublicKey] = None
    #: Live DevToken (Type-1 designs); rotated by the registry.
    dev_token: Optional[str] = None
    #: The user who requested the current DevToken.  A binding by a
    #: *different* user rotates the token so the previous holder (and
    #: the physical device still using the old token) is locked out.
    dev_token_requested_by: Optional[str] = None


class DeviceRegistry(RecordStoreBase):
    """Registered devices and their authentication material."""

    state_name = "devices"

    def __init__(self, tokens: TokenService) -> None:
        self._tokens = tokens
        self._devices: Dict[str, DeviceRecord] = {}

    # -- manufacture ----------------------------------------------------------

    def manufacture(self, device_id: str, model: str, public_key: Optional[PublicKey] = None) -> DeviceRecord:
        """Record a freshly manufactured device."""
        if not device_id:
            raise ConfigurationError("device id must be non-empty")
        if device_id in self._devices:
            raise ConfigurationError(f"device {device_id!r} already manufactured")
        record = DeviceRecord(device_id, model, public_key)
        self._devices[device_id] = record
        self._record_put(self.to_record(record))
        return record

    def is_registered(self, device_id: Optional[str]) -> bool:
        return device_id is not None and device_id in self._devices

    def get(self, device_id: str) -> DeviceRecord:
        try:
            return self._devices[device_id]
        except KeyError:
            raise UnknownDevice(device_id) from None

    def all_ids(self):
        return sorted(self._devices)

    # -- DevToken lifecycle ------------------------------------------------------

    def issue_dev_token(self, device_id: str, requested_by: str, now: float = 0.0) -> str:
        """Issue (and rotate) the device's DevToken for *requested_by*."""
        record = self.get(device_id)
        if record.dev_token is not None:
            self._tokens.revoke(record.dev_token)
        token = self._tokens.issue(TokenKind.DEVICE, device_id, now)
        record.dev_token = token
        record.dev_token_requested_by = requested_by
        self._record_put(self.to_record(record))
        return token

    def rotate_for_new_binding(self, device_id: str, binding_user: str, now: float = 0.0) -> Optional[str]:
        """Rotate the DevToken when a *different* user creates a binding.

        Returns the fresh token (to be handed to the binding creator),
        or ``None`` if the current holder is already the binding user —
        the legitimate local-configuration flow keeps its token.
        """
        record = self.get(device_id)
        if record.dev_token_requested_by == binding_user and record.dev_token is not None:
            return None
        return self.issue_dev_token(device_id, binding_user, now)

    def check_dev_token(self, device_id: Optional[str], dev_token: Optional[str]) -> bool:
        """Type-1 authentication: is this the device's live token?"""
        if device_id is None or dev_token is None:
            return False
        record = self._devices.get(device_id)
        if record is None:
            return False
        return record.dev_token is not None and record.dev_token == dev_token

    # -- StateStore protocol --------------------------------------------------

    def to_record(self, obj: DeviceRecord) -> Record:
        """One device record (public key serialized as id + material)."""
        key = obj.public_key
        return {
            "device_id": obj.device_id,
            "model": obj.model,
            "public_key": (
                {"key_id": key.key_id, "material": key._secret.decode("ascii")}
                if key is not None
                else None
            ),
            "dev_token": obj.dev_token,
            "dev_token_requested_by": obj.dev_token_requested_by,
        }

    def from_record(self, record: Record) -> DeviceRecord:
        """Decode one device record."""
        key_data = record.get("public_key")
        public_key = (
            PublicKey(key_data["key_id"], key_data["material"].encode("ascii"))
            if key_data is not None
            else None
        )
        return DeviceRecord(
            record["device_id"],
            record["model"],
            public_key,
            dev_token=record.get("dev_token"),
            dev_token_requested_by=record.get("dev_token_requested_by"),
        )

    def record_key(self, record: Record) -> str:
        """Devices are keyed by device id."""
        return record["device_id"]

    def record_count(self) -> int:
        """Number of manufactured devices."""
        return len(self._devices)

    def snapshot_state(self) -> List[Record]:
        """Every device record, sorted by device id."""
        return [
            self.to_record(self._devices[device_id])
            for device_id in sorted(self._devices)
        ]

    def apply_record(self, record: Record) -> DeviceRecord:
        """Upsert one device record (restore / journal replay / clone)."""
        device = self.from_record(record)
        self._devices[device.device_id] = device
        self._record_put(record)
        return device

    def discard_record(self, key: str) -> bool:
        """Remove one device by device id."""
        existed = self._devices.pop(key, None) is not None
        if existed:
            self._record_del(key)
        return existed

    def find_record(self, key: str) -> Optional[Record]:
        """O(1) lookup of one device record."""
        record = self._devices.get(key)
        return self.to_record(record) if record is not None else None
