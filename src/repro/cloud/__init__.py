"""The IoT cloud: accounts, registry, shadows, bindings, policy, relay."""

from repro.cloud.accounts import Account, AccountStore
from repro.cloud.audit import AuditEntry, AuditLog
from repro.cloud.bindings import Binding, BindingStore
from repro.cloud.policy import BindSchema, BindSender, DeviceAuthMode, VendorDesign
from repro.cloud.registry import DeviceRecord, DeviceRegistry
from repro.cloud.relay import QueuedCommand, Relay, TelemetryRecord
from repro.cloud.service import CloudService
from repro.cloud.shadows import RegistrationMark, ShadowStore

__all__ = [
    "Account",
    "AccountStore",
    "AuditEntry",
    "AuditLog",
    "BindSchema",
    "BindSender",
    "Binding",
    "BindingStore",
    "CloudService",
    "DeviceAuthMode",
    "DeviceRecord",
    "DeviceRegistry",
    "QueuedCommand",
    "RegistrationMark",
    "Relay",
    "ShadowStore",
    "TelemetryRecord",
    "VendorDesign",
]
