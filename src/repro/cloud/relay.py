"""The relay: user<->device data plane through the cloud.

The cloud "relays messages between a specific device and a specific
user" (Section II-A).  Concretely:

* users push *commands* and *schedules* down; devices pick them up on
  their next poll (the device keeps a persistent/polling connection —
  nothing on the internet can reach into the LAN);
* devices push *telemetry* up; users read it back with queries.

The relay is deliberately dumb: every authorization decision happens in
the handlers before anything lands here.  But it is the *ground truth*
for attacks — A1's stolen schedule and injected telemetry, and A4's
attacker-issued command executed by the victim device, are all observed
on this object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.cloud.state.protocol import Record, RecordStoreBase


@dataclass(frozen=True)
class QueuedCommand:
    """A pending user->device command.

    ``trace_id`` carries the issuing request's causal chain id across
    the store-and-forward hop, so the device's eventual poll/execute can
    be correlated back to the user (or attacker) who queued it.
    """

    command: str
    arguments: Mapping[str, Any]
    issued_by: str
    issued_at: float
    trace_id: Optional[str] = None


@dataclass
class TelemetryRecord:
    """Latest device->user data, with provenance for attack ground truth."""

    data: Mapping[str, Any]
    reported_at: float
    reported_by_connection: str


class Relay(RecordStoreBase):
    """Per-device mailboxes for both directions of the data plane.

    As a :class:`~repro.cloud.state.protocol.StateStore` the relay
    persists **schedules only**: command queues and latest telemetry are
    in-flight data that a restart legitimately drops (the device re-polls
    and re-reports), while a schedule is durable configuration the user
    expects to survive — exactly the split v1 snapshots already made.
    """

    state_name = "relay"

    def __init__(self) -> None:
        self._commands: Dict[str, List[QueuedCommand]] = {}
        self._schedules: Dict[str, Mapping[str, Any]] = {}
        self._telemetry: Dict[str, TelemetryRecord] = {}

    # -- downstream: user -> device ------------------------------------------

    def queue_command(self, device_id: str, command: QueuedCommand) -> None:
        self._commands.setdefault(device_id, []).append(command)
        self._note_mutation()

    def drain_commands(self, device_id: str) -> List[QueuedCommand]:
        """Hand all pending commands to the polling device and clear them."""
        return self._commands.pop(device_id, [])

    def pending_commands(self, device_id: str) -> List[QueuedCommand]:
        return list(self._commands.get(device_id, []))

    def set_schedule(self, device_id: str, schedule: Mapping[str, Any]) -> None:
        self._schedules[device_id] = dict(schedule)
        self._record_put({"device_id": device_id, "schedule": dict(schedule)})

    def schedule_of(self, device_id: str) -> Optional[Mapping[str, Any]]:
        return self._schedules.get(device_id)

    def clear_schedule(self, device_id: str) -> None:
        if self._schedules.pop(device_id, None) is not None:
            self._record_del(device_id)

    # -- upstream: device -> user ----------------------------------------------

    def report_telemetry(
        self, device_id: str, data: Mapping[str, Any], now: float, connection: str
    ) -> None:
        if data:
            self._telemetry[device_id] = TelemetryRecord(dict(data), now, connection)
            self._note_mutation()

    def telemetry_of(self, device_id: str) -> Optional[TelemetryRecord]:
        return self._telemetry.get(device_id)

    def forget_device(self, device_id: str) -> None:
        """Drop all relay state for a device (unbinding cleanup)."""
        self._commands.pop(device_id, None)
        had_schedule = self._schedules.pop(device_id, None) is not None
        self._telemetry.pop(device_id, None)
        if had_schedule:
            self._record_del(device_id)
        else:
            self._note_mutation()

    # -- volatile capture (warm-start restore) --------------------------------

    def capture_volatile(self) -> Dict[str, Any]:
        """Command queues and latest telemetry, as picklable data.

        Snapshots deliberately drop these (a *restart* legitimately loses
        in-flight data), but a warm start is not a restart: the restored
        world must continue exactly where the captured one was, pending
        commands and all.  Records are immutable dataclasses, so sharing
        them between the image and restored worlds is safe; the container
        dicts/lists are copied on both capture and restore.
        """
        return {
            "commands": {
                device_id: list(queue)
                for device_id, queue in self._commands.items()
            },
            "telemetry": dict(self._telemetry),
        }

    def restore_volatile(self, data: Dict[str, Any]) -> None:
        """Install queues/telemetry captured by :meth:`capture_volatile`."""
        self._commands = {
            device_id: list(queue)
            for device_id, queue in data.get("commands", {}).items()
        }
        self._telemetry = dict(data.get("telemetry", {}))

    # -- StateStore protocol --------------------------------------------------

    def to_record(self, obj: Any) -> Record:
        """One ``(device_id, schedule)`` pair as a record."""
        device_id, schedule = obj
        return {"device_id": device_id, "schedule": dict(schedule)}

    def from_record(self, record: Record) -> Any:
        """Decode one schedule record back to a ``(device_id, schedule)`` pair."""
        return (record["device_id"], dict(record["schedule"]))

    def record_key(self, record: Record) -> str:
        """Schedules are keyed by device id."""
        return record["device_id"]

    def record_count(self) -> int:
        """Number of stored schedules (queues/telemetry are volatile)."""
        return len(self._schedules)

    def snapshot_state(self) -> List[Record]:
        """Every schedule record, sorted by device id."""
        return [
            self.to_record((device_id, self._schedules[device_id]))
            for device_id in sorted(self._schedules)
        ]

    def apply_record(self, record: Record) -> Any:
        """Upsert one schedule (restore / journal replay / clone)."""
        device_id, schedule = self.from_record(record)
        self._schedules[device_id] = schedule
        self._record_put(record)
        return (device_id, schedule)

    def discard_record(self, key: str) -> bool:
        """Remove one schedule by device id."""
        existed = self._schedules.pop(key, None) is not None
        if existed:
            self._record_del(key)
        return existed

    def find_record(self, key: str) -> Optional[Record]:
        """O(1) lookup of one schedule record."""
        schedule = self._schedules.get(key)
        return self.to_record((key, schedule)) if schedule is not None else None
