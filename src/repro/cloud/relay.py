"""The relay: user<->device data plane through the cloud.

The cloud "relays messages between a specific device and a specific
user" (Section II-A).  Concretely:

* users push *commands* and *schedules* down; devices pick them up on
  their next poll (the device keeps a persistent/polling connection —
  nothing on the internet can reach into the LAN);
* devices push *telemetry* up; users read it back with queries.

The relay is deliberately dumb: every authorization decision happens in
the handlers before anything lands here.  But it is the *ground truth*
for attacks — A1's stolen schedule and injected telemetry, and A4's
attacker-issued command executed by the victim device, are all observed
on this object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional


@dataclass(frozen=True)
class QueuedCommand:
    """A pending user->device command."""

    command: str
    arguments: Mapping[str, Any]
    issued_by: str
    issued_at: float


@dataclass
class TelemetryRecord:
    """Latest device->user data, with provenance for attack ground truth."""

    data: Mapping[str, Any]
    reported_at: float
    reported_by_connection: str


class Relay:
    """Per-device mailboxes for both directions of the data plane."""

    def __init__(self) -> None:
        self._commands: Dict[str, List[QueuedCommand]] = {}
        self._schedules: Dict[str, Mapping[str, Any]] = {}
        self._telemetry: Dict[str, TelemetryRecord] = {}

    # -- downstream: user -> device ------------------------------------------

    def queue_command(self, device_id: str, command: QueuedCommand) -> None:
        self._commands.setdefault(device_id, []).append(command)

    def drain_commands(self, device_id: str) -> List[QueuedCommand]:
        """Hand all pending commands to the polling device and clear them."""
        return self._commands.pop(device_id, [])

    def pending_commands(self, device_id: str) -> List[QueuedCommand]:
        return list(self._commands.get(device_id, []))

    def set_schedule(self, device_id: str, schedule: Mapping[str, Any]) -> None:
        self._schedules[device_id] = dict(schedule)

    def schedule_of(self, device_id: str) -> Optional[Mapping[str, Any]]:
        return self._schedules.get(device_id)

    def clear_schedule(self, device_id: str) -> None:
        self._schedules.pop(device_id, None)

    # -- upstream: device -> user ----------------------------------------------

    def report_telemetry(
        self, device_id: str, data: Mapping[str, Any], now: float, connection: str
    ) -> None:
        if data:
            self._telemetry[device_id] = TelemetryRecord(dict(data), now, connection)

    def telemetry_of(self, device_id: str) -> Optional[TelemetryRecord]:
        return self._telemetry.get(device_id)

    def forget_device(self, device_id: str) -> None:
        """Drop all relay state for a device (unbinding cleanup)."""
        self._commands.pop(device_id, None)
        self._schedules.pop(device_id, None)
        self._telemetry.pop(device_id, None)
