"""The IoT cloud service: wiring, dispatch, liveness sweep.

One :class:`CloudService` instance is one vendor's cloud, configured by
a :class:`~repro.cloud.policy.VendorDesign`.  It attaches to the
simulated internet as a node, dispatches incoming packets to
:class:`~repro.cloud.handlers.EndpointHandlers`, and runs the periodic
liveness sweep that moves silent shadows offline (Figure 2's timeout
transitions).
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Dict, Optional

from repro.cloud.accounts import AccountStore
from repro.cloud.audit import AuditLog
from repro.cloud.authz import AuthorizationCache, AuthzVersion
from repro.cloud.bindings import BindingStore
from repro.cloud.handlers import EndpointHandlers
from repro.cloud.pdp import PolicyDecisionPoint, PolicySpec
from repro.cloud.policy import VendorDesign
from repro.cloud.registry import DeviceRegistry
from repro.cloud.events import EventFeed, UserEvent
from repro.cloud.relay import Relay
from repro.cloud.shadows import ShadowStore
from repro.cloud.sharing import ShareStore
from repro.cloud.state.backends import StateBackend
from repro.cloud.state.journal import meta_entry
from repro.cloud.state.protocol import StateStore
from repro.cloud.state.snapshot import build_snapshot, load_snapshot
from repro.core.errors import ConfigurationError, ProtocolError, RequestRejected
from repro.core.messages import (
    BindingInfoRequest,
    BindMessage,
    BindTokenRequest,
    ControlMessage,
    DeviceFetch,
    DevTokenRequest,
    EventPollRequest,
    LoginRequest,
    Message,
    QueryRequest,
    Response,
    ScheduleUpdate,
    ShareRequest,
    ShareRevoke,
    StatusMessage,
    UnbindMessage,
    describe,
)
from repro.core.shadow import DeviceShadow
from repro.identity.keys import PublicKey
from repro.identity.tokens import TokenKind, TokenService
from repro.net.network import Network
from repro.net.packet import Packet
from repro.obs.detect.timeline import ForensicTimeline
from repro.obs.observer import NULL_OBSERVER
from repro.sim.environment import Environment

#: Message types that land on a device shadow's forensic timeline,
#: mapped to the timeline's event kind.
_FORENSIC_KINDS = {
    StatusMessage: "status",
    BindMessage: "bind",
    UnbindMessage: "unbind",
    ControlMessage: "control",
    DeviceFetch: "fetch",
}

#: Message type -> PDP action name, the RED accounting key (matches
#: :data:`repro.cloud.pdp.model.ACTIONS`); used only on observed runs.
_ENDPOINT_ACTIONS = {
    LoginRequest: "login",
    DevTokenRequest: "dev-token",
    BindTokenRequest: "bind-token",
    StatusMessage: "status",
    BindMessage: "bind",
    UnbindMessage: "unbind",
    ControlMessage: "control",
    ScheduleUpdate: "schedule",
    QueryRequest: "query",
    BindingInfoRequest: "binding-info",
    EventPollRequest: "event-poll",
    ShareRequest: "share",
    ShareRevoke: "share-revoke",
    DeviceFetch: "fetch",
}


class CloudService:
    """A vendor's IoT cloud on the simulated internet."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        design: VendorDesign,
        node_name: str = "cloud",
        public_ip: str = "52.0.0.1",
    ) -> None:
        self.env = env
        self.network = network
        self.design = design
        self.node_name = node_name
        #: where this cloud sits on the simulated internet (a restart
        #: rebuilds the successor at the same address)
        self.public_ip = public_ip
        self.tokens = TokenService(env.rng.fork(f"cloud-tokens-{design.name}"))
        self.accounts = AccountStore(self.tokens)
        self.registry = DeviceRegistry(self.tokens)
        self.bindings = BindingStore()
        self.shares = ShareStore()
        # Authorization epoch + decision cache: every mutation of a store
        # that feeds authorization decisions bumps the shared version,
        # which wholesale-invalidates the cache (see repro.cloud.authz).
        self.authz_version = AuthzVersion()
        for authz_store in (
            self.accounts,
            self.tokens,
            self.registry,
            self.bindings,
            self.shares,
        ):
            authz_store.bind_authz_version(self.authz_version)
        self.authz_cache = AuthorizationCache(self.authz_version)
        # Authorization policy: the design's knobs compiled to ordered
        # declarative rules, evaluated by one decision point; handlers
        # are thin enforcement points over its decisions.
        self.policy_spec = PolicySpec.from_design(design)
        self.pdp = PolicyDecisionPoint(self, self.policy_spec)
        # Observability: the audit log feeds the observer (one source of
        # truth for message counters/spans) and shadows report Figure 2
        # transitions.  With the null observer installed, both stores
        # keep their fast uninstrumented paths.
        self._observer = env.observer
        #: precomputed fast-path flag: when False the per-packet
        #: ``profile()`` context manager is never even allocated
        self._observed = self._observer is not NULL_OBSERVER
        instrumented = self._observer if self._observed else None
        self.shadows = ShadowStore(observer=instrumented)
        self.relay = Relay()
        self.audit = AuditLog(observer=instrumented)
        #: per-account unknown-device bind failures (enumeration defence)
        self.bind_probe_failures: dict = {}
        self.events = EventFeed()
        #: per-shadow forensic evidence (always on; read-only consumers
        #: subscribe via ``forensics.add_sink``)
        self.forensics = ForensicTimeline()
        self._handlers = EndpointHandlers(self)
        handlers = self._handlers
        #: type -> bound handler; replaces a 14-branch isinstance chain on
        #: the per-packet dispatch path (message types are never subclassed)
        self._dispatch_table = {
            LoginRequest: handlers.handle_login,
            DevTokenRequest: handlers.handle_dev_token_request,
            BindTokenRequest: handlers.handle_bind_token_request,
            StatusMessage: handlers.handle_status,
            BindMessage: handlers.handle_bind,
            UnbindMessage: handlers.handle_unbind,
            ControlMessage: handlers.handle_control,
            ScheduleUpdate: handlers.handle_schedule,
            QueryRequest: handlers.handle_query,
            BindingInfoRequest: handlers.handle_binding_info,
            EventPollRequest: handlers.handle_event_poll,
            ShareRequest: handlers.handle_share,
            ShareRevoke: handlers.handle_share_revoke,
            DeviceFetch: handlers.handle_fetch,
        }
        self._sweep_handle = None
        self._sweep_active = False
        self._journal_backend: Optional[StateBackend] = None
        network.add_internet_node(node_name, self.handle_packet, public_ip)
        self.start_liveness_sweep()

    # -- lifecycle -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self.env.now

    def start_liveness_sweep(self, start_delay: Optional[float] = None) -> None:
        """Periodically move silent shadows offline.

        ``start_delay`` offsets the first firing from *now* (defaulting
        to one full interval): the warm-start path uses it to re-arm the
        sweep at exactly the virtual time the captured world's next
        sweep would have fired, keeping offline-timeout audit entries on
        the same schedule as a cold-built world.
        """
        if self._sweep_handle is not None:
            return
        interval = self.design.heartbeat_interval
        self._sweep_active = True

        def sweep() -> None:
            if not self._sweep_active:
                return
            expired = self.shadows.sweep_offline(self.now, self.design.offline_timeout)
            for device_id in expired:
                self.audit.record(
                    self.now, "cloud", "-", f"offline-timeout:{device_id}", "ok"
                )
                bound = self.bindings.bound_user(device_id)
                if bound is not None:
                    self.notify(bound, "device-offline", device_id,
                                "heartbeats stopped")

        self._sweep_handle = self.env.every(interval, sweep, start_delay=start_delay)

    def shutdown(self) -> None:
        """Take this cloud off the air (simulated restart/crash).

        Silences the liveness sweep (the scheduler idiom: cancel the
        pending handle and flag the chain inert), detaches the journal,
        and removes the node so a successor cloud can claim the name.
        """
        self._sweep_active = False
        if self._sweep_handle is not None:
            self._sweep_handle.cancel()
            self._sweep_handle = None
        self.detach_journal()
        if self.network.has_node(self.node_name):
            self.network.remove_node(self.node_name)

    @classmethod
    def restore(
        cls,
        env: Environment,
        network: Network,
        design: VendorDesign,
        data: Dict[str, Any],
        node_name: str = "cloud",
        public_ip: str = "52.0.0.1",
    ) -> "CloudService":
        """Build a cloud from a snapshot, through the real constructor.

        Replaces the old ``CloudService.__new__`` restart hack: the
        successor is wired exactly like any other cloud (handlers, sweep,
        observer) and then loads the (v1 or v2) snapshot *data*.  Any
        previous holder of *node_name* must have been :meth:`shutdown`
        first; a leftover node of that name is replaced.
        """
        if network.has_node(node_name):
            network.remove_node(node_name)
        cloud = cls(env, network, design, node_name, public_ip)
        load_snapshot(cloud, data)
        return cloud

    # -- the unified state layer ---------------------------------------------

    def state_stores(self) -> Dict[str, StateStore]:
        """Every state store, keyed by section name, in restore order.

        Order matters on restore/replay: accounts and tokens come back
        before the stores whose checks may consult them.  The shadow
        store is listed (gauges, clones) but is volatile — snapshots and
        journals skip it.
        """
        return {
            "accounts": self.accounts,
            "tokens": self.tokens,
            "devices": self.registry,
            "bindings": self.bindings,
            "shares": self.shares,
            "shadows": self.shadows,
            "relay": self.relay,
            "events": self.events,
            "forensics": self.forensics,
        }

    def state_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-store ``{records, mutations}`` numbers (metrics/reports)."""
        return {
            name: store.merge_counts() for name, store in self.state_stores().items()
        }

    def emit_state_gauges(self) -> None:
        """Publish per-store size and churn through the observer seam."""
        for name, counts in self.state_counts().items():
            self._observer.gauge(f"cloud.state.{name}.records", counts["records"])
            self._observer.count(
                "cloud.state.mutations", counts["mutations"], store=name
            )

    def attach_journal(self, backend: StateBackend, write_meta: bool = True) -> None:
        """Route every durable store mutation into *backend*.

        A fresh (empty) backend gets the self-describing ``_meta`` header
        first; recovery re-attaches with ``write_meta=False`` because the
        surviving journal already carries one.
        """
        self._journal_backend = backend
        if write_meta and backend.entry_count() == 0:
            backend.append(meta_entry(self.design.name))
        for store in self.state_stores().values():
            store.bind_journal(backend.append)

    def detach_journal(self) -> None:
        """Stop journaling (the backend keeps its entries)."""
        self._journal_backend = None
        for store in self.state_stores().values():
            store.bind_journal(None)

    @property
    def journal_backend(self) -> Optional[StateBackend]:
        """The attached journal backend, if any."""
        return self._journal_backend

    # -- campaign warm start -------------------------------------------------

    def capture_campaign_state(self) -> Dict[str, Any]:
        """Everything needed to resume this cloud mid-run, as picklable data.

        Snapshot v2 is the durable core, but a *restart* deliberately
        sheds state a *warm start* must keep: live shadows (a restart is
        a mass-offline event), relay queues/telemetry, the enumeration
        defence counters, the full audit log, the token RNG's stream
        position, per-store churn counters, and the liveness sweep's
        phase.  This captures the durable snapshot plus those overlays;
        :meth:`restore_campaign_state` reinstalls both halves.
        """
        return {
            "snapshot": build_snapshot(self),
            "shadows": self.shadows.snapshot_state(),
            "relay_volatile": self.relay.capture_volatile(),
            "bind_probe_failures": dict(self.bind_probe_failures),
            "audit_entries": list(self.audit.entries),
            "token_rng": self.tokens.rng_state(),
            "mutations": {
                name: store.merge_counts()["mutations"]
                for name, store in self.state_stores().items()
            },
            "sweep_next": (
                self._sweep_handle.time if self._sweep_handle is not None else None
            ),
            "time": self.now,
        }

    def restore_campaign_state(self, state: Dict[str, Any]) -> None:
        """Resume a captured world image on this freshly built cloud.

        The fast path behind warm-started campaign shards: unlike
        :func:`~repro.cloud.state.snapshot.load_snapshot` (a *restart*,
        which demands a pristine cloud and sheds volatile state), this
        overlays the image onto a structurally rebuilt world — the
        rebuild's records (accounts registered at t=0, manufactured
        devices) are an identical subset of the image's, so every
        restore is an idempotent upsert.  After it returns, the next
        request this cloud serves is bit-identical to what the captured
        cloud would have produced: same store contents, same shadow
        states, same audit history, same token stream position, same
        churn counters, same sweep phase.
        """
        snapshot = state["snapshot"]
        design = snapshot.get("design")
        if design != self.design.name:
            raise ConfigurationError(
                f"world image is for design {design!r}, not {self.design.name!r}"
            )
        # Silence the constructor-armed sweep before moving the clock:
        # its pending entry sits at build-time + interval, which may be
        # in the restored world's past.
        self._sweep_active = False
        if self._sweep_handle is not None:
            self._sweep_handle.cancel()
            self._sweep_handle = None
        self.env.clock.advance_to(state["time"])
        # Durable stores: upsert overlay in store order (accounts and
        # tokens before the stores whose checks consult them).
        sections = snapshot.get("stores", {})
        stores = self.state_stores()
        for name, store in stores.items():
            if not store.durable:
                continue
            store.restore_state(sections.get(name, []))
        # Live (not mass-offline) shadows: apply_record re-creates each
        # shadow through create() — observer hook wired — and replays
        # its captured facts.
        self.shadows.restore_state(state["shadows"])
        self.relay.restore_volatile(state["relay_volatile"])
        self.bind_probe_failures = dict(state["bind_probe_failures"])
        # Audit history is installed directly, NOT re-record()ed: the
        # observer's audit counters are restored wholesale from the
        # image's metrics snapshot by the fleet-level restore, so firing
        # on_audit here would double-count.
        self.audit.entries = list(state["audit_entries"])
        self.tokens.restore_rng_state(state["token_rng"])
        # Replaying records as upserts inflated every churn counter;
        # rewind each to the captured value.
        for name, mutations in state["mutations"].items():
            stores[name].set_mutation_count(mutations)
        sweep_next = state.get("sweep_next")
        if sweep_next is not None:
            self.start_liveness_sweep(start_delay=sweep_next - self.now)

    # -- vendor-side provisioning ------------------------------------------------

    def manufacture_device(
        self, device_id: str, model: str, public_key: Optional[PublicKey] = None
    ) -> DeviceShadow:
        """Register a manufactured device and create its shadow."""
        self.registry.manufacture(device_id, model, public_key)
        return self.shadows.create(device_id)

    # -- notifications -----------------------------------------------------------

    def notify(self, user_id: str, kind: str, device_id: str, detail: str = "") -> None:
        """Emit a user event if this vendor runs a notification feed."""
        if self.design.notifies_user:
            self.events.emit(user_id, UserEvent(self.now, kind, device_id, detail))

    # -- request dispatch -----------------------------------------------------------

    def handle_packet(self, packet: Packet) -> Message:
        """Network entry point: dispatch by message type, audit everything.

        Binding-affecting messages additionally land on the forensic
        timeline — on both outcomes — with the pre-dispatch binding
        owner and claimed actor captured here, where the request's
        before/after states are both visible.
        """
        # NULL_OBSERVER fast path: skip the profile() context-manager
        # allocation — and all RED timing below — entirely (precomputed
        # boolean, not a no-op call).
        if self._observed:
            with self._observer.profile("cloud.handle_packet"):
                return self._handle_observed(packet)
        return self._handle_and_record(packet)

    def _handle_observed(self, packet: Packet) -> Message:
        """Observed-path dispatch: RED-time the request around handling.

        Rejections are requests the cloud *served* (denying an attacker
        is correct behaviour): they are RED errors keyed by rejection
        code, not availability failures, so the exception re-raises
        after recording.
        """
        action = _ENDPOINT_ACTIONS.get(type(packet.message))
        if action is None:
            return self._handle_and_record(packet)
        trace = packet.trace
        trace_id = trace.trace_id if trace is not None else ""
        design = self.design.name
        started = perf_counter_ns()
        try:
            response = self._handle_and_record(packet)
        except RequestRejected as exc:
            self._observer.on_request(
                design, action, exc.code,
                perf_counter_ns() - started, trace_id, self.now,
            )
            raise
        self._observer.on_request(
            design, action, "ok", perf_counter_ns() - started, trace_id, self.now
        )
        return response

    def _handle_and_record(self, packet: Packet) -> Message:
        """Dispatch one packet, auditing and (when watched) evidencing it."""
        message = packet.message
        trace_id = packet.trace.trace_id if packet.trace is not None else ""
        forensic_kind = _FORENSIC_KINDS.get(type(message))
        bound_before = ""
        actor = ""
        if forensic_kind is not None:
            device_id = getattr(message, "device_id", None) or ""
            if device_id:
                bound_before = self.bindings.bound_user(device_id) or ""
            actor = self._claimed_actor(message)
        try:
            response = self._dispatch(packet, message)
        except RequestRejected as exc:
            decision_trace = self._collect_decision_trace()
            self.audit.record(
                self.now,
                packet.src,
                str(packet.observed_src_ip),
                describe(message),
                exc.code,
                exc.detail,
                trace_id,
            )
            if forensic_kind is not None:
                self._record_forensic(
                    packet, forensic_kind, exc.code, actor, bound_before,
                    decision_trace=decision_trace,
                )
            raise
        decision_trace = self._collect_decision_trace()
        self.audit.record(
            self.now,
            packet.src,
            str(packet.observed_src_ip),
            describe(message),
            trace_id=trace_id,
        )
        if forensic_kind is not None:
            replaced = isinstance(response, Response) and bool(
                response.payload.get("replaced", False)
            )
            self._record_forensic(
                packet, forensic_kind, "ok", actor, bound_before, replaced,
                decision_trace=decision_trace,
            )
        return response

    def _collect_decision_trace(self) -> str:
        """Collect the PDP's decision for the exchange just dispatched.

        Runs *before* the exchange's audit entry is recorded so a real
        observer can attach the rule trace to that entry's evidence;
        returns the compact trace for the forensic event.  The trace
        string is only rendered when someone is watching — a real
        observer or a live forensic sink — so uninstrumented runs keep
        the null-observer fast path.
        """
        decision = self.pdp.take_last_decision()
        if decision is None:
            return ""
        if self._observed:
            self._observer.on_authz_decision(decision)
        elif not self.forensics.has_sinks():
            return ""
        return decision.trace()

    def _claimed_actor(self, message: Message) -> str:
        """The identity a watched message claims, without enforcing it.

        Resolution is strictly read-only (token table lookups): a user
        token maps to its account, device-submitted credentials name
        their user, a capability BindToken names its subject, and pure
        device-credential messages claim the device id itself.
        """
        user_token = getattr(message, "user_token", None)
        if user_token is not None:
            return self.accounts.user_for_token(user_token) or ""
        user_id = getattr(message, "user_id", None)
        if user_id is not None:
            return user_id
        bind_token = getattr(message, "bind_token", None)
        if bind_token is not None:
            record = self.tokens.lookup(bind_token, TokenKind.BIND)
            return record.subject if record is not None else ""
        return getattr(message, "device_id", None) or ""

    def _record_forensic(
        self,
        packet: Packet,
        kind: str,
        outcome: str,
        actor: str,
        bound_before: str,
        replaced: bool = False,
        decision_trace: str = "",
    ) -> None:
        """Append one event to the forensic timeline (always on)."""
        trace = packet.trace
        self.forensics.record(
            time=self.now,
            device_id=getattr(packet.message, "device_id", None) or "",
            kind=kind,
            summary=describe(packet.message),
            source=packet.src,
            origin_ip=str(packet.observed_src_ip),
            trace_id=trace.trace_id if trace is not None else "",
            span_id=trace.span_id if trace is not None else "",
            outcome=outcome,
            actor=actor,
            bound_before=bound_before,
            replaced=replaced,
            decision_trace=decision_trace,
        )

    def _dispatch(self, packet: Packet, message: Message) -> Message:
        handler = self._dispatch_table.get(type(message))
        if handler is None:
            raise ProtocolError(f"cloud has no endpoint for {type(message).__name__}")
        return handler(packet, message)

    # -- convenience accessors for experiments/tests ------------------------------

    def shadow_state(self, device_id: str) -> str:
        return self.shadows.get(device_id).state.value

    def bound_user_of(self, device_id: str) -> Optional[str]:
        return self.bindings.bound_user(device_id)
