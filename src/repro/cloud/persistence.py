"""Cloud state persistence: snapshot and restore.

A production IoT cloud restarts without dropping its customers'
bindings; this module gives the simulated cloud the same property.  A
snapshot is a plain JSON-able dict covering accounts, the device
registry (including live DevTokens), bindings, shares, shadows and the
relay's durable state (schedules — queued commands and telemetry are
deliberately volatile, like any in-memory queue).

The interesting consequence for the paper's model: a cloud restart is a
*mass offline event* — every shadow that was online drops to its
offline state (Figure 2's timeout arcs), and devices re-enter via their
next heartbeat.  ``tests/test_cloud_persistence.py`` verifies that the
restart is invisible to bound users apart from that blip.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.cloud.service import CloudService
from repro.core.errors import ConfigurationError

SNAPSHOT_VERSION = 1


def snapshot(cloud: CloudService) -> Dict[str, Any]:
    """Serialize the cloud's durable state."""
    return {
        "version": SNAPSHOT_VERSION,
        "design": cloud.design.name,
        "time": cloud.now,
        "accounts": [
            {
                "user_id": account.user_id,
                "salt": account.salt,
                "password_digest": account.password_digest,
                "created_at": account.created_at,
            }
            for account in cloud.accounts._accounts.values()
        ],
        "tokens": cloud.tokens.export_records(),
        "devices": [
            {
                "device_id": record.device_id,
                "model": record.model,
                "dev_token": record.dev_token,
                "dev_token_requested_by": record.dev_token_requested_by,
                # Public keys persist like any registry column.  (The
                # simulated "public key" carries the HMAC material, see
                # repro.identity.keys — a real cloud would store the
                # actual public key here.)
                "public_key": (
                    {"key_id": record.public_key.key_id,
                     "material": record.public_key._secret.decode("ascii")}
                    if record.public_key is not None
                    else None
                ),
            }
            for record in cloud.registry._devices.values()
        ],
        "bindings": [
            {
                "device_id": binding.device_id,
                "user_id": binding.user_id,
                "created_at": binding.created_at,
                "post_token": binding.post_token,
                "device_confirmed": binding.device_confirmed,
            }
            for binding in cloud.bindings._by_device.values()
        ],
        "shares": [
            {
                "device_id": grant.device_id,
                "owner": grant.owner,
                "grantee": grant.grantee,
                "granted_at": grant.granted_at,
            }
            for grants in cloud.shares._by_device.values()
            for grant in grants.values()
        ],
        "schedules": {
            device_id: dict(schedule)
            for device_id, schedule in cloud.relay._schedules.items()
        },
    }


def snapshot_json(cloud: CloudService) -> str:
    """The snapshot as a JSON document (what would hit durable storage)."""
    return json.dumps(snapshot(cloud), sort_keys=True)


def restore(cloud: CloudService, data: Dict[str, Any]) -> None:
    """Load a snapshot into a *fresh* cloud for the same vendor design.

    Shadows restart in their offline states (the restart killed every
    connection); bound shadows come back as ``bound``, everything else
    as ``initial``.  Devices re-authenticate on their next heartbeat.
    """
    if data.get("version") != SNAPSHOT_VERSION:
        raise ConfigurationError(f"unsupported snapshot version {data.get('version')!r}")
    if data.get("design") != cloud.design.name:
        raise ConfigurationError(
            f"snapshot is for design {data.get('design')!r}, "
            f"not {cloud.design.name!r}"
        )
    if cloud.accounts._accounts or cloud.bindings.count():
        raise ConfigurationError("restore requires a fresh cloud instance")

    from repro.cloud.accounts import Account

    for item in data["accounts"]:
        cloud.accounts._accounts[item["user_id"]] = Account(
            item["user_id"], item["salt"], item["password_digest"], item["created_at"]
        )
    cloud.tokens.import_records(data["tokens"])
    from repro.identity.keys import PublicKey

    for item in data["devices"]:
        public_key = None
        if item.get("public_key"):
            public_key = PublicKey(
                item["public_key"]["key_id"],
                item["public_key"]["material"].encode("ascii"),
            )
        record = cloud.registry.manufacture(
            item["device_id"], item["model"], public_key
        )
        record.dev_token = item["dev_token"]
        record.dev_token_requested_by = item["dev_token_requested_by"]
        cloud.shadows.create(item["device_id"])
    for item in data["bindings"]:
        binding = cloud.bindings.create(
            item["device_id"], item["user_id"], item["created_at"],
            post_token=item["post_token"],
        )
        binding.device_confirmed = item["device_confirmed"]
        shadow = cloud.shadows.get(item["device_id"])
        shadow.mark_bound(item["user_id"], cloud.now)  # offline+bound = "bound"
    for item in data["shares"]:
        cloud.shares.grant(
            item["device_id"], item["owner"], item["grantee"], item["granted_at"]
        )
    for device_id, schedule in data["schedules"].items():
        cloud.relay.set_schedule(device_id, schedule)
