"""Cloud state persistence: snapshot and restore (now snapshot v2).

A production IoT cloud restarts without dropping its customers'
bindings; this module gives the simulated cloud the same property.
Since the unified state layer landed, the heavy lifting lives in
:mod:`repro.cloud.state.snapshot`: every durable store serializes its
own records under its ``state_name`` section, and this module keeps the
stable ``snapshot`` / ``snapshot_json`` / ``restore`` entry points the
tests and experiments already use.  v1 snapshots (the hand-enumerated
format this module used to produce) still load through the migration
shim.

The interesting consequence for the paper's model is unchanged: a cloud
restart is a *mass offline event* — every shadow that was online drops
to its offline state (Figure 2's timeout arcs), and devices re-enter
via their next heartbeat.  ``tests/test_cloud_persistence.py`` verifies
that the restart is invisible to bound users apart from that blip.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.cloud.service import CloudService
from repro.cloud.state.snapshot import SNAPSHOT_VERSION, build_snapshot, load_snapshot

__all__ = ["SNAPSHOT_VERSION", "snapshot", "snapshot_json", "restore"]


def snapshot(cloud: CloudService) -> Dict[str, Any]:
    """Serialize the cloud's durable state (self-describing v2 dict)."""
    return build_snapshot(cloud)


def snapshot_json(cloud: CloudService) -> str:
    """The snapshot as a JSON document (what would hit durable storage).

    Records are key-sorted by their stores and objects are serialized
    with ``sort_keys``, so save -> load -> save is byte-identical.
    """
    return json.dumps(snapshot(cloud), sort_keys=True)


def restore(cloud: CloudService, data: Dict[str, Any]) -> None:
    """Load a (v1 or v2) snapshot into a *fresh* cloud of the same design.

    Shadows restart in their offline states (the restart killed every
    connection); bound shadows come back as ``bound``, everything else
    as ``initial``.  Devices re-authenticate on their next heartbeat.
    """
    load_snapshot(cloud, data)
