"""Declarative authorization policy: a vendor design as *data*.

A :class:`PolicySpec` is an ordered list of :class:`RuleRef`\\ s per
endpoint action — nothing else.  Every one of the paper's ten vendors
and the three secure baselines compiles to one
(:meth:`PolicySpec.from_design`); synthetic design-space points compile
the same way, which is what lets ``repro designs enumerate`` sweep
thousands of policies without touching handler code.

Specs round-trip losslessly through plain JSON data
(:meth:`PolicySpec.to_data` / :meth:`PolicySpec.from_data`) and are
checked by :func:`validate_spec` before a
:class:`~repro.cloud.pdp.engine.PolicyDecisionPoint` will evaluate
them: unknown actions or rules, malformed parameters, rules unreachable
behind an unconditional ``deny``, and rule lists whose dataflow is
inconsistent (a rule evaluated before anything resolved the fact it
needs; an endpoint that can allow without resolving the facts its
enforcement point must have) are all rejected as
:class:`PolicySpecError`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.cloud.pdp.model import ACTIONS
from repro.cloud.pdp.rules import DENY_KINDS, RULES
from repro.cloud.policy import BindSchema, DeviceAuthMode, VendorDesign
from repro.core.errors import ConfigurationError


class PolicySpecError(ConfigurationError):
    """A policy spec is structurally malformed."""


#: scalar parameter type checks (bool is not an int here)
_TYPE_CHECKS = {
    "str": lambda v: isinstance(v, str),
    "bool": lambda v: isinstance(v, bool),
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
}

#: per-parameter value vocabularies/ranges beyond the scalar type
_VALUE_CHECKS = {
    ("deny", "kind"): lambda v: v in DENY_KINDS,
    ("require-bind-principal", "sender"): lambda v: v in ("app", "device"),
    ("authenticate-device", "mode"): lambda v: v in ("DevId", "DevToken", "PubKey"),
    ("limit-bind-probes", "limit"): lambda v: v >= 1,
    ("require-fresh-same-ip-registration", "window"): lambda v: v > 0,
}

#: facts an action's rule list must have resolved by the time it can
#: allow — what the enforcement point's mutation step consumes.
ACTION_REQUIRES: Dict[str, Tuple[str, ...]] = {
    "login": (),
    "dev-token": ("user", "registered"),
    "bind-token": ("user",),
    "status": ("device",),
    "bind": ("user", "registered", "bind-resolution"),
    "unbind": ("registered", "binding", "revocation"),
    "control": ("access", "online"),
    "schedule": ("owner",),
    "query": ("access",),
    "binding-info": ("owner",),
    "event-poll": ("user",),
    "share": ("owner", "grantee"),
    "share-revoke": ("owner",),
    "fetch": ("device",),
}


class RuleRef:
    """One spec entry: a rule name plus its parameter values."""

    __slots__ = ("rule", "params")

    def __init__(self, rule: str, params: Optional[Mapping[str, Any]] = None) -> None:
        self.rule = rule
        self.params: Dict[str, Any] = dict(params or {})

    def to_data(self) -> Dict[str, Any]:
        """Plain-data form (rule name; params only when present)."""
        data: Dict[str, Any] = {"rule": self.rule}
        if self.params:
            data["params"] = dict(self.params)
        return data

    def render(self) -> str:
        """Compact one-line rendering for CLI/describe output."""
        if not self.params:
            return self.rule
        args = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{self.rule}({args})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RuleRef({self.render()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RuleRef):
            return NotImplemented
        return self.rule == other.rule and self.params == other.params

    def __hash__(self) -> int:
        return hash((self.rule, tuple(sorted(self.params.items()))))


class PolicySpec:
    """One complete authorization policy: ordered rules per action."""

    __slots__ = ("name", "actions")

    def __init__(self, name: str, actions: Mapping[str, List[RuleRef]]) -> None:
        self.name = name
        self.actions: Dict[str, Tuple[RuleRef, ...]] = {
            action: tuple(rules) for action, rules in actions.items()
        }

    # -- data round-trip -----------------------------------------------------

    def to_data(self) -> Dict[str, Any]:
        """The spec as plain JSON-able data (the canonical form)."""
        return {
            "name": self.name,
            "actions": {
                action: [ref.to_data() for ref in self.actions[action]]
                for action in ACTIONS
                if action in self.actions
            },
        }

    @classmethod
    def from_data(cls, data: Mapping[str, Any]) -> "PolicySpec":
        """Load and validate a spec from plain data (e.g. parsed JSON)."""
        if not isinstance(data, Mapping):
            raise PolicySpecError("policy spec must be a mapping")
        name = data.get("name")
        actions_data = data.get("actions")
        if not isinstance(name, str) or not name:
            raise PolicySpecError("policy spec needs a non-empty 'name'")
        if not isinstance(actions_data, Mapping):
            raise PolicySpecError(f"{name}: 'actions' must be a mapping")
        actions: Dict[str, List[RuleRef]] = {}
        for action, refs in actions_data.items():
            if not isinstance(refs, (list, tuple)):
                raise PolicySpecError(f"{name}.{action}: rule list must be a list")
            rules = []
            for ref in refs:
                if not isinstance(ref, Mapping) or "rule" not in ref:
                    raise PolicySpecError(
                        f"{name}.{action}: each entry needs a 'rule' key"
                    )
                params = ref.get("params", {})
                if not isinstance(params, Mapping):
                    raise PolicySpecError(
                        f"{name}.{action}.{ref['rule']}: params must be a mapping"
                    )
                rules.append(RuleRef(ref["rule"], params))
            actions[action] = rules
        spec = cls(name, actions)
        validate_spec(spec)
        return spec

    def digest(self) -> str:
        """sha256 of the canonical JSON form (spec identity/distinctness)."""
        canonical = json.dumps(self.to_data(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PolicySpec):
            return NotImplemented
        return self.to_data() == other.to_data()

    def __hash__(self) -> int:
        return hash(self.digest())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rules = sum(len(refs) for refs in self.actions.values())
        return f"PolicySpec({self.name!r}, {len(self.actions)} actions, {rules} rules)"

    # -- compilation from the knob space -------------------------------------

    @classmethod
    def from_design(cls, design: VendorDesign) -> "PolicySpec":
        """Compile a :class:`VendorDesign`'s knobs into declarative rules.

        The compiled spec preserves the exact check *order* the paper's
        endpoint walkthroughs establish (and the pre-PDP handlers
        implemented inline), so decisions — and their cache hit/miss
        sequences — are bit-identical to the branching code it replaces.
        """
        mode = design.device_auth.value
        capability = design.bind_schema is BindSchema.CAPABILITY
        actions: Dict[str, List[RuleRef]] = {}

        actions["login"] = [RuleRef("allow")]

        if design.device_auth is DeviceAuthMode.DEV_TOKEN:
            actions["dev-token"] = [
                RuleRef("require-user"),
                RuleRef("require-registered-device"),
                RuleRef("require-unbound-or-owner"),
            ]
        else:
            actions["dev-token"] = [RuleRef("deny", {
                "code": "unsupported",
                "detail": "this vendor does not use DevTokens",
            })]

        if capability:
            actions["bind-token"] = [RuleRef("require-user")]
            actions["bind"] = [
                RuleRef("require-bind-capability"),
                RuleRef("require-registered-device"),
                RuleRef("require-device-channel"),
                RuleRef("require-unbound"),
            ]
        else:
            actions["bind-token"] = [RuleRef("deny", {
                "code": "unsupported",
                "detail": "this vendor does not use BindTokens",
            })]
            bind = [RuleRef("require-bind-principal",
                            {"sender": design.bind_sender.value})]
            if design.bind_probe_rate_limit is not None:
                bind.append(RuleRef("limit-bind-probes",
                                    {"limit": design.bind_probe_rate_limit}))
                bind.append(RuleRef("require-registered-device",
                                    {"count_probe_failures": True}))
            else:
                bind.append(RuleRef("require-registered-device"))
            if design.ip_match_required:
                bind.append(RuleRef("require-fresh-same-ip-registration",
                                    {"window": design.bind_window_seconds}))
            if design.bind_requires_online_device:
                bind.append(RuleRef("require-online-device"))
            bind.append(RuleRef("check-rebind",
                                {"replaces": design.rebind_replaces_existing}))
            actions["bind"] = bind

        if design.unbind_supported:
            actions["unbind"] = [
                RuleRef("require-registered-device"),
                RuleRef("require-existing-binding"),
                RuleRef("authorize-revocation", {
                    "accepts_bare_dev_id": design.unbind_accepts_bare_dev_id,
                    "checks_bound_user": design.unbind_checks_bound_user,
                }),
            ]
        else:
            actions["unbind"] = [RuleRef("deny", {
                "code": "unbind-unsupported",
                "detail": "vendor has no revocation endpoint",
            })]

        actions["status"] = [RuleRef("authenticate-device", {"mode": mode})]
        actions["fetch"] = [RuleRef("authenticate-device", {"mode": mode})]

        control = [RuleRef("require-device-access"), RuleRef("require-online-shadow")]
        if design.post_binding_token:
            control.append(RuleRef("require-post-binding-token"))
        actions["control"] = control

        actions["query"] = [RuleRef("require-device-access")]
        actions["schedule"] = [RuleRef("require-bound-user")]
        actions["binding-info"] = [RuleRef("require-bound-user")]
        actions["event-poll"] = [RuleRef("require-user")]
        actions["share"] = [RuleRef("require-bound-user"),
                            RuleRef("require-known-grantee")]
        actions["share-revoke"] = [RuleRef("require-bound-user")]

        return cls(design.name, actions)


def validate_spec(spec: PolicySpec) -> None:
    """Reject structurally malformed specs (see module docstring)."""
    if not spec.name:
        raise PolicySpecError("policy spec needs a non-empty name")
    missing = set(ACTIONS) - set(spec.actions)
    if missing:
        raise PolicySpecError(
            f"{spec.name}: no rules for action(s) {sorted(missing)}"
        )
    unknown = set(spec.actions) - set(ACTIONS)
    if unknown:
        raise PolicySpecError(
            f"{spec.name}: unknown action(s) {sorted(unknown)}"
        )
    for action in ACTIONS:
        _validate_action(spec.name, action, spec.actions[action])


def _validate_action(name: str, action: str, refs: Tuple[RuleRef, ...]) -> None:
    where = f"{name}.{action}"
    if not refs:
        raise PolicySpecError(f"{where}: empty rule list")
    provided: set = set()
    terminated = False
    for ref in refs:
        if terminated:
            raise PolicySpecError(
                f"{where}: rule {ref.rule!r} is unreachable after a 'deny'"
            )
        rule = RULES.get(ref.rule)
        if rule is None:
            raise PolicySpecError(f"{where}: unknown rule {ref.rule!r}")
        _validate_params(where, ref, rule)
        needs = set(rule.needs)
        if ref.params.get("count_probe_failures"):
            # The deny-path obligation charges the resolved account.
            needs.add("user")
        unmet = needs - provided
        if unmet:
            raise PolicySpecError(
                f"{where}: rule {ref.rule!r} needs {sorted(unmet)} "
                "but no earlier rule provides it"
            )
        provided |= rule.provides
        terminated = rule.terminal
    if not terminated:
        required = set(ACTION_REQUIRES[action])
        unmet = required - provided
        if unmet:
            raise PolicySpecError(
                f"{where}: an allowing decision would leave {sorted(unmet)} "
                "unresolved for the enforcement point"
            )


def _validate_params(where: str, ref: RuleRef, rule: Any) -> None:
    unknown = set(ref.params) - set(rule.params)
    if unknown:
        raise PolicySpecError(
            f"{where}.{ref.rule}: unknown param(s) {sorted(unknown)}"
        )
    absent = rule.required - set(ref.params)
    if absent:
        raise PolicySpecError(
            f"{where}.{ref.rule}: missing required param(s) {sorted(absent)}"
        )
    for key, value in ref.params.items():
        kind = rule.params[key]
        if not _TYPE_CHECKS[kind](value):
            raise PolicySpecError(
                f"{where}.{ref.rule}.{key}: expected {kind}, got {value!r}"
            )
        check = _VALUE_CHECKS.get((ref.rule, key))
        if check is not None and not check(value):
            raise PolicySpecError(
                f"{where}.{ref.rule}.{key}: value {value!r} out of range"
            )
