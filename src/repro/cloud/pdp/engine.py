"""The policy decision point: one evaluator for every endpoint.

A :class:`PolicyDecisionPoint` binds a validated
:class:`~repro.cloud.pdp.spec.PolicySpec` to one cloud's stores and
answers :class:`~repro.cloud.pdp.model.AuthzRequest`\\ s with
:class:`~repro.cloud.pdp.model.Decision`\\ s.  Rule lists are compiled
to ``(name, impl, params)`` tuples at construction so the per-request
loop does no registry lookups; evaluation stops at the first denial
(exactly where the inline handler would have raised).

The decision most recently produced is retained until
:meth:`take_last_decision` collects it — the service's audit/forensic
recording step runs *after* dispatch returns and uses this to attach
the rule trace to the exchange's evidence without threading decisions
through every handler signature.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Dict, Optional, Tuple

from repro.cloud.pdp.model import AuthzRequest, Decision, RuleEval
from repro.cloud.pdp.rules import RULES, EvalContext
from repro.cloud.pdp.spec import PolicySpec, validate_spec


class PolicyDecisionPoint:
    """Evaluates one cloud's :class:`PolicySpec` over its live stores."""

    __slots__ = ("service", "spec", "_compiled", "_last")

    def __init__(self, service: Any, spec: PolicySpec) -> None:
        validate_spec(spec)
        self.service = service
        self.spec = spec
        #: per-rule entries ``(name, impl, params, shared pass-eval)`` —
        #: the pass-side :class:`RuleEval` is immutable, so one instance
        #: per compiled rule serves every decision without allocating
        self._compiled: Dict[str, Tuple[Tuple[str, Any, Dict[str, Any], RuleEval], ...]] = {
            action: tuple(
                (ref.rule, RULES[ref.rule].impl, dict(ref.params),
                 RuleEval(ref.rule, "pass"))
                for ref in refs
            )
            for action, refs in spec.actions.items()
        }
        self._last: Optional[Decision] = None

    def decide(self, request: AuthzRequest) -> Decision:
        """Evaluate *request* against its action's rule list, in order.

        On observed runs (the service's precomputed fast-path flag) the
        evaluation is wall-clock timed and reported through
        ``Observer.on_pdp_decide`` — authorization-cache hits inside
        the rule primitives show up as faster evaluations, so the
        sketch captures the cache's hot-path win directly.  The calm
        path pays one attribute read and a branch.
        """
        if getattr(self.service, "_observed", False):
            started = perf_counter_ns()
            decision = self._decide(request)
            self.service._observer.on_pdp_decide(
                request.action, perf_counter_ns() - started
            )
            return decision
        return self._decide(request)

    def _decide(self, request: AuthzRequest) -> Decision:
        ctx = EvalContext(self.service, request)
        evaluations = []
        for name, impl, params, passed in self._compiled[request.action]:
            rejection = impl(ctx, params)
            if rejection is not None:
                evaluations.append(
                    RuleEval(name, "deny", getattr(rejection, "code", ""))
                )
                obligations = ctx.obligations
                return self._finish(Decision(
                    False, rejection, tuple(evaluations),
                    tuple(obligations) if obligations else (), ctx.out,
                ))
            evaluations.append(passed)
        obligations = ctx.obligations
        return self._finish(Decision(
            True, None, tuple(evaluations),
            tuple(obligations) if obligations else (), ctx.out,
        ))

    def take_last_decision(self) -> Optional[Decision]:
        """Collect (and clear) the decision of the most recent request."""
        decision = self._last
        self._last = None
        return decision

    def _finish(self, decision: Decision) -> Decision:
        self._last = decision
        return decision
