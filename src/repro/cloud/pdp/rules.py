"""The PDP rule vocabulary.

Every check the paper found present or absent in a studied cloud is one
named rule here: a pure predicate over the cloud's stores that either
passes (optionally publishing resolved facts into the evaluation
context) or returns the exact rejection the inline handler used to
raise.  A :class:`~repro.cloud.pdp.spec.PolicySpec` is an ordered list
of :class:`RuleRef`\\ s per endpoint action; the vocabulary below is the
complete set a spec may reference.

The recurring read-only questions (token -> user, device credential
check, user-may-touch-device) are answered through one shared
memoization skeleton, :func:`cached_decision`, over the cloud's
:class:`~repro.cloud.authz.AuthorizationCache` — the PR 7 cache
subsumed intact: same keys, same lookup/store sequence, same
epoch-invalidation semantics, so hit/miss counts are bit-identical to
the pre-PDP handlers.

Each rule declares a parameter schema plus the facts it *needs* and
*provides*; the spec validator threads those through the rule list, so
a spec that evaluates a fact before anything resolved it is rejected as
malformed rather than failing at decision time.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Mapping, Optional, Tuple

from repro.cloud.authz import CACHEABLE_REJECTIONS, MISS, unwrap
from repro.core.errors import (
    AuthenticationFailed,
    AuthorizationFailed,
    BindingConflict,
    RequestRejected,
    UnknownDevice,
)
from repro.cloud.pdp.model import AuthzRequest
from repro.identity.tokens import TokenKind

#: rejection-class vocabulary for the declarative ``deny`` rule
DENY_KINDS: Dict[str, type] = {
    "rejected": RequestRejected,
    "authn": AuthenticationFailed,
    "authz": AuthorizationFailed,
    "conflict": BindingConflict,
}


class EvalContext:
    """Mutable per-decision scratchpad shared by the rules.

    ``out`` accumulates resolved facts (the authenticated user, the live
    binding, ...) that later rules and the enforcement point consume;
    ``obligations`` accumulates deny-path side effects the enforcement
    point must apply before raising.
    """

    __slots__ = ("service", "request", "out", "obligations")

    def __init__(self, service: Any, request: AuthzRequest) -> None:
        self.service = service
        self.request = request
        self.out: Dict[str, Any] = {}
        #: lazily created — most decisions carry no obligations, so the
        #: hot path skips the list allocation entirely
        self.obligations: Optional[list] = None

    def oblige(self, kind: str, argument: Any) -> None:
        """Record one deny-path side effect for the enforcement point."""
        if self.obligations is None:
            self.obligations = []
        self.obligations.append((kind, argument))


def cached_decision(service: Any, key: tuple, compute: Callable[[], Any]) -> Any:
    """Version-guarded memoization skeleton for pure decisions.

    The one shared code path behind every cached authorization
    primitive (deduplicating what ``_require_user`` /
    ``_require_bound_user`` / ``_require_access`` each hand-rolled):
    look up *key*, unwrap a hit (re-raising a memoized rejection),
    otherwise run *compute* and memoize its value — or its cacheable
    rejection — under the current epoch.
    """
    cache = service.authz_cache
    value = cache.lookup(key)
    if value is not MISS:
        return unwrap(value)
    try:
        value = compute()
    except CACHEABLE_REJECTIONS as exc:
        cache.store_rejection(key, exc)
        raise
    cache.store(key, value)
    return value


def resolve_user(service: Any, user_token: Optional[str]) -> str:
    """Cached ``accounts.require_user`` (pure, version-guarded)."""
    return cached_decision(
        service,
        ("user", user_token),
        lambda: service.accounts.require_user(user_token),
    )


# ----------------------------------------------------------------------
# rule implementations
#
# Each takes (ctx, params) and returns None (pass) or the rejection the
# enforcement point must raise (deny).  Implementations are pure reads
# over the stores; the only side channels are ctx.out / ctx.obligations.
# ----------------------------------------------------------------------


def _rule_allow(ctx: EvalContext, params: Mapping[str, Any]) -> Optional[Exception]:
    """Unconditional pass (endpoints with no authorization question)."""
    return None


def _rule_deny(ctx: EvalContext, params: Mapping[str, Any]) -> Optional[Exception]:
    """Unconditional denial: the endpoint does not exist in this design."""
    cls = DENY_KINDS[params.get("kind", "rejected")]
    return cls(params["code"], params["detail"])


def _rule_require_user(ctx, params):
    """Resolve the presented UserToken to an account (cached)."""
    try:
        ctx.out["user"] = resolve_user(ctx.service, ctx.request.user_token)
    except AuthenticationFailed as exc:
        return exc
    return None


def _rule_require_bind_principal(ctx, params):
    """Authenticate whoever is asking to create the binding (Figure 4a/4b)."""
    svc = ctx.service
    message = ctx.request
    if params["sender"] == "device":
        # Figure 4b: the device submits the user's credentials, which
        # were delivered to it during local configuration.
        if message.user_id is None or message.user_pw is None:
            return RequestRejected(
                "bad-bind-format", "this vendor expects device-submitted credentials"
            )
        if not svc.accounts.check_password(message.user_id, message.user_pw):
            return AuthenticationFailed("bad-credentials", "device-submitted login failed")
        ctx.out["user"] = message.user_id
        return None
    if message.user_token is None:
        return RequestRejected(
            "bad-bind-format", "this vendor expects an app-submitted UserToken"
        )
    return _rule_require_user(ctx, params)


def _rule_limit_bind_probes(ctx, params):
    """Enumeration defence: lock out accounts probing unknown device IDs."""
    svc = ctx.service
    if svc.bind_probe_failures.get(ctx.out["user"], 0) >= params["limit"]:
        return RequestRejected(
            "rate-limited",
            "too many bind attempts for unknown devices from this account",
        )
    return None


def _rule_require_registered_device(ctx, params):
    """The targeted device ID must exist in the registry."""
    svc = ctx.service
    device_id = ctx.request.device_id
    if device_id is None or not svc.registry.is_registered(device_id):
        if params.get("count_probe_failures", False):
            ctx.oblige("count-bind-probe-failure", ctx.out["user"])
        return UnknownDevice(device_id or "<none>")
    return None


def _rule_require_fresh_same_ip_registration(ctx, params):
    """Device #7: bind only after a fresh button-press registration
    arriving from the same source IP as the app's request."""
    svc = ctx.service
    window = params["window"]
    mark = svc.shadows.registration_of(ctx.request.device_id)
    if mark is None or svc.now - mark.time > window:
        return BindingConflict(
            "no-fresh-registration",
            f"press the device button within {window:.0f}s",
        )
    if mark.source_ip != ctx.request.source_ip:
        return BindingConflict(
            "ip-mismatch",
            f"app at {ctx.request.source_ip} but device registered from {mark.source_ip}",
        )
    return None


def _rule_require_online_device(ctx, params):
    """Binding requires the device shadow to be online right now."""
    svc = ctx.service
    if not svc.shadows.get(ctx.request.device_id).is_online:
        return BindingConflict("device-offline", "binding requires an online device")
    return None


def _rule_check_rebind(ctx, params):
    """Resolve an existing binding: conflict, or replace (Type 3)."""
    svc = ctx.service
    device_id = ctx.request.device_id
    existing = svc.bindings.get(device_id)
    if existing is not None:
        if not params["replaces"]:
            return BindingConflict(
                "already-bound", f"device {device_id!r} is bound to another user"
            )
        ctx.out["replace"] = True
    return None


def _rule_require_bind_capability(ctx, params):
    """Figure 4c: the submitted BindToken must be live; it names the user."""
    svc = ctx.service
    record = svc.tokens.lookup(ctx.request.bind_token, TokenKind.BIND)
    if record is None:
        return AuthorizationFailed("bad-bind-token", "unknown or spent BindToken")
    ctx.out["bind_record"] = record
    ctx.out["user"] = record.subject
    return None


def _rule_require_device_channel(ctx, params):
    """Capability bindings are confirmed over the device's own connection."""
    svc = ctx.service
    shadow = svc.shadows.get(ctx.request.device_id)
    if not shadow.is_online or shadow.connection_id != ctx.request.source:
        return AuthenticationFailed(
            "device-not-authenticated",
            "capability bindings are confirmed over the device's own connection",
        )
    return None


def _rule_require_unbound(ctx, params):
    """Capability designs never replace: an existing binding blocks."""
    if ctx.service.bindings.is_bound(ctx.request.device_id):
        return BindingConflict("already-bound", "unbind first")
    return None


def _rule_require_existing_binding(ctx, params):
    """Revocation targets must actually be bound."""
    device_id = ctx.request.device_id
    binding = ctx.service.bindings.get(device_id)
    if binding is None:
        return BindingConflict("not-bound", f"device {device_id!r} has no binding")
    ctx.out["binding"] = binding
    return None


def _rule_authorize_revocation(ctx, params):
    """Section IV-C: who may revoke, per the design's unbind signature."""
    message = ctx.request
    if message.user_token is None:
        # Type 2: Unbind : DevId — anyone with the ID can revoke.
        if not params["accepts_bare_dev_id"]:
            return RequestRejected(
                "missing-user-token", "this vendor requires a UserToken to unbind"
            )
        return None
    # Type 1: Unbind : (DevId, UserToken)
    try:
        user = resolve_user(ctx.service, message.user_token)
    except AuthenticationFailed as exc:
        return exc
    ctx.out["user"] = user
    if params["checks_bound_user"] and ctx.out["binding"].user_id != user:
        return AuthorizationFailed("not-bound-user", "requester is not the bound user")
    return None


def _rule_require_unbound_or_owner(ctx, params):
    """DevToken issuance: only the bound user may mint for a bound device."""
    svc = ctx.service
    bound = svc.bindings.bound_user(ctx.request.device_id)
    if bound is not None and bound != ctx.out["user"]:
        return AuthorizationFailed("not-owner", "device is bound to another user")
    return None


def _rule_authenticate_device(ctx, params):
    """Figure 3: verify device identity per the design's mode.

    DevId and DevToken decisions depend only on (device_id, dev_token)
    plus registry/token state, so they are served from the authorization
    cache; PubKey verification covers the per-message *payload* and is
    always computed fresh.
    """
    svc = ctx.service
    message = ctx.request
    mode = params["mode"]

    def compute() -> str:
        device_id = message.device_id
        if device_id is None or not svc.registry.is_registered(device_id):
            raise AuthenticationFailed("unknown-device-id", str(device_id))
        if mode == "DevId":
            # Static identifier: possession of the ID *is* the identity.
            return device_id
        if mode == "DevToken":
            if not svc.registry.check_dev_token(device_id, message.dev_token):
                raise AuthenticationFailed("bad-dev-token", "stale or missing DevToken")
            return device_id
        record = svc.registry.get(device_id)
        if record.public_key is None:
            raise AuthenticationFailed("no-public-key", device_id)
        if message.signature is None or not record.public_key.verify(
            message.payload or {}, message.signature
        ):
            raise AuthenticationFailed("bad-signature", device_id)
        return device_id

    try:
        if mode == "PubKey":
            ctx.out["device"] = compute()
        else:
            ctx.out["device"] = cached_decision(
                svc, ("dev", message.device_id, message.dev_token), compute
            )
    except AuthenticationFailed as exc:
        return exc
    return None


def _rule_require_bound_user(ctx, params):
    """The requester must be the device's bound user (owner surfaces)."""
    svc = ctx.service
    message = ctx.request
    device_id = message.device_id

    def compute() -> str:
        user = resolve_user(svc, message.user_token)
        binding = svc.bindings.get(device_id)
        if binding is None:
            raise BindingConflict("not-bound", f"device {device_id!r} has no binding")
        if binding.user_id != user:
            raise AuthorizationFailed("not-bound-user", "requester is not the bound user")
        return user

    try:
        user = cached_decision(svc, ("owner", message.user_token, device_id), compute)
    except CACHEABLE_REJECTIONS as exc:
        return exc
    ctx.out["user"] = user
    # Same epoch => the binding row cannot have changed; re-fetch the
    # live object rather than caching a reference to it.
    ctx.out["binding"] = svc.bindings.get(device_id)
    ctx.out["is_owner"] = True
    return None


def _rule_require_device_access(ctx, params):
    """Owner *or* share-grantee access (control/query surfaces).

    Grants are explicit cloud-side authorizations created by the owner —
    never ambient authority — so they extend the binding without
    weakening it.
    """
    svc = ctx.service
    message = ctx.request
    device_id = message.device_id

    def compute() -> tuple:
        user = resolve_user(svc, message.user_token)
        binding = svc.bindings.get(device_id)
        if binding is None:
            raise BindingConflict("not-bound", f"device {device_id!r} has no binding")
        if binding.user_id == user:
            return user, True
        if svc.shares.is_granted(device_id, user):
            return user, False
        raise AuthorizationFailed("not-bound-user", "requester is not the bound user")

    try:
        user, is_owner = cached_decision(
            svc, ("access", message.user_token, device_id), compute
        )
    except CACHEABLE_REJECTIONS as exc:
        return exc
    ctx.out["user"] = user
    ctx.out["binding"] = svc.bindings.get(device_id)
    ctx.out["is_owner"] = is_owner
    return None


def _rule_require_online_shadow(ctx, params):
    """Control requires a currently connected device."""
    if not ctx.service.shadows.get(ctx.request.device_id).is_online:
        return RequestRejected("device-offline", "device is not connected")
    return None


def _rule_require_post_binding_token(ctx, params):
    """Section IV-B: the binding token pins the owner<->device pair.

    Grantees are authorized by their explicit grant instead, but the
    device side must still have confirmed the binding.
    """
    binding = ctx.out["binding"]
    if ctx.out["is_owner"] and ctx.request.post_binding_token != binding.post_token:
        return AuthorizationFailed("bad-post-token", "control requires the binding token")
    if not binding.device_confirmed:
        return AuthorizationFailed(
            "device-not-confirmed", "device never presented this binding's token"
        )
    return None


def _rule_require_known_grantee(ctx, params):
    """Shares can only be granted to accounts that exist."""
    grantee = ctx.request.grantee
    if not ctx.service.accounts.exists(grantee):
        return RequestRejected("unknown-grantee", grantee)
    return None


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------


class RuleDef:
    """One vocabulary entry: implementation + schema + dataflow contract.

    ``params`` maps each accepted parameter to a scalar type name
    (``str`` / ``int`` / ``float`` / ``bool``); ``required`` names the
    mandatory subset.  ``needs`` / ``provides`` declare which context
    facts the rule consumes and publishes — the spec validator threads
    them through each action's rule list.  ``terminal`` marks rules
    after which no rule is reachable (the unconditional ``deny``).
    """

    __slots__ = ("name", "impl", "params", "required", "needs", "provides",
                 "terminal", "doc")

    def __init__(
        self,
        name: str,
        impl: Callable[[EvalContext, Mapping[str, Any]], Optional[Exception]],
        params: Optional[Mapping[str, str]] = None,
        required: Tuple[str, ...] = (),
        needs: Tuple[str, ...] = (),
        provides: Tuple[str, ...] = (),
        terminal: bool = False,
    ) -> None:
        self.name = name
        self.impl = impl
        self.params: Dict[str, str] = dict(params or {})
        self.required: FrozenSet[str] = frozenset(required)
        self.needs: FrozenSet[str] = frozenset(needs)
        self.provides: FrozenSet[str] = frozenset(provides)
        self.terminal = terminal
        self.doc = (impl.__doc__ or "").strip().splitlines()[0]


#: name -> :class:`RuleDef`: the complete rule vocabulary.
RULES: Dict[str, RuleDef] = {
    rule.name: rule
    for rule in (
        RuleDef("allow", _rule_allow),
        RuleDef(
            "deny", _rule_deny,
            params={"code": "str", "detail": "str", "kind": "str"},
            required=("code", "detail"), terminal=True,
        ),
        RuleDef("require-user", _rule_require_user, provides=("user",)),
        RuleDef(
            "require-bind-principal", _rule_require_bind_principal,
            params={"sender": "str"}, required=("sender",), provides=("user",),
        ),
        RuleDef(
            "limit-bind-probes", _rule_limit_bind_probes,
            params={"limit": "int"}, required=("limit",), needs=("user",),
        ),
        RuleDef(
            "require-registered-device", _rule_require_registered_device,
            params={"count_probe_failures": "bool"}, provides=("registered",),
        ),
        RuleDef(
            "require-fresh-same-ip-registration",
            _rule_require_fresh_same_ip_registration,
            params={"window": "float"}, required=("window",),
            needs=("registered",),
        ),
        RuleDef(
            "require-online-device", _rule_require_online_device,
            needs=("registered",),
        ),
        RuleDef(
            "check-rebind", _rule_check_rebind,
            params={"replaces": "bool"}, required=("replaces",),
            needs=("registered",), provides=("bind-resolution",),
        ),
        RuleDef(
            "require-bind-capability", _rule_require_bind_capability,
            provides=("user", "bind-record"),
        ),
        RuleDef(
            "require-device-channel", _rule_require_device_channel,
            needs=("registered",),
        ),
        RuleDef(
            "require-unbound", _rule_require_unbound,
            needs=("registered",), provides=("bind-resolution",),
        ),
        RuleDef(
            "require-existing-binding", _rule_require_existing_binding,
            needs=("registered",), provides=("binding",),
        ),
        RuleDef(
            "authorize-revocation", _rule_authorize_revocation,
            params={"accepts_bare_dev_id": "bool", "checks_bound_user": "bool"},
            required=("accepts_bare_dev_id", "checks_bound_user"),
            needs=("binding",), provides=("revocation",),
        ),
        RuleDef(
            "require-unbound-or-owner", _rule_require_unbound_or_owner,
            needs=("user", "registered"),
        ),
        RuleDef(
            "authenticate-device", _rule_authenticate_device,
            params={"mode": "str"}, required=("mode",), provides=("device",),
        ),
        RuleDef(
            "require-bound-user", _rule_require_bound_user,
            provides=("user", "binding", "owner"),
        ),
        RuleDef(
            "require-device-access", _rule_require_device_access,
            provides=("user", "binding", "access"),
        ),
        RuleDef(
            "require-online-shadow", _rule_require_online_shadow,
            provides=("online",),
        ),
        RuleDef(
            "require-post-binding-token", _rule_require_post_binding_token,
            needs=("access",),
        ),
        RuleDef(
            "require-known-grantee", _rule_require_known_grantee,
            needs=("owner",), provides=("grantee",),
        ),
    )
}
