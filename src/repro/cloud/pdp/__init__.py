"""The cloud's policy decision point (PDP).

The authorization half of every endpoint in
:mod:`repro.cloud.handlers` lives here, split the classic PDP/PEP way:

* :mod:`repro.cloud.pdp.model` — the typed request
  (:class:`AuthzRequest`), the typed, explainable verdict
  (:class:`Decision`) and its per-rule evaluation trail
  (:class:`RuleEval`);
* :mod:`repro.cloud.pdp.rules` — the rule vocabulary: every check the
  paper found present or absent in a studied cloud, as a named,
  parameterized predicate over the cloud's stores;
* :mod:`repro.cloud.pdp.spec` — :class:`PolicySpec`: one vendor's
  authorization policy as *data* (an ordered rule list per endpoint),
  compiled from a :class:`~repro.cloud.policy.VendorDesign`, validated
  structurally, and round-trippable through JSON;
* :mod:`repro.cloud.pdp.engine` — :class:`PolicyDecisionPoint`, the
  single evaluator the enforcement points call.

The handlers remain as thin policy *enforcement* points: they build an
:class:`AuthzRequest`, enforce the :class:`Decision`, and perform the
allowed mutation.  See ``docs/authorization.md``.
"""

from repro.cloud.pdp.engine import PolicyDecisionPoint
from repro.cloud.pdp.model import ACTIONS, AuthzRequest, Decision, RuleEval
from repro.cloud.pdp.rules import RULES, RuleDef
from repro.cloud.pdp.spec import PolicySpec, PolicySpecError, RuleRef, validate_spec

__all__ = [
    "ACTIONS",
    "AuthzRequest",
    "Decision",
    "PolicyDecisionPoint",
    "PolicySpec",
    "PolicySpecError",
    "RULES",
    "RuleDef",
    "RuleEval",
    "RuleRef",
    "validate_spec",
]
