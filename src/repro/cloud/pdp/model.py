"""Typed PDP request/verdict model.

An :class:`AuthzRequest` is everything an enforcement point knows about
one incoming request: the claimed principal, the credentials presented,
the action, and the resource (device) it targets.  Pre-state lives in
the cloud's stores, which the rules consult directly — only decisions,
never store objects, travel through the cache.

A :class:`Decision` is the explainable verdict: allow/deny, the exact
rejection the enforcement point must raise (same class, code and detail
the inline handlers produced), the ordered list of rule evaluations
(the forensic trace), any obligations the enforcement point must apply
even on denial, and the context facts the rules resolved along the way
(the authenticated user, the live binding, ...).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

#: Every endpoint action a :class:`~repro.cloud.pdp.spec.PolicySpec`
#: must cover, in dispatch-table order.
ACTIONS = (
    "login",
    "dev-token",
    "bind-token",
    "status",
    "bind",
    "unbind",
    "control",
    "schedule",
    "query",
    "binding-info",
    "event-poll",
    "share",
    "share-revoke",
    "fetch",
)


class AuthzRequest:
    """One authorization question, as the enforcement point phrases it.

    A ``__slots__`` record on the per-request hot path.  Credentials are
    optional because their *absence* is itself policy-relevant (e.g. a
    bare-DevId unbind); the rules decide what missing material means.
    """

    __slots__ = (
        "action",
        "source",
        "source_ip",
        "user_token",
        "user_id",
        "user_pw",
        "device_id",
        "dev_token",
        "signature",
        "payload",
        "bind_token",
        "post_binding_token",
        "grantee",
    )

    def __init__(
        self,
        action: str,
        source: str = "",
        source_ip: Any = None,
        user_token: Optional[str] = None,
        user_id: Optional[str] = None,
        user_pw: Optional[str] = None,
        device_id: Optional[str] = None,
        dev_token: Optional[str] = None,
        signature: Optional[str] = None,
        payload: Optional[dict] = None,
        bind_token: Optional[str] = None,
        post_binding_token: Optional[str] = None,
        grantee: Optional[str] = None,
    ) -> None:
        self.action = action
        self.source = source
        self.source_ip = source_ip
        self.user_token = user_token
        self.user_id = user_id
        self.user_pw = user_pw
        self.device_id = device_id
        self.dev_token = dev_token
        self.signature = signature
        self.payload = payload
        self.bind_token = bind_token
        self.post_binding_token = post_binding_token
        self.grantee = grantee

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        presented = ", ".join(
            f"{name}={getattr(self, name)!r}"
            for name in self.__slots__
            if getattr(self, name) not in (None, "")
        )
        return f"AuthzRequest({presented})"


class RuleEval:
    """One rule's evaluation within a decision: the forensic unit."""

    __slots__ = ("rule", "outcome", "code")

    def __init__(self, rule: str, outcome: str, code: str = "") -> None:
        self.rule = rule
        self.outcome = outcome  # "pass" | "deny"
        self.code = code  # rejection code when denied, else ""

    def render(self) -> str:
        """Compact ``rule:outcome[(code)]`` rendering for traces."""
        if self.code:
            return f"{self.rule}:{self.outcome}({self.code})"
        return f"{self.rule}:{self.outcome}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RuleEval({self.render()})"


class Decision:
    """The PDP's explainable verdict for one :class:`AuthzRequest`."""

    __slots__ = (
        "allowed", "rejection", "evaluations", "obligations", "context",
        "_trace",
    )

    def __init__(
        self,
        allowed: bool,
        rejection: Optional[Exception],
        evaluations: Tuple[RuleEval, ...],
        obligations: Tuple[Tuple[str, Any], ...] = (),
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.allowed = allowed
        #: the exact exception the enforcement point raises on denial —
        #: same class / code / detail the inline handler checks produced
        self.rejection = rejection
        #: ordered rule evaluations, stopping at the first denial
        self.evaluations = evaluations
        #: deny-path side effects the enforcement point must apply
        #: *before* raising (e.g. the bind-probe enumeration counter)
        self.obligations = obligations
        #: facts resolved while deciding (authenticated user, binding,
        #: owner/grantee flag, rebind-replacement flag, ...)
        self.context = context if context is not None else {}
        self._trace: Optional[str] = None

    def trace(self) -> str:
        """The ordered rule trail as one compact string (memoized).

        This is what flows into tracer exchange leaves and rides on
        forensic events, e.g.
        ``require-user:pass>check-rebind:deny(already-bound)``.
        """
        trace = self._trace
        if trace is None:
            trace = ">".join(e.render() for e in self.evaluations)
            self._trace = trace
        return trace

    def explain(self) -> str:
        """Multi-line human rendering (diagnostics, ``repro designs``)."""
        verdict = "allow" if self.allowed else "deny"
        lines = [f"decision: {verdict}"]
        if self.rejection is not None:
            code = getattr(self.rejection, "code", "")
            detail = getattr(self.rejection, "detail", "")
            lines.append(f"rejection: {type(self.rejection).__name__} "
                         f"{code}: {detail}")
        for evaluation in self.evaluations:
            lines.append(f"  {evaluation.render()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Decision({'allow' if self.allowed else 'deny'}, {self.trace()})"
