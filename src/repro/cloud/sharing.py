"""Device sharing: many-to-one bindings (Section III-B's footnote).

The paper analyses one-user/one-device bindings and notes the model
"can be easily applied to many-to-one (or one-to-many) bindings".  This
module is that application: the *owner* (the bound user) may grant
other accounts access to the device.  Grants are strictly weaker than
the binding — a grantee can control and query, but cannot unbind,
re-share, or displace the owner — and every grant dies with the
binding, so the A3/A4 analyses carry over unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.state.protocol import Record, RecordStoreBase
from repro.core.errors import BindingConflict


@dataclass(frozen=True)
class ShareGrant:
    """One owner-granted access right."""

    device_id: str
    owner: str
    grantee: str
    granted_at: float


class ShareStore(RecordStoreBase):
    """Grants indexed by device."""

    state_name = "shares"

    def __init__(self) -> None:
        self._by_device: Dict[str, Dict[str, ShareGrant]] = {}

    def grant(self, device_id: str, owner: str, grantee: str, now: float) -> ShareGrant:
        """Owner grants *grantee* access; rejects duplicates and self-shares."""
        if grantee == owner:
            raise BindingConflict("self-share", "the owner already has access")
        grants = self._by_device.setdefault(device_id, {})
        if grantee in grants:
            raise BindingConflict("already-shared", f"{grantee!r} already has access")
        record = ShareGrant(device_id, owner, grantee, now)
        grants[grantee] = record
        self._record_put(self.to_record(record))
        return record

    def revoke(self, device_id: str, grantee: str) -> bool:
        """Withdraw one grant; returns whether it existed."""
        grants = self._by_device.get(device_id, {})
        revoked = grants.pop(grantee, None) is not None
        if revoked:
            self._record_del(f"{device_id}:{grantee}")
        return revoked

    def revoke_all(self, device_id: str) -> int:
        """Binding teardown: every grant dies with the binding."""
        grants = self._by_device.pop(device_id, {})
        for grantee in grants:
            self._record_del(f"{device_id}:{grantee}")
        return len(grants)

    def is_granted(self, device_id: str, user: str) -> bool:
        return user in self._by_device.get(device_id, {})

    def grantees_of(self, device_id: str) -> List[str]:
        return sorted(self._by_device.get(device_id, {}))

    def devices_shared_with(self, user: str) -> List[str]:
        return sorted(
            device_id
            for device_id, grants in self._by_device.items()
            if user in grants
        )

    # -- StateStore protocol --------------------------------------------------

    def to_record(self, obj: ShareGrant) -> Record:
        """One grant as a snapshot/journal record."""
        return {
            "device_id": obj.device_id,
            "owner": obj.owner,
            "grantee": obj.grantee,
            "granted_at": obj.granted_at,
        }

    def from_record(self, record: Record) -> ShareGrant:
        """Decode one grant record."""
        return ShareGrant(
            record["device_id"],
            record["owner"],
            record["grantee"],
            record["granted_at"],
        )

    def record_key(self, record: Record) -> str:
        """Grants are keyed by ``device:grantee`` (one grant per pair)."""
        return f"{record['device_id']}:{record['grantee']}"

    def record_count(self) -> int:
        """Total live grants across all devices."""
        return sum(len(grants) for grants in self._by_device.values())

    def snapshot_state(self) -> List[Record]:
        """Every grant record, sorted by (device id, grantee)."""
        return [
            self.to_record(self._by_device[device_id][grantee])
            for device_id in sorted(self._by_device)
            for grantee in sorted(self._by_device[device_id])
        ]

    def apply_record(self, record: Record) -> ShareGrant:
        """Upsert one grant (restore / journal replay / clone)."""
        grant = self.from_record(record)
        self._by_device.setdefault(grant.device_id, {})[grant.grantee] = grant
        self._record_put(record)
        return grant

    def discard_record(self, key: str) -> bool:
        """Remove one grant by its ``device:grantee`` key."""
        device_id, _, grantee = key.partition(":")
        grants = self._by_device.get(device_id, {})
        existed = grants.pop(grantee, None) is not None
        if existed:
            if not grants:
                self._by_device.pop(device_id, None)
            self._record_del(key)
        return existed

    def find_record(self, key: str) -> Optional[Record]:
        """O(1) lookup of one grant record by ``device:grantee``."""
        device_id, _, grantee = key.partition(":")
        grant = self._by_device.get(device_id, {}).get(grantee)
        return self.to_record(grant) if grant is not None else None
