"""Device sharing: many-to-one bindings (Section III-B's footnote).

The paper analyses one-user/one-device bindings and notes the model
"can be easily applied to many-to-one (or one-to-many) bindings".  This
module is that application: the *owner* (the bound user) may grant
other accounts access to the device.  Grants are strictly weaker than
the binding — a grantee can control and query, but cannot unbind,
re-share, or displace the owner — and every grant dies with the
binding, so the A3/A4 analyses carry over unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.errors import BindingConflict


@dataclass(frozen=True)
class ShareGrant:
    """One owner-granted access right."""

    device_id: str
    owner: str
    grantee: str
    granted_at: float


class ShareStore:
    """Grants indexed by device."""

    def __init__(self) -> None:
        self._by_device: Dict[str, Dict[str, ShareGrant]] = {}

    def grant(self, device_id: str, owner: str, grantee: str, now: float) -> ShareGrant:
        """Owner grants *grantee* access; rejects duplicates and self-shares."""
        if grantee == owner:
            raise BindingConflict("self-share", "the owner already has access")
        grants = self._by_device.setdefault(device_id, {})
        if grantee in grants:
            raise BindingConflict("already-shared", f"{grantee!r} already has access")
        record = ShareGrant(device_id, owner, grantee, now)
        grants[grantee] = record
        return record

    def revoke(self, device_id: str, grantee: str) -> bool:
        grants = self._by_device.get(device_id, {})
        return grants.pop(grantee, None) is not None

    def revoke_all(self, device_id: str) -> int:
        """Binding teardown: every grant dies with the binding."""
        grants = self._by_device.pop(device_id, {})
        return len(grants)

    def is_granted(self, device_id: str, user: str) -> bool:
        return user in self._by_device.get(device_id, {})

    def grantees_of(self, device_id: str) -> List[str]:
        return sorted(self._by_device.get(device_id, {}))

    def devices_shared_with(self, user: str) -> List[str]:
        return sorted(
            device_id
            for device_id, grants in self._by_device.items()
            if user in grants
        )
