"""The unified state-store protocol: one durability interface for seven stores.

The simulated cloud keeps its authoritative binding state in seven
bespoke stores (accounts, tokens, device registry, bindings, shares,
shadows, relay, events).  Before this layer existed, each had its own
hand-enumerated serialization in ``cloud/persistence.py`` and the fleet
clone fast path mutated store internals directly — exactly the class of
cross-component state inconsistency the logic-bug literature warns
about.  :class:`StateStore` is the single contract they all implement
instead:

* **typed records** — ``to_record``/``from_record`` codecs turn one
  domain object into one JSON-able dict and back;
* **snapshotting** — ``snapshot_state``/``restore_state`` move a whole
  store through its record form (snapshot v2 sections,
  ``repro.cloud.state.snapshot``);
* **journaling** — every durable mutation is offered to an optional
  write-ahead hook (``bind_journal``), which the backends in
  ``repro.cloud.state.backends`` persist and replay;
* **cloning** — ``clone_record``/``clone_into`` copy records (optionally
  transformed) between or within stores, which is how
  ``FleetDeployment`` installs template household state without reaching
  into store internals;
* **accounting** — ``merge_counts`` reports size and churn for the
  observability gauges and the sharded campaign merge path.

:class:`RecordStoreBase` supplies the generic halves (journal hooks,
bulk restore, cloning, counts) so a concrete store only writes its
codec, its key function and its upsert/discard primitives.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Protocol, runtime_checkable

from repro.core.errors import ConfigurationError

#: One store record: a flat, JSON-able dict (the unit of snapshot,
#: journal and clone traffic).
Record = Dict[str, Any]

#: A journal write hook: receives one JSON-able journal entry.
JournalWrite = Callable[[Record], None]

#: A record transform used while cloning (return the new record).
RecordTransform = Callable[[Record], Record]


@runtime_checkable
class StateStore(Protocol):
    """Structural protocol every cloud state store satisfies.

    Implementations also expose two plain class attributes:

    * ``state_name`` — the store's section name in snapshots/journals
      (``"accounts"``, ``"bindings"``, ...);
    * ``durable`` — whether the store's records belong in snapshots and
      journals (``False`` for derived/volatile stores like shadows,
      which are rebuilt from the registry and binding table).
    """

    def to_record(self, obj: Any) -> Record:
        """Encode one domain object as a JSON-able record."""
        ...

    def from_record(self, record: Record) -> Any:
        """Decode one record back into a domain object (pure)."""
        ...

    def record_key(self, record: Record) -> str:
        """The stable unique key of *record* within this store."""
        ...

    def record_count(self) -> int:
        """How many records :meth:`snapshot_state` would emit."""
        ...

    def snapshot_state(self) -> List[Record]:
        """Every record, sorted by :meth:`record_key` (deterministic)."""
        ...

    def restore_state(self, records: List[Record]) -> None:
        """Bulk-load records into this (fresh) store."""
        ...

    def apply_record(self, record: Record) -> Any:
        """Upsert one record (journal replay / clone install)."""
        ...

    def discard_record(self, key: str) -> bool:
        """Remove the record stored under *key*; True if it existed."""
        ...

    def find_record(self, key: str) -> Optional[Record]:
        """The current record under *key*, if any."""
        ...

    def clone_record(
        self,
        key: str,
        transform: Optional[RecordTransform] = None,
        into: Optional["StateStore"] = None,
    ) -> Record:
        """Copy one record (optionally transformed) into *into*/self."""
        ...

    def clone_into(
        self, dst: "StateStore", transform: Optional[RecordTransform] = None
    ) -> int:
        """Copy every record into *dst*; returns how many were written."""
        ...

    def merge_counts(self) -> Dict[str, int]:
        """Size/churn accounting (``records``, ``mutations``)."""
        ...

    def bind_journal(self, write: Optional[JournalWrite]) -> None:
        """Install (or clear) the write-ahead journal hook."""
        ...


class RecordStoreBase:
    """Shared :class:`StateStore` machinery for the concrete stores.

    Subclasses set :attr:`state_name` / :attr:`durable` and implement
    the store-specific primitives (``to_record``, ``from_record``,
    ``record_key``, ``record_count``, ``snapshot_state``,
    ``apply_record``, ``discard_record``); everything generic — journal
    emission, mutation counting, bulk restore, record cloning — lives
    here.  Mutating methods call :meth:`_record_put` /
    :meth:`_record_del` with the *current* serialized record so the
    journal always carries full upserts (replay is then insensitive to
    intermediate states).
    """

    #: Snapshot/journal section name; overridden by every subclass.
    state_name: str = "store"
    #: Volatile stores (``durable=False``) count churn but never journal.
    durable: bool = True

    _journal_write: Optional[JournalWrite] = None
    _mutations: int = 0
    #: Authorization epoch hook: set (via :meth:`bind_authz_version`) only
    #: on stores whose contents feed authorization decisions, so hot
    #: non-authz stores (shadows, forensics, relay) never pay the bump.
    _authz_version: Optional[Any] = None

    # -- journal seam -------------------------------------------------------

    def bind_journal(self, write: Optional[JournalWrite]) -> None:
        """Install (or clear, with ``None``) the journal write hook."""
        self._journal_write = write

    def bind_authz_version(self, version: Optional[Any]) -> None:
        """Attach the cloud's shared authorization epoch counter.

        Every subsequent mutation of this store bumps the epoch, which
        invalidates the cloud's
        :class:`~repro.cloud.authz.AuthorizationCache` wholesale — the
        mechanism that makes cached authorization decisions stale-proof.
        """
        self._authz_version = version

    def _record_put(self, record: Record) -> None:
        """Note one upsert: bump churn, journal it when durable+bound."""
        self._mutations = self._mutations + 1
        if self._authz_version is not None:
            self._authz_version.bump()
        if self._journal_write is not None and self.durable:
            self._journal_write(
                {"store": self.state_name, "op": "put", "record": record}
            )

    def _record_del(self, key: str) -> None:
        """Note one delete: bump churn, journal it when durable+bound."""
        self._mutations = self._mutations + 1
        if self._authz_version is not None:
            self._authz_version.bump()
        if self._journal_write is not None and self.durable:
            self._journal_write({"store": self.state_name, "op": "del", "key": key})

    def _note_mutation(self) -> None:
        """Count a volatile mutation (churn only, never journaled)."""
        self._mutations = self._mutations + 1
        if self._authz_version is not None:
            self._authz_version.bump()

    # -- generic bulk operations -------------------------------------------

    def restore_state(self, records: List[Record]) -> None:
        """Bulk-load *records* by upserting each one in order."""
        for record in records:
            self.apply_record(record)

    def find_record(self, key: str) -> Optional[Record]:
        """Linear-scan default; hot stores override with O(1) lookups."""
        for record in self.snapshot_state():
            if self.record_key(record) == key:
                return record
        return None

    def clone_record(
        self,
        key: str,
        transform: Optional[RecordTransform] = None,
        into: Optional[StateStore] = None,
    ) -> Record:
        """Copy the record under *key* (transformed) into *into* or self.

        This is the store-level cloning primitive the fleet's template
        fast path uses: the template household's record is read through
        the codec, rewritten by *transform* (new IDs, fresh tokens, new
        timestamps) and installed through :meth:`apply_record` — no
        caller ever touches store internals.
        """
        record = self.find_record(key)
        if record is None:
            raise ConfigurationError(
                f"store {self.state_name!r} has no record {key!r} to clone"
            )
        if transform is not None:
            record = transform(record)
        target = into if into is not None else self
        target.apply_record(record)
        return record

    def clone_into(
        self, dst: StateStore, transform: Optional[RecordTransform] = None
    ) -> int:
        """Copy every record into *dst* (optionally transformed).

        A ``transform`` returning ``None`` skips that record, so callers
        can clone a filtered subset in one pass.
        """
        written = 0
        for record in self.snapshot_state():
            if transform is not None:
                record = transform(record)  # type: ignore[assignment]
                if record is None:
                    continue
            dst.apply_record(record)
            written += 1
        return written

    def merge_counts(self) -> Dict[str, int]:
        """Size and churn: mergeable by summation across shards."""
        return {"records": self.record_count(), "mutations": self._mutations}

    def set_mutation_count(self, mutations: int) -> None:
        """Overwrite the churn counter (warm-start restore only).

        Bulk-restoring a captured world replays every record as an
        upsert, which would inflate ``mutations`` far past what the
        original world had counted; the campaign fast path rewinds the
        counter to the captured value so ``merge_counts`` — and the
        sharded engine's ``state_counts`` merge — stay bit-identical to
        a cold-built world.
        """
        self._mutations = mutations


def merge_state_counts(
    per_shard: List[Dict[str, Dict[str, int]]]
) -> Dict[str, Dict[str, int]]:
    """Fold per-shard ``state_counts`` maps by summing each counter.

    The sharded campaign engine's state-layer analogue of
    :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`: shard
    worlds share nothing, so fleet-wide record and mutation totals are
    exactly the per-shard sums, independent of completion order.
    """
    merged: Dict[str, Dict[str, int]] = {}
    for counts in per_shard:
        for store_name, store_counts in counts.items():
            into = merged.setdefault(store_name, {})
            for key, value in store_counts.items():
                into[key] = into.get(key, 0) + value
    return merged
