"""Pluggable state backends: in-memory entries and a JSON-lines journal.

A backend is the durability medium behind the unified state layer.  It
receives one JSON-able entry per durable store mutation (full-record
upserts and key deletes, see
:class:`~repro.cloud.state.protocol.RecordStoreBase`) and can replay
them later.  Two implementations:

* :class:`MemoryBackend` — the current-default dict/list behaviour:
  entries accumulate in process memory.  Cheap, no encoding, gone on
  process exit — exactly what an uninstrumented simulation wants.
* :class:`JournalBackend` — an append-only JSON-lines write-ahead log
  (one entry per line, ``sort_keys`` canonical form), optionally backed
  by a file.  It supports *fault injection* — a torn final write via
  :meth:`JournalBackend.crash_mid_write` or a scheduled
  ``fail_after_appends`` crash — and *tolerant replay*: a truncated or
  partial tail is detected, counted and skipped, while corruption
  anywhere else is an error.  ``repro.cloud.state.journal`` rebuilds a
  whole cloud from the surviving prefix.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

from repro.cloud.state.protocol import Record
from repro.core.errors import ConfigurationError, SimulationError


class JournalCrash(SimulationError):
    """Raised by an injected mid-write crash (the torn-write fault)."""


class StateBackend:
    """Base interface every state backend implements."""

    def append(self, entry: Record) -> None:
        """Durably record one journal entry."""
        raise NotImplementedError

    def entries(self) -> List[Record]:
        """Replay every decodable entry, oldest first."""
        raise NotImplementedError

    def entry_count(self) -> int:
        """How many entries :meth:`entries` would return."""
        return len(self.entries())

    def size_bytes(self) -> int:
        """Encoded size of the backend's contents (0 when unencoded)."""
        return 0

    def clear(self) -> None:
        """Drop every entry (test/bench reset)."""
        raise NotImplementedError


class MemoryBackend(StateBackend):
    """Entries kept as live dicts in a list — the in-memory default."""

    def __init__(self) -> None:
        self._entries: List[Record] = []

    def append(self, entry: Record) -> None:
        """Store a defensive JSON-roundtrip copy of *entry*."""
        self._entries.append(json.loads(json.dumps(entry)))

    def entries(self) -> List[Record]:
        """A shallow copy of the recorded entries, oldest first."""
        return list(self._entries)

    def entry_count(self) -> int:
        """Number of recorded entries (no decoding needed)."""
        return len(self._entries)

    def clear(self) -> None:
        """Forget everything."""
        self._entries = []


class JournalBackend(StateBackend):
    """Append-only JSON-lines WAL with crash fault injection.

    With ``path=None`` the journal lives in an in-process text buffer
    (handy for tests and benchmarks); with a path every append is
    written through to the file, so a *new* :class:`JournalBackend` on
    the same path models a post-crash process recovering from disk.

    Fault injection:

    * ``fail_after_appends=N`` — the Nth append writes only a prefix of
      its line (a torn sector) and raises :class:`JournalCrash`;
    * :meth:`crash_mid_write` — retroactively tear the final line, as a
      power cut mid-``write()`` would.

    Replay (:meth:`entries`) decodes line by line.  An undecodable
    *final* line is the torn tail: it is dropped, and
    :attr:`torn_tail` / :attr:`dropped_bytes` report the damage.  An
    undecodable line anywhere earlier means real corruption and raises
    :class:`~repro.core.errors.ConfigurationError`.
    """

    def __init__(
        self, path: Optional[str] = None, fail_after_appends: Optional[int] = None
    ) -> None:
        self.path = path
        self.fail_after_appends = fail_after_appends
        self._appends = 0
        self._buffer = ""
        #: Set by the latest :meth:`entries` call: was a torn tail seen?
        self.torn_tail = False
        #: Bytes discarded from the torn tail by the latest replay.
        self.dropped_bytes = 0
        if path is not None and os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                self._buffer = handle.read()

    # -- writing ------------------------------------------------------------

    def _write_through(self, text: str) -> None:
        """Append raw *text* to the buffer (and the backing file)."""
        self._buffer += text
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(text)

    def append(self, entry: Record) -> None:
        """Append one canonical JSON line (honouring injected faults)."""
        line = json.dumps(entry, sort_keys=True) + "\n"
        self._appends += 1
        if (
            self.fail_after_appends is not None
            and self._appends >= self.fail_after_appends
        ):
            # The torn write: half the line reaches the medium, then the
            # process dies.  Keep at least one byte so the tail is
            # visibly partial rather than silently absent.
            torn = line[: max(1, len(line) // 2)]
            self._write_through(torn)
            raise JournalCrash(
                f"injected crash during journal append #{self._appends}"
            )
        self._write_through(line)

    def crash_mid_write(self, keep_fraction: float = 0.5) -> None:
        """Retroactively tear the final line (simulated power cut).

        Truncates the journal so only ``keep_fraction`` of the last
        line's bytes survive, exactly as if the process had died while
        the final ``write()`` was in flight.
        """
        if not self._buffer:
            return
        body = self._buffer[:-1] if self._buffer.endswith("\n") else self._buffer
        cut = body.rfind("\n") + 1  # start of the final line
        last_line = self._buffer[cut:]
        kept = last_line[: max(1, int(len(last_line) * keep_fraction))]
        if kept.endswith("\n"):
            kept = kept[:-1]
        self._buffer = self._buffer[:cut] + kept
        if self.path is not None:
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.write(self._buffer)

    # -- reading ------------------------------------------------------------

    def entries(self) -> List[Record]:
        """Decode every line; tolerate (and account for) a torn tail."""
        self.torn_tail = False
        self.dropped_bytes = 0
        decoded: List[Record] = []
        lines = self._buffer.split("\n")
        for index, line in enumerate(lines):
            if not line:
                continue
            try:
                decoded.append(json.loads(line))
            except ValueError:
                if index >= len(lines) - 2:  # final (possibly unterminated) line
                    self.torn_tail = True
                    self.dropped_bytes = len(line.encode("utf-8"))
                    break
                raise ConfigurationError(
                    f"journal corrupt at line {index + 1} (not at the tail)"
                )
        return decoded

    def size_bytes(self) -> int:
        """Encoded journal size in bytes."""
        return len(self._buffer.encode("utf-8"))

    def clear(self) -> None:
        """Truncate the journal (buffer and backing file)."""
        self._buffer = ""
        self._appends = 0
        if self.path is not None and os.path.exists(self.path):
            with open(self.path, "w", encoding="utf-8"):
                pass
