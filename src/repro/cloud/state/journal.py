"""Journaled restarts: attach a WAL to a cloud and replay it after a crash.

The write path is store-driven: every durable store mutation emits one
full-record entry through its
:meth:`~repro.cloud.state.protocol.RecordStoreBase.bind_journal` hook,
and the backend (:mod:`repro.cloud.state.backends`) persists it.  The
first entry of a fresh journal is a ``_meta`` header naming the design
and schema version, so a journal is self-describing the same way a v2
snapshot is.

Recovery (:func:`recover_from_journal`) is replay-based: build a fresh
:class:`~repro.cloud.service.CloudService` through its constructor,
apply every surviving entry to the named store (upserts and deletes),
rebuild the shadow projection (offline, like any restart) and only then
re-attach the journal so post-recovery mutations keep appending.  A
torn tail — the injected mid-write crash — is skipped by the backend's
tolerant replay and reported in the :class:`JournalRecovery` stats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cloud.state.backends import StateBackend
from repro.cloud.state.protocol import Record
from repro.cloud.state.snapshot import SNAPSHOT_VERSION, rebuild_shadow_projection
from repro.core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cloud.policy import VendorDesign
    from repro.cloud.service import CloudService
    from repro.net.network import Network
    from repro.sim.environment import Environment

#: Pseudo-store name of the journal's self-describing header entry.
META_STORE = "_meta"


def meta_entry(design_name: str) -> Record:
    """The self-describing header appended to every fresh journal."""
    return {
        "store": META_STORE,
        "op": "meta",
        "version": SNAPSHOT_VERSION,
        "design": design_name,
    }


@dataclass
class JournalRecovery:
    """What one replay-based recovery did (for reports and tests)."""

    cloud: "CloudService"
    entries_applied: int
    entries_discarded: int
    torn_tail: bool
    dropped_bytes: int

    def line(self) -> str:
        """One human-readable summary line."""
        tail = (
            f"; torn tail dropped ({self.dropped_bytes} bytes)"
            if self.torn_tail
            else ""
        )
        return (
            f"journal recovery: {self.entries_applied} upserts, "
            f"{self.entries_discarded} deletes replayed{tail}"
        )


def recover_from_journal(
    env: "Environment",
    network: "Network",
    design: "VendorDesign",
    backend: StateBackend,
    node_name: str = "cloud",
    public_ip: str = "52.0.0.1",
) -> JournalRecovery:
    """Rebuild a cloud from a journal's surviving prefix.

    Constructs the service normally (constructor-based, no ``__new__``
    tricks), replays every decodable entry, rebuilds shadows offline,
    and re-attaches *backend* so the recovered cloud keeps journaling.
    """
    from repro.cloud.service import CloudService

    entries = backend.entries()
    torn_tail = bool(getattr(backend, "torn_tail", False))
    dropped_bytes = int(getattr(backend, "dropped_bytes", 0))
    if network.has_node(node_name):
        network.remove_node(node_name)
    cloud = CloudService(env, network, design, node_name, public_ip)
    stores = cloud.state_stores()
    applied = discarded = 0
    for entry in entries:
        store_name = entry.get("store")
        if store_name == META_STORE:
            if entry.get("design") != design.name:
                raise ConfigurationError(
                    f"journal is for design {entry.get('design')!r}, "
                    f"not {design.name!r}"
                )
            continue
        store = stores.get(store_name)
        if store is None:
            raise ConfigurationError(f"journal names unknown store {store_name!r}")
        op = entry.get("op")
        if op == "put":
            store.apply_record(entry["record"])
            applied += 1
        elif op == "del":
            store.discard_record(entry["key"])
            discarded += 1
        else:
            raise ConfigurationError(f"journal entry has unknown op {op!r}")
    rebuild_shadow_projection(cloud)
    cloud.attach_journal(backend, write_meta=False)
    return JournalRecovery(
        cloud=cloud,
        entries_applied=applied,
        entries_discarded=discarded,
        torn_tail=torn_tail,
        dropped_bytes=dropped_bytes,
    )
