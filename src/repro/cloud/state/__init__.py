"""The unified cloud state layer: one protocol, pluggable backends.

See ``docs/state.md``.  Public surface:

* :class:`~repro.cloud.state.protocol.StateStore` /
  :class:`~repro.cloud.state.protocol.RecordStoreBase` — the store
  contract every cloud store implements;
* :class:`~repro.cloud.state.backends.MemoryBackend` /
  :class:`~repro.cloud.state.backends.JournalBackend` — durability
  backends (the latter an append-only JSON-lines WAL with crash fault
  injection);
* :func:`~repro.cloud.state.snapshot.build_snapshot` /
  :func:`~repro.cloud.state.snapshot.load_snapshot` /
  :func:`~repro.cloud.state.snapshot.migrate_snapshot` — self-describing
  snapshot v2 plus the v1 migration shim;
* :func:`~repro.cloud.state.journal.recover_from_journal` — replay-based
  crash recovery.
"""

from repro.cloud.state.backends import (
    JournalBackend,
    JournalCrash,
    MemoryBackend,
    StateBackend,
)
from repro.cloud.state.journal import (
    META_STORE,
    JournalRecovery,
    meta_entry,
    recover_from_journal,
)
from repro.cloud.state.protocol import (
    Record,
    RecordStoreBase,
    StateStore,
    merge_state_counts,
)
from repro.cloud.state.snapshot import (
    SNAPSHOT_VERSION,
    build_snapshot,
    load_snapshot,
    migrate_snapshot,
    rebuild_shadow_projection,
    snapshot_store_counts,
)

__all__ = [
    "JournalBackend",
    "JournalCrash",
    "JournalRecovery",
    "META_STORE",
    "MemoryBackend",
    "Record",
    "RecordStoreBase",
    "SNAPSHOT_VERSION",
    "StateBackend",
    "StateStore",
    "build_snapshot",
    "load_snapshot",
    "merge_state_counts",
    "meta_entry",
    "migrate_snapshot",
    "rebuild_shadow_projection",
    "recover_from_journal",
    "snapshot_store_counts",
]
