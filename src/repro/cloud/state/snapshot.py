"""Self-describing snapshot v2: every store contributes its own section.

Snapshot v1 (the original ``cloud/persistence.py``) hand-enumerated
every field of every store in one 120-line function — adding a store
column meant editing the serializer, the deserializer and every test
fixture in lockstep.  Version 2 is generic: the cloud asks each durable
:class:`~repro.cloud.state.protocol.StateStore` for its records and
stores them under the store's own ``state_name``::

    {
      "version": 2,
      "design": "<vendor design name>",
      "time":   <virtual seconds at capture>,
      "stores": {
        "accounts": [ {...}, ... ],
        "tokens":   [ {...}, ... ],
        "devices":  [ {...}, ... ],
        "bindings": [ {...}, ... ],
        "shares":   [ {...}, ... ],
        "relay":    [ {...}, ... ],   # schedules only; queues are volatile
        "events":   [ {...}, ... ]    # user inboxes + poll cursors
      }
    }

Records are sorted by their store key and serialized with
``sort_keys=True``, so ``save -> load -> save`` is byte-identical.

The **shadow store is deliberately absent**: shadows are a projection
of the registry and the binding table, and a cloud restart is a *mass
offline event* (Figure 2's timeout arcs) — so :func:`load_snapshot`
rebuilds every shadow in its offline state (``bound`` for bound
devices, ``initial`` otherwise) and lets the next heartbeats bring the
fleet back, exactly as v1 did.

v1 snapshots still load: :func:`migrate_snapshot` lifts them to the v2
shape (the ``schedules`` dict becomes ``relay`` records; the ``events``
section, which v1 never captured, migrates empty).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List

from repro.cloud.state.protocol import Record
from repro.core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cloud.service import CloudService

#: Current snapshot schema version.
SNAPSHOT_VERSION = 2


def build_snapshot(cloud: "CloudService") -> Dict[str, Any]:
    """Serialize the cloud's durable state as a self-describing v2 dict."""
    return {
        "version": SNAPSHOT_VERSION,
        "design": cloud.design.name,
        "time": cloud.now,
        "stores": {
            name: store.snapshot_state()
            for name, store in cloud.state_stores().items()
            if store.durable
        },
    }


def migrate_snapshot(data: Dict[str, Any]) -> Dict[str, Any]:
    """Lift a snapshot to the v2 shape (v2 passes through unchanged)."""
    version = data.get("version")
    if version == SNAPSHOT_VERSION:
        return data
    if version == 1:
        schedules = data.get("schedules", {})
        stores: Dict[str, List[Record]] = {
            "accounts": list(data.get("accounts", [])),
            "tokens": list(data.get("tokens", [])),
            "devices": list(data.get("devices", [])),
            "bindings": list(data.get("bindings", [])),
            "shares": list(data.get("shares", [])),
            "relay": [
                {"device_id": device_id, "schedule": dict(schedule)}
                for device_id, schedule in sorted(schedules.items())
            ],
            # v1 never captured notification feeds; they migrate empty.
            "events": [],
        }
        return {
            "version": SNAPSHOT_VERSION,
            "design": data.get("design"),
            "time": data.get("time", 0.0),
            "stores": stores,
        }
    raise ConfigurationError(f"unsupported snapshot version {version!r}")


def rebuild_shadow_projection(cloud: "CloudService") -> None:
    """Recreate every shadow, offline, from the registry and bindings.

    The restart killed every connection, so shadows come back in their
    offline states: ``bound`` where a binding exists, ``initial``
    elsewhere.  Devices re-enter via their next heartbeat.
    """
    for device_id in cloud.registry.all_ids():
        if not cloud.shadows.has(device_id):
            cloud.shadows.create(device_id)
    for record in cloud.bindings.snapshot_state():
        shadow = cloud.shadows.get(record["device_id"])
        if not shadow.is_bound:
            shadow.mark_bound(record["user_id"], cloud.now)


def load_snapshot(cloud: "CloudService", data: Dict[str, Any]) -> None:
    """Load a (v1 or v2) snapshot into a *fresh* cloud of the same design."""
    data = migrate_snapshot(data)
    if data.get("design") != cloud.design.name:
        raise ConfigurationError(
            f"snapshot is for design {data.get('design')!r}, "
            f"not {cloud.design.name!r}"
        )
    if cloud.accounts.record_count() or cloud.bindings.count():
        raise ConfigurationError("restore requires a fresh cloud instance")
    sections = data.get("stores", {})
    stores = cloud.state_stores()
    unknown = set(sections) - set(stores)
    if unknown:
        raise ConfigurationError(
            f"snapshot carries unknown store sections {sorted(unknown)!r}"
        )
    # Restore order follows the service's store order (accounts before
    # bindings, etc.); sections a snapshot omits simply restore empty.
    for name, store in stores.items():
        if not store.durable:
            continue
        store.restore_state(sections.get(name, []))
    rebuild_shadow_projection(cloud)


def snapshot_store_counts(data: Dict[str, Any]) -> Dict[str, int]:
    """Per-section record counts of a (v1 or v2) snapshot dict."""
    migrated = migrate_snapshot(data)
    return {
        name: len(records) for name, records in sorted(migrated["stores"].items())
    }
