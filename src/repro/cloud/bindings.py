"""The cloud-side binding table (who may remotely reach which device).

A binding pairs one device with one user (the paper restricts itself to
one-to-one bindings; see Section III-B).  For designs with post-binding
authorization, the binding also carries the random token returned at
creation time and tracks whether the *device side* ever presented it —
the check that makes remote-only bindings useless for control
(Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.state.protocol import Record, RecordStoreBase
from repro.core.errors import BindingConflict


@dataclass
class Binding:
    """One live user<->device binding."""

    device_id: str
    user_id: str
    created_at: float
    #: Random post-binding authorization token (``None`` when the design
    #: does not use one).
    post_token: Optional[str] = None
    #: Set once the device has proven possession of ``post_token``
    #: (delivered to it locally by the binding user's app).
    device_confirmed: bool = False

    def confirm_device(self, presented_token: Optional[str]) -> bool:
        """Record the device side presenting the post-binding token."""
        if self.post_token is not None and presented_token == self.post_token:
            self.device_confirmed = True
        return self.device_confirmed


class BindingStore(RecordStoreBase):
    """Bindings indexed by device; enforces the one-binding invariant."""

    state_name = "bindings"

    def __init__(self) -> None:
        self._by_device: Dict[str, Binding] = {}

    def get(self, device_id: str) -> Optional[Binding]:
        return self._by_device.get(device_id)

    def bound_user(self, device_id: str) -> Optional[str]:
        binding = self._by_device.get(device_id)
        return binding.user_id if binding else None

    def is_bound(self, device_id: str) -> bool:
        return device_id in self._by_device

    def devices_of(self, user_id: str) -> List[str]:
        return sorted(
            device_id
            for device_id, binding in self._by_device.items()
            if binding.user_id == user_id
        )

    def create(
        self,
        device_id: str,
        user_id: str,
        now: float,
        post_token: Optional[str] = None,
        replace: bool = False,
    ) -> Binding:
        """Create a binding; replacing an existing one requires *replace*."""
        existing = self._by_device.get(device_id)
        if existing is not None and not replace:
            raise BindingConflict(
                "already-bound", f"device {device_id!r} is bound to another user"
            )
        binding = Binding(device_id, user_id, now, post_token)
        self._by_device[device_id] = binding
        self._record_put(self.to_record(binding))
        return binding

    def confirm_device(self, device_id: str, presented_token: Optional[str]) -> bool:
        """Store-level device confirmation (journals the updated record).

        Routes :meth:`Binding.confirm_device` through the store so the
        write-ahead journal sees the flag flip; returns the (possibly
        unchanged) confirmation state, ``False`` when unbound.
        """
        binding = self._by_device.get(device_id)
        if binding is None:
            return False
        before = binding.device_confirmed
        confirmed = binding.confirm_device(presented_token)
        if confirmed and not before:
            self._record_put(self.to_record(binding))
        return confirmed

    def revoke(self, device_id: str) -> Binding:
        """Remove and return the binding; raises if none exists."""
        try:
            binding = self._by_device.pop(device_id)
        except KeyError:
            raise BindingConflict("not-bound", f"device {device_id!r} has no binding") from None
        self._record_del(device_id)
        return binding

    def count(self) -> int:
        return len(self._by_device)

    # -- StateStore protocol --------------------------------------------------

    def to_record(self, obj: Binding) -> Record:
        """One binding as a snapshot/journal record."""
        return {
            "device_id": obj.device_id,
            "user_id": obj.user_id,
            "created_at": obj.created_at,
            "post_token": obj.post_token,
            "device_confirmed": obj.device_confirmed,
        }

    def from_record(self, record: Record) -> Binding:
        """Decode one binding record."""
        binding = Binding(
            record["device_id"],
            record["user_id"],
            record["created_at"],
            post_token=record.get("post_token"),
        )
        binding.device_confirmed = bool(record.get("device_confirmed", False))
        return binding

    def record_key(self, record: Record) -> str:
        """Bindings are keyed by device id (the one-binding invariant)."""
        return record["device_id"]

    def record_count(self) -> int:
        """Number of live bindings."""
        return len(self._by_device)

    def snapshot_state(self) -> List[Record]:
        """Every binding record, sorted by device id."""
        return [
            self.to_record(self._by_device[device_id])
            for device_id in sorted(self._by_device)
        ]

    def apply_record(self, record: Record) -> Binding:
        """Upsert one binding (restore / journal replay / clone)."""
        binding = self.from_record(record)
        self._by_device[binding.device_id] = binding
        self._record_put(record)
        return binding

    def discard_record(self, key: str) -> bool:
        """Remove one binding by device id."""
        existed = self._by_device.pop(key, None) is not None
        if existed:
            self._record_del(key)
        return existed

    def find_record(self, key: str) -> Optional[Record]:
        """O(1) lookup of one binding record (the fleet clone path)."""
        binding = self._by_device.get(key)
        return self.to_record(binding) if binding is not None else None
