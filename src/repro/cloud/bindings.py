"""The cloud-side binding table (who may remotely reach which device).

A binding pairs one device with one user (the paper restricts itself to
one-to-one bindings; see Section III-B).  For designs with post-binding
authorization, the binding also carries the random token returned at
creation time and tracks whether the *device side* ever presented it —
the check that makes remote-only bindings useless for control
(Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.errors import BindingConflict


@dataclass
class Binding:
    """One live user<->device binding."""

    device_id: str
    user_id: str
    created_at: float
    #: Random post-binding authorization token (``None`` when the design
    #: does not use one).
    post_token: Optional[str] = None
    #: Set once the device has proven possession of ``post_token``
    #: (delivered to it locally by the binding user's app).
    device_confirmed: bool = False

    def confirm_device(self, presented_token: Optional[str]) -> bool:
        """Record the device side presenting the post-binding token."""
        if self.post_token is not None and presented_token == self.post_token:
            self.device_confirmed = True
        return self.device_confirmed


class BindingStore:
    """Bindings indexed by device; enforces the one-binding invariant."""

    def __init__(self) -> None:
        self._by_device: Dict[str, Binding] = {}

    def get(self, device_id: str) -> Optional[Binding]:
        return self._by_device.get(device_id)

    def bound_user(self, device_id: str) -> Optional[str]:
        binding = self._by_device.get(device_id)
        return binding.user_id if binding else None

    def is_bound(self, device_id: str) -> bool:
        return device_id in self._by_device

    def devices_of(self, user_id: str) -> List[str]:
        return sorted(
            device_id
            for device_id, binding in self._by_device.items()
            if binding.user_id == user_id
        )

    def create(
        self,
        device_id: str,
        user_id: str,
        now: float,
        post_token: Optional[str] = None,
        replace: bool = False,
    ) -> Binding:
        """Create a binding; replacing an existing one requires *replace*."""
        existing = self._by_device.get(device_id)
        if existing is not None and not replace:
            raise BindingConflict(
                "already-bound", f"device {device_id!r} is bound to another user"
            )
        binding = Binding(device_id, user_id, now, post_token)
        self._by_device[device_id] = binding
        return binding

    def revoke(self, device_id: str) -> Binding:
        """Remove and return the binding; raises if none exists."""
        try:
            return self._by_device.pop(device_id)
        except KeyError:
            raise BindingConflict("not-bound", f"device {device_id!r} has no binding") from None

    def count(self) -> int:
        return len(self._by_device)
