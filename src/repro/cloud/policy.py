"""Vendor design knobs: the decomposed remote-binding design space.

The paper decomposes every vendor's remote binding into choices along a
few axes — device authentication (Figure 3), binding creation
(Figure 4), binding revocation (Section IV-C) and a handful of
cloud-side checks whose absence is what the attacks exploit
(Section V).  :class:`VendorDesign` captures one point in that space;
the cloud's handlers consult it for every decision, and each of the ten
studied products is exactly one instance (``repro.vendors.profiles``).

DESIGN.md §4 derives how these knobs reproduce Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique
from typing import Optional

from repro.core.errors import ConfigurationError


@unique
class DeviceAuthMode(Enum):
    """Figure 3: how status messages are authenticated."""

    DEV_TOKEN = "DevToken"   # Type 1: dynamic token delivered by the app
    DEV_ID = "DevId"         # Type 2: static identifier (MAC / serial)
    PUBKEY = "PubKey"        # infrastructure-provider design (AWS/IBM/Google)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@unique
class BindSender(Enum):
    """Figure 4a vs 4b: which party submits the binding message."""

    APP = "app"
    DEVICE = "device"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@unique
class BindSchema(Enum):
    """ACL-based (ambient-authority DevId) vs capability-based binding."""

    ACL = "acl"
    CAPABILITY = "capability"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class VendorDesign:
    """One vendor's complete remote-binding design.

    Attributes mirror DESIGN.md §4; every check the paper found present
    or absent in a studied cloud is a boolean here, so that attacks
    succeed or fail for the *mechanistic* reason the paper gives, never
    by table lookup.
    """

    name: str
    device_type: str = "smart-plug"

    # -- device authentication (Figure 3) --------------------------------
    device_auth: DeviceAuthMode = DeviceAuthMode.DEV_TOKEN
    #: What an outside analyst can determine about ``device_auth``
    #: (``None`` = the paper's "O": undetermined without firmware).
    device_auth_known: Optional[DeviceAuthMode] = None
    #: Whether a firmware image is publicly obtainable; forging *device*
    #: protocol messages requires it (Section VI-A: only 3 of 10).
    firmware_available: bool = False
    #: Whether the device channel carries user-meaningful data that a
    #: forged device can inject or read (False for the one device where
    #: status forgery worked but A1 still failed).
    status_yields_user_data: bool = True

    # -- binding creation (Figure 4) --------------------------------------
    bind_schema: BindSchema = BindSchema.ACL
    bind_sender: BindSender = BindSender.APP
    #: Cloud rejects bindings for devices that are not currently online.
    bind_requires_online_device: bool = False
    #: Philips-Hue-style check: binding requires a fresh button-press
    #: registration from the same source IP as the app's request.
    ip_match_required: bool = False
    #: Post-binding authorization: a random token returned at bind time
    #: must accompany control traffic, and the device must have received
    #: it via local delivery (Section IV-B).
    post_binding_token: bool = False
    #: A new Bind for an already-bound device replaces the old binding
    #: (the Type-3 "revocation by replacement" of Section IV-C).
    rebind_replaces_existing: bool = False

    # -- binding revocation (Section IV-C) ---------------------------------
    unbind_supported: bool = True
    #: Type-1 unbind verifies the requester is the bound user.
    unbind_checks_bound_user: bool = True
    #: A Type-2 ``Unbind: DevId`` endpoint exists (no user credential).
    unbind_accepts_bare_dev_id: bool = False

    #: Countermeasure to attack stealthiness: notify the affected user
    #: whenever their binding is created, revoked or replaced, and when
    #: their device times out.  No studied vendor does this.
    notifies_user: bool = False

    #: Countermeasure to ID enumeration (Section V-C): lock an account
    #: out of the bind endpoint after this many unknown-device failures
    #: (``None`` = unlimited, the behaviour of every studied vendor).
    bind_probe_rate_limit: Optional[int] = None

    # -- connection management ----------------------------------------------
    #: A newly authenticated device connection evicts the previous one
    #: (the behaviour A3-4 exploits).
    single_connection_per_device: bool = False

    # -- identifiers ---------------------------------------------------------
    id_scheme: str = "mac-address"
    id_oui: str = "a4:77:33"
    id_serial_digits: int = 7
    #: Vendor prints the device ID on the device/package label.
    id_label_on_device: bool = False

    # -- timing ----------------------------------------------------------------
    heartbeat_interval: float = 5.0
    offline_timeout: float = 16.0
    #: Button-press / binding freshness window (device #7 uses 30 s).
    bind_window_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0 or self.offline_timeout <= 0:
            raise ConfigurationError("timing knobs must be positive")
        if self.offline_timeout <= self.heartbeat_interval:
            raise ConfigurationError(
                "offline timeout must exceed the heartbeat interval"
            )
        if not self.unbind_supported and not self.rebind_replaces_existing:
            raise ConfigurationError(
                f"{self.name}: without unbinding, rebind must replace "
                "(otherwise bindings are permanent)"
            )
        if self.bind_schema is BindSchema.CAPABILITY and self.bind_sender is not BindSender.DEVICE:
            raise ConfigurationError(
                "capability binding is confirmed by the device (Figure 4c)"
            )

    # -- derived facts used by the analysis layer -----------------------------

    @property
    def status_forgeable_with_id(self) -> bool:
        """A remote attacker knowing the device ID can authenticate as it."""
        return self.device_auth is DeviceAuthMode.DEV_ID

    @property
    def device_protocol_known(self) -> bool:
        """Whether an analyst can craft device-side messages at all."""
        return self.firmware_available

    @property
    def unbind_signature(self) -> str:
        """The Unbind column of Table III."""
        if not self.unbind_supported:
            return "N.A."
        parts = ["(DevId,UserToken)"]
        if self.unbind_accepts_bare_dev_id:
            parts.append("DevId")
        return " & ".join(parts)
