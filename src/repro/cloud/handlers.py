"""Cloud endpoint logic: every authentication/authorization decision.

Each handler implements one endpoint of the vendor cloud, consulting
the :class:`~repro.cloud.policy.VendorDesign` for exactly the checks the
paper found present or absent in real products.  Attacks in
``repro.attacks`` succeed or fail *only* because of decisions made here —
there is no out-of-band "this vendor is vulnerable" flag anywhere.

Map from paper to code:

* Figure 3 (device authentication)  -> :meth:`EndpointHandlers.authenticate_device`
* Figure 4 (binding creation)       -> :meth:`EndpointHandlers.handle_bind`
* Section IV-C (binding revocation) -> :meth:`EndpointHandlers.handle_unbind`
* Section IV-B (post-binding authorization) -> the ``post_token`` logic
  in :meth:`handle_bind` / :meth:`handle_control` / :meth:`handle_fetch`
* Device #7's IP-match check        -> :meth:`_check_ip_match`
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.errors import (
    AuthenticationFailed,
    AuthorizationFailed,
    BindingConflict,
    ProtocolError,
    RequestRejected,
    UnknownDevice,
)
from repro.core.messages import (
    BindingInfoRequest,
    BindMessage,
    BindTokenRequest,
    ControlMessage,
    DeviceFetch,
    DevTokenRequest,
    EventPollRequest,
    LoginRequest,
    LoginResponse,
    Message,
    QueryRequest,
    Response,
    ScheduleUpdate,
    ShareRequest,
    ShareRevoke,
    StatusMessage,
    TokenResponse,
    UnbindMessage,
)
from repro.cloud.authz import MISS, unwrap
from repro.cloud.policy import BindSchema, BindSender, DeviceAuthMode
from repro.cloud.relay import QueuedCommand
from repro.identity.tokens import TokenKind
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cloud.service import CloudService


class EndpointHandlers:
    """The vendor cloud's request handlers.

    The recurring read-only authorization questions (token -> user,
    device credential check, user-may-touch-device) are answered through
    the cloud's :class:`~repro.cloud.authz.AuthorizationCache`: pure
    decisions memoized under the shared authorization epoch, so any
    binding/token/share/registry mutation invalidates them wholesale.
    Only decisions, never store objects, are cached — live records
    (bindings) are re-fetched on every hit.
    """

    def __init__(self, service: "CloudService") -> None:
        self.service = service

    # ------------------------------------------------------------------
    # cached authorization primitives
    # ------------------------------------------------------------------

    def _require_user(self, user_token: Optional[str]) -> str:
        """Cached ``accounts.require_user`` (pure, version-guarded)."""
        svc = self.service
        cache = svc.authz_cache
        key = ("user", user_token)
        value = cache.lookup(key)
        if value is not MISS:
            return unwrap(value)
        try:
            user = svc.accounts.require_user(user_token)
        except AuthenticationFailed as exc:
            cache.store_rejection(key, exc)
            raise
        cache.store(key, user)
        return user

    # ------------------------------------------------------------------
    # account endpoints
    # ------------------------------------------------------------------

    def handle_login(self, packet: Packet, message: LoginRequest) -> LoginResponse:
        """Password login (Figure 1 step 1)."""
        svc = self.service
        token = svc.accounts.login(message.user_id, message.user_pw, svc.now)
        return LoginResponse(user_id=message.user_id, user_token=token)

    def handle_dev_token_request(self, packet: Packet, message: DevTokenRequest) -> TokenResponse:
        """Type-1 auth: the app fetches a DevToken to deliver locally.

        If the device is already bound, only its bound user may fetch a
        token — otherwise a remote stranger could mint a credential for
        someone else's device.
        """
        svc = self.service
        if svc.design.device_auth is not DeviceAuthMode.DEV_TOKEN:
            raise RequestRejected("unsupported", "this vendor does not use DevTokens")
        user = self._require_user(message.user_token)
        if not svc.registry.is_registered(message.device_id):
            raise UnknownDevice(message.device_id or "<none>")
        bound = svc.bindings.bound_user(message.device_id)
        if bound is not None and bound != user:
            raise AuthorizationFailed("not-owner", "device is bound to another user")
        token = svc.registry.issue_dev_token(message.device_id, user, svc.now)
        return TokenResponse(token=token)

    def handle_bind_token_request(self, packet: Packet, message: BindTokenRequest) -> TokenResponse:
        """Capability design: issue a single-use BindToken to the user."""
        svc = self.service
        if svc.design.bind_schema is not BindSchema.CAPABILITY:
            raise RequestRejected("unsupported", "this vendor does not use BindTokens")
        user = self._require_user(message.user_token)
        token = svc.tokens.issue(TokenKind.BIND, user, svc.now)
        return TokenResponse(token=token)

    # ------------------------------------------------------------------
    # device authentication (Figure 3)
    # ------------------------------------------------------------------

    def authenticate_device(
        self,
        device_id: Optional[str],
        dev_token: Optional[str],
        signature: Optional[str],
        payload: Optional[dict] = None,
    ) -> str:
        """Verify device identity per the design; return the device ID.

        DEV_ID and DEV_TOKEN decisions depend only on (device_id,
        dev_token) plus registry/token state, so they are served from the
        authorization cache; PUBKEY verification covers the per-message
        *payload* and is always computed fresh.
        """
        svc = self.service
        if svc.design.device_auth is DeviceAuthMode.PUBKEY:
            return self._authenticate_device_uncached(
                device_id, dev_token, signature, payload
            )
        cache = svc.authz_cache
        key = ("dev", device_id, dev_token)
        value = cache.lookup(key)
        if value is not MISS:
            return unwrap(value)
        try:
            result = self._authenticate_device_uncached(
                device_id, dev_token, signature, payload
            )
        except AuthenticationFailed as exc:
            cache.store_rejection(key, exc)
            raise
        cache.store(key, result)
        return result

    def _authenticate_device_uncached(
        self,
        device_id: Optional[str],
        dev_token: Optional[str],
        signature: Optional[str],
        payload: Optional[dict] = None,
    ) -> str:
        svc = self.service
        mode = svc.design.device_auth
        if device_id is None or not svc.registry.is_registered(device_id):
            raise AuthenticationFailed("unknown-device-id", str(device_id))
        if mode is DeviceAuthMode.DEV_ID:
            # Static identifier: possession of the ID *is* the identity.
            return device_id
        if mode is DeviceAuthMode.DEV_TOKEN:
            if not svc.registry.check_dev_token(device_id, dev_token):
                raise AuthenticationFailed("bad-dev-token", "stale or missing DevToken")
            return device_id
        if mode is DeviceAuthMode.PUBKEY:
            record = svc.registry.get(device_id)
            if record.public_key is None:
                raise AuthenticationFailed("no-public-key", device_id)
            if signature is None or not record.public_key.verify(payload or {}, signature):
                raise AuthenticationFailed("bad-signature", device_id)
            return device_id
        raise ProtocolError(f"unhandled auth mode {mode}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Status (registration / heartbeat)
    # ------------------------------------------------------------------

    def handle_status(self, packet: Packet, message: StatusMessage) -> Response:
        """Authenticate a Status message and update the shadow (Figure 2 (1)/(6))."""
        svc = self.service
        device_id = self.authenticate_device(
            message.device_id,
            message.dev_token,
            message.signature,
            payload={"device_id": message.device_id, "model": message.model},
        )
        shadow = svc.shadows.get(device_id)
        # Connection bookkeeping: on single-connection clouds the newest
        # authenticated sender evicts the previous one (the A3-4 lever);
        # otherwise the first connection is kept as the device channel.
        if shadow.connection_id is None or svc.design.single_connection_per_device:
            connection = packet.src
        else:
            connection = shadow.connection_id
        shadow.mark_status(svc.now, connection_id=connection)
        shadow.reported_model = message.model or shadow.reported_model
        shadow.reported_firmware = message.firmware_version or shadow.reported_firmware
        if message.is_registration:
            svc.shadows.mark_registration(device_id, svc.now, packet.observed_src_ip)
        if svc.design.status_yields_user_data and message.telemetry:
            svc.relay.report_telemetry(device_id, message.telemetry, svc.now, packet.src)
        return Response(payload={"state": shadow.state.value})

    # ------------------------------------------------------------------
    # Bind (Figure 4)
    # ------------------------------------------------------------------

    def handle_bind(self, packet: Packet, message: BindMessage) -> Response:
        """Create a binding per the Figure 4 design and the policy checks."""
        svc = self.service
        design = svc.design
        if design.bind_schema is BindSchema.CAPABILITY:
            return self._handle_capability_bind(packet, message)

        user = self._bind_requester(message)
        device_id = message.device_id
        limit = design.bind_probe_rate_limit
        if limit is not None and svc.bind_probe_failures.get(user, 0) >= limit:
            raise RequestRejected(
                "rate-limited",
                "too many bind attempts for unknown devices from this account",
            )
        if not svc.registry.is_registered(device_id):
            if limit is not None:
                svc.bind_probe_failures[user] = svc.bind_probe_failures.get(user, 0) + 1
            raise UnknownDevice(device_id or "<none>")
        shadow = svc.shadows.get(device_id)

        if design.ip_match_required:
            self._check_ip_match(device_id, packet)
        if design.bind_requires_online_device and not shadow.is_online:
            raise BindingConflict("device-offline", "binding requires an online device")

        replace = False
        existing = svc.bindings.get(device_id)
        if existing is not None:
            if not design.rebind_replaces_existing:
                raise BindingConflict(
                    "already-bound", f"device {device_id!r} is bound to another user"
                )
            replace = True
            self._teardown_binding(device_id, reason="replaced")

        post_token: Optional[str] = None
        if design.post_binding_token:
            post_token = svc.tokens.issue(
                TokenKind.POST_BINDING, f"{device_id}:{user}", svc.now
            )
        svc.bindings.create(device_id, user, svc.now, post_token=post_token)
        shadow.mark_bound(user, svc.now)
        svc.notify(user, "binding-created", device_id)

        rotated: Optional[str] = None
        if design.device_auth is DeviceAuthMode.DEV_TOKEN:
            # A binding by a new user rotates the DevToken; the physical
            # device keeps working only if the binding user delivers the
            # fresh token locally (Section VI-B, device #3's saving grace).
            rotated = svc.registry.rotate_for_new_binding(device_id, user, svc.now)

        payload = {"bound_user": user, "replaced": replace}
        if post_token is not None:
            payload["post_binding_token"] = post_token
        if rotated is not None:
            payload["dev_token"] = rotated
        return Response(payload=payload)

    def _bind_requester(self, message: BindMessage) -> str:
        """Authenticate whoever is asking to create the binding."""
        svc = self.service
        design = svc.design
        if design.bind_sender is BindSender.DEVICE:
            # Figure 4b: the device submits the user's credentials, which
            # were delivered to it during local configuration.
            if message.user_id is None or message.user_pw is None:
                raise RequestRejected(
                    "bad-bind-format", "this vendor expects device-submitted credentials"
                )
            if not svc.accounts.check_password(message.user_id, message.user_pw):
                raise AuthenticationFailed("bad-credentials", "device-submitted login failed")
            return message.user_id
        if message.user_token is None:
            raise RequestRejected(
                "bad-bind-format", "this vendor expects an app-submitted UserToken"
            )
        return self._require_user(message.user_token)

    def _check_ip_match(self, device_id: str, packet: Packet) -> None:
        """Device #7: bind only after a fresh button-press registration
        arriving from the same source IP as the app's request."""
        svc = self.service
        mark = svc.shadows.registration_of(device_id)
        if mark is None or svc.now - mark.time > svc.design.bind_window_seconds:
            raise BindingConflict(
                "no-fresh-registration",
                f"press the device button within {svc.design.bind_window_seconds:.0f}s",
            )
        if mark.source_ip != packet.observed_src_ip:
            raise BindingConflict(
                "ip-mismatch",
                f"app at {packet.observed_src_ip} but device registered from {mark.source_ip}",
            )

    def _handle_capability_bind(self, packet: Packet, message: BindMessage) -> Response:
        """Figure 4c: the *device* submits the BindToken it received
        locally from the user's app, proving local co-presence."""
        svc = self.service
        record = svc.tokens.lookup(message.bind_token, TokenKind.BIND)
        if record is None:
            raise AuthorizationFailed("bad-bind-token", "unknown or spent BindToken")
        device_id = message.device_id
        if device_id is None or not svc.registry.is_registered(device_id):
            raise UnknownDevice(device_id or "<none>")
        shadow = svc.shadows.get(device_id)
        if not shadow.is_online or shadow.connection_id != packet.src:
            raise AuthenticationFailed(
                "device-not-authenticated",
                "capability bindings are confirmed over the device's own connection",
            )
        if svc.bindings.is_bound(device_id):
            raise BindingConflict("already-bound", "unbind first")
        svc.tokens.revoke(record.token)  # single use
        user = record.subject
        post_token = svc.tokens.issue(TokenKind.POST_BINDING, f"{device_id}:{user}", svc.now)
        svc.bindings.create(device_id, user, svc.now, post_token=post_token)
        # The device itself just proved presence: confirm through the
        # store so the flip is journaled like any other mutation.
        svc.bindings.confirm_device(device_id, post_token)
        shadow.mark_bound(user, svc.now)
        return Response(payload={"bound_user": user, "post_binding_token": post_token})

    # ------------------------------------------------------------------
    # Unbind (Section IV-C)
    # ------------------------------------------------------------------

    def handle_unbind(self, packet: Packet, message: UnbindMessage) -> Response:
        """Revoke a binding per the Section IV-C revocation policy."""
        svc = self.service
        design = svc.design
        if not design.unbind_supported:
            raise RequestRejected("unbind-unsupported", "vendor has no revocation endpoint")
        device_id = message.device_id
        if not svc.registry.is_registered(device_id):
            raise UnknownDevice(device_id or "<none>")
        binding = svc.bindings.get(device_id)
        if binding is None:
            raise BindingConflict("not-bound", f"device {device_id!r} has no binding")

        if message.user_token is None:
            # Type 2: Unbind : DevId — anyone with the ID can revoke.
            if not design.unbind_accepts_bare_dev_id:
                raise RequestRejected(
                    "missing-user-token", "this vendor requires a UserToken to unbind"
                )
        else:
            # Type 1: Unbind : (DevId, UserToken)
            user = self._require_user(message.user_token)
            if design.unbind_checks_bound_user and binding.user_id != user:
                raise AuthorizationFailed(
                    "not-bound-user", "requester is not the bound user"
                )

        self._teardown_binding(device_id, reason="unbound")
        return Response(payload={"unbound": device_id})

    def _teardown_binding(self, device_id: str, reason: str) -> None:
        """Shared cleanup when a binding disappears (revoked or replaced)."""
        svc = self.service
        binding = svc.bindings.revoke(device_id)
        if binding.post_token is not None:
            svc.tokens.revoke(binding.post_token)
        svc.shares.revoke_all(device_id)  # grants die with the binding
        svc.relay.forget_device(device_id)
        svc.notify(binding.user_id, f"binding-{reason}", device_id)
        shadow = svc.shadows.get(device_id)
        if shadow.is_bound:
            shadow.mark_unbound(svc.now)
        svc.audit.record(svc.now, "cloud", "-", f"binding-{reason}:{device_id}", "ok")

    # ------------------------------------------------------------------
    # post-binding traffic
    # ------------------------------------------------------------------

    def _require_bound_user(self, user_token: Optional[str], device_id: str):
        svc = self.service
        cache = svc.authz_cache
        key = ("owner", user_token, device_id)
        value = cache.lookup(key)
        if value is not MISS:
            # Same epoch => the binding row cannot have changed; re-fetch
            # the live object rather than caching a reference to it.
            return unwrap(value), svc.bindings.get(device_id)
        try:
            user = self._require_user(user_token)
            binding = svc.bindings.get(device_id)
            if binding is None:
                raise BindingConflict(
                    "not-bound", f"device {device_id!r} has no binding"
                )
            if binding.user_id != user:
                raise AuthorizationFailed(
                    "not-bound-user", "requester is not the bound user"
                )
        except (AuthenticationFailed, AuthorizationFailed, BindingConflict) as exc:
            cache.store_rejection(key, exc)
            raise
        cache.store(key, user)
        return user, binding

    def _require_access(self, user_token: Optional[str], device_id: str):
        """Owner *or* share-grantee access (control/query surfaces).

        Returns ``(user, binding, is_owner)``.  Grants are explicit
        cloud-side authorizations created by the owner — never ambient
        authority — so they extend the binding without weakening it.
        """
        svc = self.service
        cache = svc.authz_cache
        key = ("access", user_token, device_id)
        value = cache.lookup(key)
        if value is not MISS:
            user, is_owner = unwrap(value)
            return user, svc.bindings.get(device_id), is_owner
        try:
            user = self._require_user(user_token)
            binding = svc.bindings.get(device_id)
            if binding is None:
                raise BindingConflict(
                    "not-bound", f"device {device_id!r} has no binding"
                )
            if binding.user_id == user:
                is_owner = True
            elif svc.shares.is_granted(device_id, user):
                is_owner = False
            else:
                raise AuthorizationFailed(
                    "not-bound-user", "requester is not the bound user"
                )
        except (AuthenticationFailed, AuthorizationFailed, BindingConflict) as exc:
            cache.store_rejection(key, exc)
            raise
        cache.store(key, (user, is_owner))
        return user, binding, is_owner

    def handle_control(self, packet: Packet, message: ControlMessage) -> Response:
        """Relay a user command to the device, enforcing ownership."""
        svc = self.service
        user, binding, is_owner = self._require_access(
            message.user_token, message.device_id
        )
        shadow = svc.shadows.get(message.device_id)
        if not shadow.is_online:
            raise RequestRejected("device-offline", "device is not connected")
        if svc.design.post_binding_token:
            # The token pins the owner<->device pair; grantees are
            # authorized by their explicit grant instead, but the device
            # side must still have confirmed the binding.
            if is_owner and message.post_binding_token != binding.post_token:
                raise AuthorizationFailed("bad-post-token", "control requires the binding token")
            if not binding.device_confirmed:
                raise AuthorizationFailed(
                    "device-not-confirmed",
                    "device never presented this binding's token",
                )
        svc.relay.queue_command(
            message.device_id,
            QueuedCommand(
                message.command,
                dict(message.arguments),
                user,
                svc.now,
                trace_id=packet.trace.trace_id if packet.trace is not None else None,
            ),
        )
        return Response(payload={"queued": message.command})

    def handle_event_poll(self, packet: Packet, message: EventPollRequest) -> Response:
        """Drain the requesting user's notification inbox."""
        svc = self.service
        user = self._require_user(message.user_token)
        events = svc.events.poll(user)
        return Response(payload={
            "events": [
                {"time": e.time, "kind": e.kind, "device_id": e.device_id,
                 "detail": e.detail}
                for e in events
            ],
        })

    def handle_binding_info(self, packet: Packet, message: BindingInfoRequest) -> Response:
        """Return the requester's own binding metadata (incl. the
        post-binding token — the user's half, Section IV-B)."""
        svc = self.service
        user, binding = self._require_bound_user(message.user_token, message.device_id)
        payload = {
            "bound_user": user,
            "created_at": binding.created_at,
            "device_confirmed": binding.device_confirmed,
        }
        if binding.post_token is not None:
            payload["post_binding_token"] = binding.post_token
        return Response(payload=payload)

    def handle_share(self, packet: Packet, message: ShareRequest) -> Response:
        """Owner grants another account access (many-to-one binding)."""
        svc = self.service
        user, _binding = self._require_bound_user(message.user_token, message.device_id)
        if not svc.accounts.exists(message.grantee):
            raise RequestRejected("unknown-grantee", message.grantee)
        svc.shares.grant(message.device_id, user, message.grantee, svc.now)
        return Response(payload={"shared_with": message.grantee})

    def handle_share_revoke(self, packet: Packet, message: ShareRevoke) -> Response:
        """Withdraw a share grant (owner only)."""
        svc = self.service
        self._require_bound_user(message.user_token, message.device_id)
        if not svc.shares.revoke(message.device_id, message.grantee):
            raise RequestRejected("not-shared", message.grantee)
        return Response(payload={"revoked": message.grantee})

    def handle_schedule(self, packet: Packet, message: ScheduleUpdate) -> Response:
        """Store the owner-set schedule for later device sync."""
        svc = self.service
        user, _binding = self._require_bound_user(message.user_token, message.device_id)
        svc.relay.set_schedule(message.device_id, message.schedule)
        return Response(payload={"schedule": dict(message.schedule)})

    def handle_query(self, packet: Packet, message: QueryRequest) -> Response:
        """Read back device state/telemetry/schedule for an authorized user."""
        svc = self.service
        user, _binding, _is_owner = self._require_access(
            message.user_token, message.device_id
        )
        shadow = svc.shadows.get(message.device_id)
        telemetry = svc.relay.telemetry_of(message.device_id)
        payload = {
            "state": shadow.state.value,
            "telemetry": dict(telemetry.data) if telemetry else None,
            "schedule": svc.relay.schedule_of(message.device_id),
        }
        return Response(payload=payload)

    def handle_fetch(self, packet: Packet, message: DeviceFetch) -> Response:
        """Device poll: pending commands + (for data-bearing channels) the
        schedule.  This is the A1-stealing surface on DevId designs."""
        svc = self.service
        device_id = self.authenticate_device(
            message.device_id,
            message.dev_token,
            message.signature,
            payload={"device_id": message.device_id, "model": ""},
        )
        binding = svc.bindings.get(device_id)
        if binding is not None and message.post_binding_token is not None:
            # Through the store, not the dataclass, so the confirmation
            # flip reaches an attached journal.
            svc.bindings.confirm_device(device_id, message.post_binding_token)
        commands = svc.relay.drain_commands(device_id)
        payload = {
            "commands": [
                {"command": c.command, "arguments": dict(c.arguments), "issued_by": c.issued_by}
                for c in commands
            ],
        }
        if svc.design.status_yields_user_data:
            payload["schedule"] = svc.relay.schedule_of(device_id)
        return Response(payload=payload)

