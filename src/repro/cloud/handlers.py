"""Cloud endpoints as thin policy *enforcement* points (PEPs).

Each handler implements one endpoint of the vendor cloud in three
steps: phrase the request as a typed
:class:`~repro.cloud.pdp.model.AuthzRequest`, enforce the
:class:`~repro.cloud.pdp.model.Decision` made by the cloud's policy
decision point (:class:`~repro.cloud.pdp.engine.PolicyDecisionPoint`),
and perform the allowed mutation.  Every authentication/authorization
*check* lives in the PDP's declarative rule list
(:class:`~repro.cloud.pdp.spec.PolicySpec`), compiled from the
:class:`~repro.cloud.policy.VendorDesign`; attacks in ``repro.attacks``
succeed or fail *only* because of decisions made there — there is no
out-of-band "this vendor is vulnerable" flag anywhere.

Map from paper to code:

* Figure 3 (device authentication)  -> the ``authenticate-device`` rule
* Figure 4 (binding creation)       -> :meth:`EndpointHandlers.handle_bind`
* Section IV-C (binding revocation) -> :meth:`EndpointHandlers.handle_unbind`
* Section IV-B (post-binding authorization) -> the
  ``require-post-binding-token`` rule + the ``post_token`` issuance in
  :meth:`handle_bind` / :meth:`handle_fetch`
* Device #7's IP-match check        -> the
  ``require-fresh-same-ip-registration`` rule
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cloud.pdp.model import AuthzRequest, Decision
from repro.cloud.relay import QueuedCommand
from repro.core.errors import RequestRejected
from repro.core.messages import (
    BindingInfoRequest,
    BindMessage,
    BindTokenRequest,
    ControlMessage,
    DeviceFetch,
    DevTokenRequest,
    EventPollRequest,
    LoginRequest,
    LoginResponse,
    QueryRequest,
    Response,
    ScheduleUpdate,
    ShareRequest,
    ShareRevoke,
    StatusMessage,
    TokenResponse,
    UnbindMessage,
)
from repro.identity.tokens import TokenKind
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cloud.service import CloudService


class EndpointHandlers:
    """The vendor cloud's request handlers (enforcement points).

    The recurring read-only authorization questions (token -> user,
    device credential check, user-may-touch-device) are answered inside
    the PDP rules through the cloud's
    :class:`~repro.cloud.authz.AuthorizationCache`: pure decisions
    memoized under the shared authorization epoch, so any
    binding/token/share/registry mutation invalidates them wholesale.
    Only decisions, never store objects, are cached — live records
    (bindings) are re-fetched on every hit.
    """

    def __init__(self, service: "CloudService") -> None:
        self.service = service

    # ------------------------------------------------------------------
    # enforcement
    # ------------------------------------------------------------------

    def _enforce(self, decision: Decision) -> Decision:
        """Apply the decision's obligations, then raise any rejection.

        Obligations are deny-path side effects the policy demands even
        though the request fails (XACML-style); today's only obligation
        is the bind-probe enumeration counter, charged *before* the
        rejection propagates — exactly the pre-PDP ordering.
        """
        svc = self.service
        for kind, argument in decision.obligations:
            if kind == "count-bind-probe-failure":
                svc.bind_probe_failures[argument] = (
                    svc.bind_probe_failures.get(argument, 0) + 1
                )
        if not decision.allowed:
            raise decision.rejection
        return decision

    def _decide(self, request: AuthzRequest) -> Decision:
        """Ask the PDP and enforce its verdict in one step."""
        return self._enforce(self.service.pdp.decide(request))

    # ------------------------------------------------------------------
    # account endpoints
    # ------------------------------------------------------------------

    def handle_login(self, packet: Packet, message: LoginRequest) -> LoginResponse:
        """Password login (Figure 1 step 1)."""
        svc = self.service
        self._decide(AuthzRequest("login", user_id=message.user_id))
        token = svc.accounts.login(message.user_id, message.user_pw, svc.now)
        return LoginResponse(user_id=message.user_id, user_token=token)

    def handle_dev_token_request(self, packet: Packet, message: DevTokenRequest) -> TokenResponse:
        """Type-1 auth: the app fetches a DevToken to deliver locally.

        If the device is already bound, only its bound user may fetch a
        token — otherwise a remote stranger could mint a credential for
        someone else's device (the ``require-unbound-or-owner`` rule).
        """
        svc = self.service
        decision = self._decide(AuthzRequest(
            "dev-token",
            user_token=message.user_token,
            device_id=message.device_id,
        ))
        user = decision.context["user"]
        token = svc.registry.issue_dev_token(message.device_id, user, svc.now)
        return TokenResponse(token=token)

    def handle_bind_token_request(self, packet: Packet, message: BindTokenRequest) -> TokenResponse:
        """Capability design: issue a single-use BindToken to the user."""
        svc = self.service
        decision = self._decide(AuthzRequest(
            "bind-token", user_token=message.user_token,
        ))
        token = svc.tokens.issue(TokenKind.BIND, decision.context["user"], svc.now)
        return TokenResponse(token=token)

    # ------------------------------------------------------------------
    # Status (registration / heartbeat)
    # ------------------------------------------------------------------

    def handle_status(self, packet: Packet, message: StatusMessage) -> Response:
        """Authenticate a Status message and update the shadow (Figure 2 (1)/(6))."""
        svc = self.service
        decision = self._decide(AuthzRequest(
            "status",
            device_id=message.device_id,
            dev_token=message.dev_token,
            signature=message.signature,
            payload={"device_id": message.device_id, "model": message.model},
        ))
        device_id = decision.context["device"]
        shadow = svc.shadows.get(device_id)
        # Connection bookkeeping: on single-connection clouds the newest
        # authenticated sender evicts the previous one (the A3-4 lever);
        # otherwise the first connection is kept as the device channel.
        if shadow.connection_id is None or svc.design.single_connection_per_device:
            connection = packet.src
        else:
            connection = shadow.connection_id
        shadow.mark_status(svc.now, connection_id=connection)
        shadow.reported_model = message.model or shadow.reported_model
        shadow.reported_firmware = message.firmware_version or shadow.reported_firmware
        if message.is_registration:
            svc.shadows.mark_registration(device_id, svc.now, packet.observed_src_ip)
        if svc.design.status_yields_user_data and message.telemetry:
            svc.relay.report_telemetry(device_id, message.telemetry, svc.now, packet.src)
        return Response(payload={"state": shadow.state.value})

    # ------------------------------------------------------------------
    # Bind (Figure 4)
    # ------------------------------------------------------------------

    def handle_bind(self, packet: Packet, message: BindMessage) -> Response:
        """Create a binding per the Figure 4 design and the policy rules."""
        svc = self.service
        decision = self._decide(AuthzRequest(
            "bind",
            source=packet.src,
            source_ip=packet.observed_src_ip,
            device_id=message.device_id,
            user_token=message.user_token,
            user_id=message.user_id,
            user_pw=message.user_pw,
            bind_token=message.bind_token,
        ))
        if "bind_record" in decision.context:
            return self._capability_bind(decision, message)
        return self._acl_bind(decision, message)

    def _acl_bind(self, decision: Decision, message: BindMessage) -> Response:
        """Figure 4a/4b mutation: create (or replace) the ACL binding."""
        svc = self.service
        design = svc.design
        user = decision.context["user"]
        device_id = message.device_id
        shadow = svc.shadows.get(device_id)

        replace = bool(decision.context.get("replace", False))
        if replace:
            self._teardown_binding(device_id, reason="replaced")

        post_token: Optional[str] = None
        if design.post_binding_token:
            post_token = svc.tokens.issue(
                TokenKind.POST_BINDING, f"{device_id}:{user}", svc.now
            )
        svc.bindings.create(device_id, user, svc.now, post_token=post_token)
        shadow.mark_bound(user, svc.now)
        svc.notify(user, "binding-created", device_id)

        rotated: Optional[str] = None
        if design.device_auth.value == "DevToken":
            # A binding by a new user rotates the DevToken; the physical
            # device keeps working only if the binding user delivers the
            # fresh token locally (Section VI-B, device #3's saving grace).
            rotated = svc.registry.rotate_for_new_binding(device_id, user, svc.now)

        payload = {"bound_user": user, "replaced": replace}
        if post_token is not None:
            payload["post_binding_token"] = post_token
        if rotated is not None:
            payload["dev_token"] = rotated
        return Response(payload=payload)

    def _capability_bind(self, decision: Decision, message: BindMessage) -> Response:
        """Figure 4c mutation: consume the BindToken, confirm, bind."""
        svc = self.service
        record = decision.context["bind_record"]
        user = decision.context["user"]
        device_id = message.device_id
        svc.tokens.revoke(record.token)  # single use
        post_token = svc.tokens.issue(TokenKind.POST_BINDING, f"{device_id}:{user}", svc.now)
        svc.bindings.create(device_id, user, svc.now, post_token=post_token)
        # The device itself just proved presence: confirm through the
        # store so the flip is journaled like any other mutation.
        svc.bindings.confirm_device(device_id, post_token)
        svc.shadows.get(device_id).mark_bound(user, svc.now)
        return Response(payload={"bound_user": user, "post_binding_token": post_token})

    # ------------------------------------------------------------------
    # Unbind (Section IV-C)
    # ------------------------------------------------------------------

    def handle_unbind(self, packet: Packet, message: UnbindMessage) -> Response:
        """Revoke a binding per the Section IV-C revocation policy."""
        self._decide(AuthzRequest(
            "unbind",
            device_id=message.device_id,
            user_token=message.user_token,
        ))
        self._teardown_binding(message.device_id, reason="unbound")
        return Response(payload={"unbound": message.device_id})

    def _teardown_binding(self, device_id: str, reason: str) -> None:
        """Shared cleanup when a binding disappears (revoked or replaced)."""
        svc = self.service
        binding = svc.bindings.revoke(device_id)
        if binding.post_token is not None:
            svc.tokens.revoke(binding.post_token)
        svc.shares.revoke_all(device_id)  # grants die with the binding
        svc.relay.forget_device(device_id)
        svc.notify(binding.user_id, f"binding-{reason}", device_id)
        shadow = svc.shadows.get(device_id)
        if shadow.is_bound:
            shadow.mark_unbound(svc.now)
        svc.audit.record(svc.now, "cloud", "-", f"binding-{reason}:{device_id}", "ok")

    # ------------------------------------------------------------------
    # post-binding traffic
    # ------------------------------------------------------------------

    def handle_control(self, packet: Packet, message: ControlMessage) -> Response:
        """Relay a user command to the device, enforcing ownership."""
        svc = self.service
        decision = self._decide(AuthzRequest(
            "control",
            user_token=message.user_token,
            device_id=message.device_id,
            post_binding_token=message.post_binding_token,
        ))
        svc.relay.queue_command(
            message.device_id,
            QueuedCommand(
                message.command,
                dict(message.arguments),
                decision.context["user"],
                svc.now,
                trace_id=packet.trace.trace_id if packet.trace is not None else None,
            ),
        )
        return Response(payload={"queued": message.command})

    def handle_event_poll(self, packet: Packet, message: EventPollRequest) -> Response:
        """Drain the requesting user's notification inbox."""
        svc = self.service
        decision = self._decide(AuthzRequest(
            "event-poll", user_token=message.user_token,
        ))
        events = svc.events.poll(decision.context["user"])
        return Response(payload={
            "events": [
                {"time": e.time, "kind": e.kind, "device_id": e.device_id,
                 "detail": e.detail}
                for e in events
            ],
        })

    def handle_binding_info(self, packet: Packet, message: BindingInfoRequest) -> Response:
        """Return the requester's own binding metadata (incl. the
        post-binding token — the user's half, Section IV-B)."""
        decision = self._decide(AuthzRequest(
            "binding-info",
            user_token=message.user_token,
            device_id=message.device_id,
        ))
        binding = decision.context["binding"]
        payload = {
            "bound_user": decision.context["user"],
            "created_at": binding.created_at,
            "device_confirmed": binding.device_confirmed,
        }
        if binding.post_token is not None:
            payload["post_binding_token"] = binding.post_token
        return Response(payload=payload)

    def handle_share(self, packet: Packet, message: ShareRequest) -> Response:
        """Owner grants another account access (many-to-one binding)."""
        svc = self.service
        decision = self._decide(AuthzRequest(
            "share",
            user_token=message.user_token,
            device_id=message.device_id,
            grantee=message.grantee,
        ))
        svc.shares.grant(
            message.device_id, decision.context["user"], message.grantee, svc.now
        )
        return Response(payload={"shared_with": message.grantee})

    def handle_share_revoke(self, packet: Packet, message: ShareRevoke) -> Response:
        """Withdraw a share grant (owner only).

        The "was it actually shared" outcome is coupled to the store
        mutation itself (``revoke`` reports whether it removed a grant),
        so it stays here in the enforcement point rather than in a rule.
        """
        svc = self.service
        self._decide(AuthzRequest(
            "share-revoke",
            user_token=message.user_token,
            device_id=message.device_id,
            grantee=message.grantee,
        ))
        if not svc.shares.revoke(message.device_id, message.grantee):
            raise RequestRejected("not-shared", message.grantee)
        return Response(payload={"revoked": message.grantee})

    def handle_schedule(self, packet: Packet, message: ScheduleUpdate) -> Response:
        """Store the owner-set schedule for later device sync."""
        svc = self.service
        self._decide(AuthzRequest(
            "schedule",
            user_token=message.user_token,
            device_id=message.device_id,
        ))
        svc.relay.set_schedule(message.device_id, message.schedule)
        return Response(payload={"schedule": dict(message.schedule)})

    def handle_query(self, packet: Packet, message: QueryRequest) -> Response:
        """Read back device state/telemetry/schedule for an authorized user."""
        svc = self.service
        self._decide(AuthzRequest(
            "query",
            user_token=message.user_token,
            device_id=message.device_id,
        ))
        shadow = svc.shadows.get(message.device_id)
        telemetry = svc.relay.telemetry_of(message.device_id)
        payload = {
            "state": shadow.state.value,
            "telemetry": dict(telemetry.data) if telemetry else None,
            "schedule": svc.relay.schedule_of(message.device_id),
        }
        return Response(payload=payload)

    def handle_fetch(self, packet: Packet, message: DeviceFetch) -> Response:
        """Device poll: pending commands + (for data-bearing channels) the
        schedule.  This is the A1-stealing surface on DevId designs."""
        svc = self.service
        decision = self._decide(AuthzRequest(
            "fetch",
            device_id=message.device_id,
            dev_token=message.dev_token,
            signature=message.signature,
            payload={"device_id": message.device_id, "model": ""},
        ))
        device_id = decision.context["device"]
        binding = svc.bindings.get(device_id)
        if binding is not None and message.post_binding_token is not None:
            # Through the store, not the dataclass, so the confirmation
            # flip reaches an attached journal.
            svc.bindings.confirm_device(device_id, message.post_binding_token)
        commands = svc.relay.drain_commands(device_id)
        payload = {
            "commands": [
                {"command": c.command, "arguments": dict(c.arguments), "issued_by": c.issued_by}
                for c in commands
            ],
        }
        if svc.design.status_yields_user_data:
            payload["schedule"] = svc.relay.schedule_of(device_id)
        return Response(payload=payload)
