"""User-facing event feed: the cloud tells owners what happened.

None of the studied vendors notified users about binding changes —
which is what makes the paper's attacks *stealthy* ("stealthy device
control", Section I).  The feed is the obvious countermeasure: every
binding-affecting action emits an event to the affected user, and the
app can poll its inbox.  The ``notifies_user`` design knob controls
whether a vendor runs the feed; ``repro.analysis.stealth`` measures how
much detectability it buys against each attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class UserEvent:
    """One notification delivered to a user's inbox."""

    time: float
    kind: str        # "binding-created" | "binding-revoked" |
                     # "binding-replaced" | "device-offline"
    device_id: str
    detail: str = ""


class EventFeed:
    """Per-user inboxes with poll cursors."""

    def __init__(self) -> None:
        self._inbox: Dict[str, List[UserEvent]] = {}
        self._cursor: Dict[str, int] = {}

    def emit(self, user_id: str, event: UserEvent) -> None:
        self._inbox.setdefault(user_id, []).append(event)

    def poll(self, user_id: str) -> List[UserEvent]:
        """New events since the user's last poll."""
        events = self._inbox.get(user_id, [])
        start = self._cursor.get(user_id, 0)
        self._cursor[user_id] = len(events)
        return events[start:]

    def all_events(self, user_id: str) -> List[UserEvent]:
        return list(self._inbox.get(user_id, []))

    def count(self, user_id: str) -> int:
        return len(self._inbox.get(user_id, []))
