"""User-facing event feed: the cloud tells owners what happened.

None of the studied vendors notified users about binding changes —
which is what makes the paper's attacks *stealthy* ("stealthy device
control", Section I).  The feed is the obvious countermeasure: every
binding-affecting action emits an event to the affected user, and the
app can poll its inbox.  The ``notifies_user`` design knob controls
whether a vendor runs the feed; ``repro.analysis.stealth`` measures how
much detectability it buys against each attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.state.protocol import Record, RecordStoreBase


@dataclass(frozen=True)
class UserEvent:
    """One notification delivered to a user's inbox."""

    time: float
    kind: str        # "binding-created" | "binding-revoked" |
                     # "binding-replaced" | "device-offline"
    device_id: str
    detail: str = ""


class EventFeed(RecordStoreBase):
    """Per-user inboxes with poll cursors.

    The feed is durable — the whole point of the countermeasure is that
    a victim eventually *sees* the notification, so a cloud restart must
    not eat unread events.  Snapshots carry two record shapes: ``event``
    records (zero-padded per-user index keeps snapshot order stable) and
    ``cursor`` records (how far each user has polled).
    """

    state_name = "events"

    def __init__(self) -> None:
        self._inbox: Dict[str, List[UserEvent]] = {}
        self._cursor: Dict[str, int] = {}

    def emit(self, user_id: str, event: UserEvent) -> None:
        """Append one notification to the user's inbox (journaled)."""
        inbox = self._inbox.setdefault(user_id, [])
        index = len(inbox)
        inbox.append(event)
        self._record_put(self._event_record(user_id, index, event))

    def poll(self, user_id: str) -> List[UserEvent]:
        """New events since the user's last poll."""
        events = self._inbox.get(user_id, [])
        start = self._cursor.get(user_id, 0)
        self._cursor[user_id] = len(events)
        if len(events) != start:
            self._record_put(self._cursor_record(user_id, len(events)))
        return events[start:]

    def all_events(self, user_id: str) -> List[UserEvent]:
        return list(self._inbox.get(user_id, []))

    def count(self, user_id: str) -> int:
        return len(self._inbox.get(user_id, []))

    # -- StateStore protocol --------------------------------------------------

    @staticmethod
    def _event_record(user_id: str, index: int, event: UserEvent) -> Record:
        """One inbox entry as a record (index keeps delivery order)."""
        return {
            "type": "event",
            "user_id": user_id,
            "index": index,
            "time": event.time,
            "kind": event.kind,
            "device_id": event.device_id,
            "detail": event.detail,
        }

    @staticmethod
    def _cursor_record(user_id: str, position: int) -> Record:
        """One poll cursor as a record."""
        return {"type": "cursor", "user_id": user_id, "position": position}

    def to_record(self, obj: Record) -> Record:
        """Records pass through unchanged (two shapes: event, cursor)."""
        return dict(obj)

    def from_record(self, record: Record) -> Record:
        """Records decode to themselves; :meth:`apply_record` interprets."""
        return dict(record)

    def record_key(self, record: Record) -> str:
        """``event:<user>:<zero-padded index>`` or ``cursor:<user>``."""
        if record.get("type") == "cursor":
            return f"cursor:{record['user_id']}"
        return f"event:{record['user_id']}:{record['index']:08d}"

    def record_count(self) -> int:
        """Inbox entries plus poll cursors."""
        return sum(len(inbox) for inbox in self._inbox.values()) + len(self._cursor)

    def snapshot_state(self) -> List[Record]:
        """Every event and cursor record, sorted by record key."""
        records: List[Record] = [
            self._event_record(user_id, index, event)
            for user_id, inbox in self._inbox.items()
            for index, event in enumerate(inbox)
        ]
        records.extend(
            self._cursor_record(user_id, position)
            for user_id, position in self._cursor.items()
        )
        return sorted(records, key=self.record_key)

    def apply_record(self, record: Record) -> Record:
        """Apply one event or cursor record (restore / replay / clone)."""
        if record.get("type") == "cursor":
            self._cursor[record["user_id"]] = record["position"]
        else:
            inbox = self._inbox.setdefault(record["user_id"], [])
            index = record["index"]
            event = UserEvent(
                record["time"], record["kind"], record["device_id"],
                record.get("detail", ""),
            )
            if index == len(inbox):
                inbox.append(event)
            elif 0 <= index < len(inbox):
                inbox[index] = event
            else:  # replay can't leave holes; indexes arrive in order
                inbox.append(event)
        self._record_put(record)
        return record

    def discard_record(self, key: str) -> bool:
        """Remove one cursor (event entries are append-only)."""
        if key.startswith("cursor:"):
            user_id = key[len("cursor:"):]
            existed = self._cursor.pop(user_id, None) is not None
            if existed:
                self._record_del(key)
            return existed
        return False

    def find_record(self, key: str) -> Optional[Record]:
        """O(1)-ish lookup of one event or cursor record by key."""
        if key.startswith("cursor:"):
            user_id = key[len("cursor:"):]
            position = self._cursor.get(user_id)
            if position is None:
                return None
            return self._cursor_record(user_id, position)
        if key.startswith("event:"):
            user_id, _, index_text = key[len("event:"):].rpartition(":")
            try:
                index = int(index_text)
            except ValueError:
                return None
            inbox = self._inbox.get(user_id, [])
            if 0 <= index < len(inbox):
                return self._event_record(user_id, index, inbox[index])
        return None
