"""The shadow store: one Figure 2 state machine per registered device.

Also tracks the side facts policy checks need: the source IP and time of
the latest *registration* status (device #7's IP-match check) and the
liveness sweep that moves shadows offline when heartbeats stop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.errors import UnknownDevice
from repro.core.shadow import DeviceShadow, TransitionRecord
from repro.net.address import IpAddress


@dataclass
class RegistrationMark:
    """When and from where the device last sent a registration status."""

    time: float
    source_ip: IpAddress


class ShadowStore:
    """All device shadows plus registration bookkeeping.

    When built with an *observer*, every shadow created here reports its
    real Figure 2 transitions via
    :meth:`~repro.obs.observer.Observer.on_shadow_transition`;
    uninstrumented stores leave the per-shadow hook unset, so the state
    machine's hot path stays untouched.
    """

    def __init__(self, observer: Optional[Any] = None) -> None:
        self._shadows: Dict[str, DeviceShadow] = {}
        self._registrations: Dict[str, RegistrationMark] = {}
        self._observer = observer

    def create(self, device_id: str) -> DeviceShadow:
        """Create the shadow for a newly manufactured device."""
        shadow = DeviceShadow(device_id)
        if self._observer is not None:
            shadow.on_transition = self._emit_transition
        self._shadows[device_id] = shadow
        return shadow

    def _emit_transition(self, shadow: DeviceShadow, record: TransitionRecord) -> None:
        """Forward one recorded transition to the observer."""
        self._observer.on_shadow_transition(
            shadow.device_id,
            record.event.value,
            record.before.value,
            record.after.value,
            record.time,
        )

    def get(self, device_id: str) -> DeviceShadow:
        try:
            return self._shadows[device_id]
        except KeyError:
            raise UnknownDevice(device_id) from None

    def has(self, device_id: str) -> bool:
        return device_id in self._shadows

    def all(self) -> List[DeviceShadow]:
        return [self._shadows[device_id] for device_id in sorted(self._shadows)]

    # -- registration marks (device #7's binding check) -----------------------

    def mark_registration(self, device_id: str, time: float, source_ip: IpAddress) -> None:
        self._registrations[device_id] = RegistrationMark(time, source_ip)

    def registration_of(self, device_id: str) -> Optional[RegistrationMark]:
        return self._registrations.get(device_id)

    # -- liveness -------------------------------------------------------------

    def sweep_offline(self, now: float, timeout: float) -> List[str]:
        """Move shadows whose heartbeats stopped to their offline state.

        Returns the IDs that transitioned (used by the audit log).
        """
        expired: List[str] = []
        for device_id in sorted(self._shadows):
            shadow = self._shadows[device_id]
            if not shadow.is_online:
                continue
            if shadow.last_seen is None or now - shadow.last_seen > timeout:
                shadow.mark_offline(now)
                expired.append(device_id)
        return expired
