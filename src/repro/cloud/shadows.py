"""The shadow store: one Figure 2 state machine per registered device.

Also tracks the side facts policy checks need: the source IP and time of
the latest *registration* status (device #7's IP-match check) and the
liveness sweep that moves shadows offline when heartbeats stop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.state.protocol import Record, RecordStoreBase
from repro.core.errors import UnknownDevice
from repro.core.shadow import DeviceShadow, TransitionRecord
from repro.net.address import IpAddress
from repro.obs.observer import Observer


@dataclass
class RegistrationMark:
    """When and from where the device last sent a registration status."""

    time: float
    source_ip: IpAddress


class ShadowStore(RecordStoreBase):
    """All device shadows plus registration bookkeeping.

    When built with an *observer*, every shadow created here reports its
    real Figure 2 transitions via
    :meth:`~repro.obs.observer.Observer.on_shadow_transition`;
    uninstrumented stores leave the per-shadow hook unset, so the state
    machine's hot path stays untouched.

    The store is **volatile** (``durable = False``): shadows are a
    projection of the registry plus the binding table, and a restart is
    a mass offline event, so snapshots and journals never carry them —
    :func:`~repro.cloud.state.snapshot.rebuild_shadow_projection`
    recreates them instead.
    """

    state_name = "shadows"
    durable = False

    def __init__(self, observer: Optional[Observer] = None) -> None:
        self._shadows: Dict[str, DeviceShadow] = {}
        self._registrations: Dict[str, RegistrationMark] = {}
        self._observer = observer

    def create(self, device_id: str) -> DeviceShadow:
        """Create the shadow for a newly manufactured device."""
        shadow = DeviceShadow(device_id)
        if self._observer is not None:
            shadow.on_transition = self._emit_transition
        self._shadows[device_id] = shadow
        self._note_mutation()
        return shadow

    def _emit_transition(self, shadow: DeviceShadow, record: TransitionRecord) -> None:
        """Forward one recorded transition to the observer."""
        self._observer.on_shadow_transition(
            shadow.device_id,
            record.event.value,
            record.before.value,
            record.after.value,
            record.time,
        )

    def get(self, device_id: str) -> DeviceShadow:
        try:
            return self._shadows[device_id]
        except KeyError:
            raise UnknownDevice(device_id) from None

    def has(self, device_id: str) -> bool:
        return device_id in self._shadows

    def all(self) -> List[DeviceShadow]:
        return [self._shadows[device_id] for device_id in sorted(self._shadows)]

    # -- registration marks (device #7's binding check) -----------------------

    def mark_registration(self, device_id: str, time: float, source_ip: IpAddress) -> None:
        self._registrations[device_id] = RegistrationMark(time, source_ip)
        self._note_mutation()

    def registration_of(self, device_id: str) -> Optional[RegistrationMark]:
        return self._registrations.get(device_id)

    # -- liveness -------------------------------------------------------------

    def sweep_offline(self, now: float, timeout: float) -> List[str]:
        """Move shadows whose heartbeats stopped to their offline state.

        Returns the IDs that transitioned (used by the audit log).
        """
        expired: List[str] = []
        for device_id in sorted(self._shadows):
            shadow = self._shadows[device_id]
            if not shadow.is_online:
                continue
            if shadow.last_seen is None or now - shadow.last_seen > timeout:
                shadow.mark_offline(now)
                expired.append(device_id)
        if expired:
            self._note_mutation()
        return expired

    # -- StateStore protocol --------------------------------------------------

    def to_record(self, obj: DeviceShadow) -> Record:
        """One shadow as a replayable record (events, not raw state)."""
        registration = self._registrations.get(obj.device_id)
        return {
            "device_id": obj.device_id,
            "online": obj.is_online,
            "bound_user": obj.bound_user,
            "time": obj.last_seen if obj.last_seen is not None else 0.0,
            "connection_id": obj.connection_id,
            "reported_model": obj.reported_model,
            "reported_firmware": obj.reported_firmware,
            "registration": (
                {"time": registration.time, "source_ip": str(registration.source_ip)}
                if registration is not None
                else None
            ),
        }

    def from_record(self, record: Record) -> DeviceShadow:
        """Decode one shadow by replaying its canonical events.

        The record names the *facts* (online, bound user, marks), and the
        decode replays them through the Figure 2 machine — so a cloned
        shadow has real history and fires the same observer transitions a
        live binding flow would.
        """
        shadow = DeviceShadow(record["device_id"])
        self._replay(shadow, record)
        return shadow

    def _replay(self, shadow: DeviceShadow, record: Record) -> None:
        """Apply a record's facts to *shadow* in canonical event order."""
        time = record.get("time", 0.0)
        if record.get("online"):
            shadow.mark_status(time, connection_id=record.get("connection_id"))
        shadow.reported_model = record.get("reported_model", "")
        shadow.reported_firmware = record.get("reported_firmware", "")
        if record.get("bound_user") is not None:
            shadow.mark_bound(record["bound_user"], time)

    def record_key(self, record: Record) -> str:
        """Shadows are keyed by device id."""
        return record["device_id"]

    def record_count(self) -> int:
        """Number of live shadows."""
        return len(self._shadows)

    def snapshot_state(self) -> List[Record]:
        """Every shadow record, sorted by device id (diagnostics only)."""
        return [
            self.to_record(self._shadows[device_id])
            for device_id in sorted(self._shadows)
        ]

    def apply_record(self, record: Record) -> DeviceShadow:
        """Rebuild one shadow from a record, replaying its events.

        The shadow is recreated through :meth:`create` so the observer
        hook is wired before any transition fires — a clone emits the
        same ``on_shadow_transition`` sequence a live flow would.
        """
        shadow = self.create(record["device_id"])
        self._replay(shadow, record)
        registration = record.get("registration")
        if registration is not None:
            self.mark_registration(
                record["device_id"],
                registration["time"],
                IpAddress(registration["source_ip"]),
            )
        self._record_put(record)
        return shadow

    def discard_record(self, key: str) -> bool:
        """Remove one shadow (and its registration mark) by device id."""
        existed = self._shadows.pop(key, None) is not None
        self._registrations.pop(key, None)
        if existed:
            self._record_del(key)
        return existed

    def find_record(self, key: str) -> Optional[Record]:
        """O(1) lookup of one shadow record (the fleet clone path)."""
        shadow = self._shadows.get(key)
        return self.to_record(shadow) if shadow is not None else None
