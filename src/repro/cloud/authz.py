"""Authorization decision cache: the first slice of the PDP refactor.

Every request the cloud serves re-derives the same read-only
authorization facts — "which user does this UserToken name", "is this
device id registered / does this DevToken match", "may this user touch
this device" — by walking the token table, registry, binding table and
share grants.  Those stores mutate rarely compared to how often they
are consulted (a mass-unbind campaign sends thousands of probes between
two successful unbinds), so the decisions are highly cacheable **as
long as staleness is impossible by construction**.

The construction here is a single shared :class:`AuthzVersion`: a
monotonic counter bumped by *every* mutation of an
authorization-relevant store (accounts, tokens, device registry,
bindings, shares — wired through
:meth:`~repro.cloud.state.protocol.RecordStoreBase.bind_authz_version`).
The :class:`AuthorizationCache` remembers the version it last populated
at and drops its whole table the moment the version moves, so a cached
decision can never outlive the state it was derived from.  The counter
is deliberately **never rewound** — warm-start restores replay records
as upserts and bump it far past the captured world's value, which only
means the restored cache starts cold (correct), never that an old
entry collides with a new epoch.

Two invariants keep this bit-identity-safe (the pooled==serial and
warm==cold oracles):

* only **pure** decisions are cached — the cached call paths perform no
  store mutation and consume no RNG, so a hit and a miss leave the
  world in identical states;
* cache statistics stay **out** of the metrics registry, state counts
  and campaign reports — a warm-started shard has different hit counts
  than a cold one, so the numbers are exposed only through
  :meth:`AuthorizationCache.stats` for benchmarks and diagnostics.

Cached rejections are stored as ``(exception class, code, detail)`` and
re-raised as fresh instances: every cacheable class below takes the
``(code, detail)`` constructor (``UnknownDevice`` does not, and is
never cached).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Tuple, Type

from repro.core.errors import (
    AuthenticationFailed,
    AuthorizationFailed,
    BindingConflict,
)

#: Rejection classes safe to cache: pure decisions with a
#: ``(code, detail)`` constructor, so a replayed raise is
#: indistinguishable from the original.
CACHEABLE_REJECTIONS: Tuple[Type[Exception], ...] = (
    AuthenticationFailed,
    AuthorizationFailed,
    BindingConflict,
)

#: Sentinel for "no cached decision" (``None`` is a valid cached value).
MISS = object()


class AuthzVersion:
    """Shared monotonic epoch of the authorization-relevant state.

    One instance per cloud, attached to every store whose contents feed
    authorization decisions.  ``bump()`` is called on each mutation of
    any of them; the value only ever grows (warm-start rewinds mutation
    *counters*, never this).
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def bump(self) -> None:
        """Advance the epoch: every cached decision is now invalid."""
        self.value += 1


class AuthorizationCache:
    """Version-guarded memo table of pure authorization decisions.

    Keys are caller-chosen hashable tuples (e.g. ``("user", token)``);
    values are whatever the caller computed.  The table is valid only
    for the :class:`AuthzVersion` epoch it was populated at: the first
    lookup after any bump clears it wholesale — O(1) amortized
    invalidation with zero per-entry version bookkeeping.
    """

    __slots__ = ("_version", "_seen", "_table", "hits", "misses", "invalidations")

    def __init__(self, version: AuthzVersion) -> None:
        self._version = version
        self._seen = version.value
        self._table: Dict[Hashable, Any] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def lookup(self, key: Hashable) -> Any:
        """The cached value for *key*, or :data:`MISS`."""
        current = self._version.value
        if current != self._seen:
            self._table.clear()
            self._seen = current
            self.invalidations += 1
            self.misses += 1
            return MISS
        value = self._table.get(key, MISS)
        if value is MISS:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def store(self, key: Hashable, value: Any) -> None:
        """Memoize *value* for *key* at the current epoch."""
        self._table[key] = value

    def store_rejection(self, key: Hashable, exc: Exception) -> None:
        """Memoize a cacheable rejection (non-cacheable ones are skipped)."""
        if isinstance(exc, CACHEABLE_REJECTIONS):
            code = getattr(exc, "code", None)
            detail = getattr(exc, "detail", "")
            self._table[key] = _Rejection(type(exc), code, detail)

    def clear(self) -> None:
        """Drop every entry (diagnostics/tests; epochs do this naturally)."""
        self._table.clear()

    def __len__(self) -> int:
        return len(self._table)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/invalidation counters and current size.

        Read by benchmarks and diagnostics only — never folded into
        metrics snapshots or campaign reports (a warm shard's counts
        differ from a cold one's, which would break bit-identity).
        """
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "entries": len(self._table),
            "lookups": total,
        }

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Rejection:
    """A memoized rejection: enough to re-raise a fresh, equal instance."""

    __slots__ = ("cls", "code", "detail")

    def __init__(self, cls: Type[Exception], code: Any, detail: str) -> None:
        self.cls = cls
        self.code = code
        self.detail = detail

    def raise_(self) -> None:
        raise self.cls(self.code, self.detail)


def unwrap(value: Any) -> Any:
    """Return a cached value, re-raising if it memoized a rejection."""
    if type(value) is _Rejection:
        value.raise_()
    return value
