"""Inferring a vendor's ID scheme from observed samples.

Section III-A's first leakage vector: "Attackers may infer, brute-force,
or enumerate the device ID according to the regulation of ID sequence
arrangement."  Given a handful of observed IDs (from purchased units,
labels, or traffic), this module classifies the scheme, extracts its
structure (shared OUI, digit count, sequential stride) and bounds the
remaining search space — exactly the reconnaissance step before an
enumeration campaign.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.errors import ConfigurationError
from repro.net.address import MAC_SUFFIX_SPACE

_MAC_RE = re.compile(r"^([0-9a-f]{2}:){5}[0-9a-f]{2}$")
_HEX_RE = re.compile(r"^[0-9a-f]+$")


@dataclass(frozen=True)
class SchemeGuess:
    """The inferred structure of a vendor's device IDs."""

    scheme: str                 # "mac-address" | "serial-number" | "random-hex" | "unknown"
    search_space: int
    detail: str
    #: for sequential serials: likely adjacent IDs to try first
    hot_candidates: tuple = ()

    @property
    def enumerable(self) -> bool:
        """Practically sweepable (< 2^25 candidates)."""
        return self.search_space <= 2 ** 25


def infer_scheme(samples: Sequence[str]) -> SchemeGuess:
    """Classify the ID scheme from observed *samples* (>= 1)."""
    if not samples:
        raise ConfigurationError("need at least one observed ID")
    cleaned = [sample.strip().lower() for sample in samples]

    if all(_MAC_RE.match(sample) for sample in cleaned):
        return _infer_mac(cleaned)
    if all(sample.isdigit() for sample in cleaned):
        return _infer_serial(cleaned)
    if all(_HEX_RE.match(sample) for sample in cleaned):
        lengths = {len(sample) for sample in cleaned}
        if len(lengths) == 1:
            length = lengths.pop()
            return SchemeGuess(
                "random-hex", 16 ** length,
                f"{length}-char hex strings, no visible structure",
            )
    return SchemeGuess("unknown", 0, "samples do not match a known scheme")


def _infer_mac(samples: List[str]) -> SchemeGuess:
    ouis = {sample[:8] for sample in samples}
    if len(ouis) == 1:
        return SchemeGuess(
            "mac-address", MAC_SUFFIX_SPACE,
            f"MAC addresses sharing OUI {ouis.pop()}: 3 free bytes",
        )
    return SchemeGuess(
        "mac-address", MAC_SUFFIX_SPACE * len(ouis),
        f"MAC addresses across {len(ouis)} OUIs",
    )


def _infer_serial(samples: List[str]) -> SchemeGuess:
    lengths = {len(sample) for sample in samples}
    if len(lengths) != 1:
        return SchemeGuess(
            "serial-number", 10 ** max(lengths),
            "numeric serials of varying length",
        )
    digits = lengths.pop()
    space = 10 ** digits
    values = sorted(int(sample) for sample in samples)
    sequential = len(values) >= 2 and all(
        values[i + 1] - values[i] <= 10 for i in range(len(values) - 1)
    )
    if sequential:
        low, high = values[0], values[-1]
        hot = tuple(
            f"{v:0{digits}d}"
            for v in range(max(0, low - 3), min(space, high + 4))
        )
        return SchemeGuess(
            "serial-number", space,
            f"{digits}-digit serials, tightly clustered (sequential issue); "
            f"observed range {low}-{high}",
            hot_candidates=hot,
        )
    return SchemeGuess(
        "serial-number", space, f"{digits}-digit serials, no visible ordering"
    )


def recommended_probe_order(guess: SchemeGuess, limit: int = 100) -> List[str]:
    """Candidate IDs to probe first, best-information first."""
    ordered: List[str] = list(guess.hot_candidates[:limit])
    if guess.scheme == "serial-number" and len(ordered) < limit:
        digits = len(ordered[0]) if ordered else 7
        seen = set(ordered)
        value = 0
        while len(ordered) < limit and value < guess.search_space:
            candidate = f"{value:0{digits}d}"
            if candidate not in seen:
                ordered.append(candidate)
            value += 1
    return ordered[:limit]
