"""Search-space and enumeration-time analysis of device-ID schemes.

Quantifies the paper's claims about weak device IDs:

* "with vendor-specific bytes excluded, the search space of MAC
  addresses is often within 3 bytes" (Section I) — 2^24 candidates;
* "some device IDs only contain 6 or 7 digits, allowing attackers to
  traverse all possible IDs within an hour" (Section I) — 10^6..10^7
  candidates at realistic cloud request rates.

``benchmarks/bench_id_search_space.py`` prints the resulting table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import ConfigurationError
from repro.identity.device_ids import DeviceIdScheme

#: Requests/second a distributed attacker can sustain against a cloud
#: API; 3,000/s traverses a 7-digit space in under an hour, matching the
#: paper's "within an hour" claim for the reported incidents.
DEFAULT_REQUEST_RATE = 3000.0

SECONDS_PER_HOUR = 3600.0


def search_space_bits(space: int) -> float:
    """Entropy of a uniform ID space, in bits."""
    if space < 1:
        raise ConfigurationError("search space must be positive")
    return math.log2(space)


def expected_attempts(space: int) -> float:
    """Mean guesses to hit one specific ID by uniform random search."""
    return (space + 1) / 2.0


def time_to_enumerate(space: int, rate: float = DEFAULT_REQUEST_RATE) -> float:
    """Seconds to traverse the whole space at *rate* requests/second."""
    if rate <= 0:
        raise ConfigurationError("request rate must be positive")
    return space / rate


def enumerable_within(space: int, seconds: float, rate: float = DEFAULT_REQUEST_RATE) -> bool:
    """Whether the full space fits in a time budget at the given rate."""
    return time_to_enumerate(space, rate) <= seconds


@dataclass(frozen=True)
class SearchSpaceReport:
    """Enumerability verdict for one ID scheme."""

    scheme: str
    space: int
    bits: float
    expected_guesses: float
    full_sweep_seconds: float
    within_one_hour: bool

    def row(self) -> str:
        """One fixed-width table row."""
        sweep = (
            f"{self.full_sweep_seconds:,.0f}s"
            if self.full_sweep_seconds < 10 * 365 * 24 * 3600
            else "infeasible"
        )
        space = f"{self.space:,}" if self.space < 10 ** 12 else f"{self.space:.2e}"
        flag = "YES" if self.within_one_hour else "no"
        return (
            f"{self.scheme:<22} {space:>18} {self.bits:>7.1f} "
            f"{sweep:>14} {flag:>9}"
        )


def analyze(scheme: DeviceIdScheme, rate: float = DEFAULT_REQUEST_RATE) -> SearchSpaceReport:
    """Build the enumerability report for one scheme."""
    space = scheme.search_space()
    sweep = time_to_enumerate(space, rate)
    return SearchSpaceReport(
        scheme=scheme.kind,
        space=space,
        bits=search_space_bits(space),
        expected_guesses=expected_attempts(space),
        full_sweep_seconds=sweep,
        within_one_hour=sweep <= SECONDS_PER_HOUR,
    )


def render_report(reports: Sequence[SearchSpaceReport], rate: float = DEFAULT_REQUEST_RATE) -> str:
    """Fixed-width table over several schemes."""
    header = (
        f"Device-ID enumerability at {rate:,.0f} req/s\n"
        f"{'scheme':<22} {'space':>18} {'bits':>7} {'full sweep':>14} {'<1 hour':>9}"
    )
    return "\n".join([header] + [report.row() for report in reports])
