"""Identity substrate: device-ID schemes, tokens, keys, entropy analysis."""

from repro.identity.device_ids import (
    DeviceIdScheme,
    MacDeviceId,
    RandomDeviceId,
    SerialDeviceId,
    scheme_from_name,
)
from repro.identity.entropy import (
    DEFAULT_REQUEST_RATE,
    SearchSpaceReport,
    analyze,
    enumerable_within,
    expected_attempts,
    render_report,
    search_space_bits,
    time_to_enumerate,
)
from repro.identity.inference import SchemeGuess, infer_scheme, recommended_probe_order
from repro.identity.keys import (
    KeyPair,
    PrivateKey,
    PublicKey,
    cached_keypair,
    generate_keypair,
)
from repro.identity.tokens import TokenKind, TokenRecord, TokenService

__all__ = [
    "DEFAULT_REQUEST_RATE",
    "DeviceIdScheme",
    "KeyPair",
    "MacDeviceId",
    "PrivateKey",
    "PublicKey",
    "RandomDeviceId",
    "SchemeGuess",
    "SearchSpaceReport",
    "SerialDeviceId",
    "infer_scheme",
    "recommended_probe_order",
    "TokenKind",
    "TokenRecord",
    "TokenService",
    "analyze",
    "enumerable_within",
    "expected_attempts",
    "cached_keypair",
    "generate_keypair",
    "render_report",
    "scheme_from_name",
    "search_space_bits",
    "time_to_enumerate",
]
