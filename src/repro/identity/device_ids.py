"""Device-ID schemes and their enumerability.

The paper's adversary model rests on how device IDs are minted:

* MAC-derived IDs: the first three bytes are the manufacturer OUI, so
  once any one device of the vendor is seen, the remaining search space
  is 3 bytes (Section I, III-A).  Five of the ten vendors do this.
* Sequential serial numbers: "some device IDs only contain 6 or 7
  digits, allowing attackers to traverse all possible IDs within an
  hour" (Section I, citing the Fredi baby-monitor and camera incidents).
* Random IDs: long enough to resist enumeration, but still *static* —
  and static identifiers can leak through ownership transfer, so even
  these must never double as authentication secrets (Section VII).

Each scheme knows how to issue IDs and what its enumeration space is;
the attacker's ID-inference tooling (``repro.attacks.id_inference``)
consumes the ``candidates`` iterators exactly like a brute-forcer.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Iterator, Optional

from repro.core.errors import ConfigurationError
from repro.net.address import MacAddress
from repro.sim.rand import DeterministicRandom


class DeviceIdScheme(ABC):
    """How a vendor mints device IDs."""

    #: short scheme name used in reports
    kind: str = "abstract"

    @abstractmethod
    def issue(self, rng: DeterministicRandom) -> str:
        """Mint a fresh device ID."""

    @abstractmethod
    def search_space(self) -> int:
        """Number of syntactically valid IDs an attacker must consider."""

    @abstractmethod
    def candidates(self) -> Iterator[str]:
        """Deterministic enumeration order of the full ID space."""

    def describe(self) -> str:
        return f"{self.kind} (search space {self.search_space():,})"


class MacDeviceId(DeviceIdScheme):
    """IDs equal to the device MAC address with a fixed vendor OUI."""

    kind = "mac-address"

    def __init__(self, oui: str) -> None:
        MacAddress.from_parts(oui, "00:00:00")  # validates the OUI
        self.oui = oui

    def issue(self, rng: DeterministicRandom) -> str:
        return str(MacAddress.from_parts(self.oui, rng.mac_suffix()))

    def search_space(self) -> int:
        return MacAddress.search_space_for_oui()

    def candidates(self) -> Iterator[str]:
        for value in range(self.search_space()):
            suffix = f"{value:06x}"
            yield str(
                MacAddress.from_parts(
                    self.oui, f"{suffix[0:2]}:{suffix[2:4]}:{suffix[4:6]}"
                )
            )


class SerialDeviceId(DeviceIdScheme):
    """Numeric serials, optionally sequential (the weakest practice)."""

    kind = "serial-number"

    def __init__(self, digits: int, prefix: str = "", sequential: bool = True,
                 start: int = 0) -> None:
        if digits < 1:
            raise ConfigurationError("serial needs at least one digit")
        self.digits = digits
        self.prefix = prefix
        self.sequential = sequential
        self._counter = itertools.count(start)

    def issue(self, rng: DeterministicRandom) -> str:
        if self.sequential:
            number = next(self._counter) % (10 ** self.digits)
            return f"{self.prefix}{number:0{self.digits}d}"
        return f"{self.prefix}{rng.serial_digits(self.digits)}"

    def search_space(self) -> int:
        return 10 ** self.digits

    def candidates(self) -> Iterator[str]:
        for number in range(self.search_space()):
            yield f"{self.prefix}{number:0{self.digits}d}"


class RandomDeviceId(DeviceIdScheme):
    """Long random hex IDs (resist enumeration; still static)."""

    kind = "random-hex"

    def __init__(self, hex_chars: int = 32) -> None:
        if hex_chars < 1:
            raise ConfigurationError("ID must have at least one hex char")
        self.hex_chars = hex_chars

    def issue(self, rng: DeterministicRandom) -> str:
        return rng.hex_string(self.hex_chars)

    def search_space(self) -> int:
        return 16 ** self.hex_chars

    def candidates(self) -> Iterator[str]:
        for value in range(self.search_space()):  # pragma: no cover - huge
            yield f"{value:0{self.hex_chars}x}"


def scheme_from_name(name: str, oui: Optional[str] = None, digits: int = 7) -> DeviceIdScheme:
    """Factory used by vendor profiles."""
    if name == "mac-address":
        return MacDeviceId(oui or "a4:77:33")
    if name == "serial-number":
        return SerialDeviceId(digits=digits)
    if name == "random-hex":
        return RandomDeviceId()
    raise ConfigurationError(f"unknown device-ID scheme {name!r}")
