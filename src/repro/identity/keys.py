"""Simulated public-key device identity (the AWS/IBM/Google design).

Figure 3's third option: a key pair is generated during manufacturing,
the public key is stored in the cloud, the private key stays on the
device, and every device message is signed.  The paper notes this is
secure but rare in commercial products because it wants trusted
hardware (Section IV-A).

The simulation models the *access-control semantics* of signatures, not
real cryptography: a signature over a payload can only be produced by
code holding the :class:`PrivateKey` object, and verification is a pure
function of (public key, payload, signature).  HMAC-SHA256 under a
per-device secret gives exactly those semantics inside one process.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Mapping

from repro.sim.rand import DeterministicRandom


def _canonical(payload: Mapping[str, object]) -> bytes:
    """Stable byte encoding of a signed payload."""
    return repr(sorted(payload.items())).encode("utf-8")


@dataclass(frozen=True)
class PublicKey:
    """Verification half of a device identity key pair."""

    key_id: str
    _secret: bytes = field(repr=False)

    def verify(self, payload: Mapping[str, object], signature: str) -> bool:
        expected = hmac.new(self._secret, _canonical(payload), hashlib.sha256).hexdigest()
        return hmac.compare_digest(expected, signature)


@dataclass(frozen=True)
class PrivateKey:
    """Signing half; lives only inside the device firmware object."""

    key_id: str
    _secret: bytes = field(repr=False)

    def sign(self, payload: Mapping[str, object]) -> str:
        return hmac.new(self._secret, _canonical(payload), hashlib.sha256).hexdigest()


@dataclass(frozen=True)
class KeyPair:
    """The manufactured pair; the private half ships inside the device."""
    public: PublicKey
    private: PrivateKey

    @property
    def key_id(self) -> str:
        return self.public.key_id


def generate_keypair(rng: DeterministicRandom, key_id: str) -> KeyPair:
    """Factory-time key generation (one pair per manufactured device)."""
    secret = rng.hex_string(64).encode("ascii")
    return KeyPair(PublicKey(key_id, secret), PrivateKey(key_id, secret))


#: Memoised pairs keyed by (rng seed, device id); see :func:`cached_keypair`.
_KEYPAIR_CACHE: dict = {}


def cached_keypair(rng: DeterministicRandom, key_id: str) -> KeyPair:
    """Memoised :func:`generate_keypair` for fleet-scale PUBKEY vendors.

    Key generation is the dominant per-device cost when building large
    PUBKEY fleets, and it is a pure function of the (forked) RNG seed and
    the device id — so rebuilding the same world (benchmark repeats,
    shard retries, serial-vs-sharded comparisons) can reuse the pair.
    The *rng* must be a fresh fork dedicated to this key, exactly as the
    uncached call sites already pass.
    """
    cache_key = (rng.seed, key_id)
    pair = _KEYPAIR_CACHE.get(cache_key)
    if pair is None:
        pair = generate_keypair(rng, key_id)
        _KEYPAIR_CACHE[cache_key] = pair
    return pair
