"""Token issuance and validation (UserToken, DevToken, BindToken).

Tokens are the *dynamic* credentials of Table I — "a piece of random
data".  The cloud owns one :class:`TokenService`; everything the paper
treats as unforgeable-because-random goes through it.  Tokens can be
revoked, which is how binding replacement invalidates a device's old
session token (the mechanism that turns bind-replacement into mere
disconnection instead of hijack under DevToken designs, Section VI-B,
device #3).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique
from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import ConfigurationError
from repro.sim.rand import DeterministicRandom


@unique
class TokenKind(Enum):
    """The four token roles of Table I (plus the post-binding token)."""
    USER = "user-token"
    DEVICE = "dev-token"
    BIND = "bind-token"
    POST_BINDING = "post-binding-token"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class TokenRecord:
    """A live token: its kind and the principal it was issued for."""

    token: str
    kind: TokenKind
    subject: str
    issued_at: float


class TokenService:
    """Issues, validates and revokes random tokens.

    Also a :class:`~repro.cloud.state.protocol.StateStore` — implemented
    by hand (not via ``RecordStoreBase``) because ``repro.identity``
    deliberately does not import ``repro.cloud``; the protocol is
    structural, so the duck-typed methods below satisfy it all the same.
    """

    #: StateStore section name (tokens live in cloud snapshots/journals).
    state_name = "tokens"
    #: Tokens must survive a restart (v1 already persisted them).
    durable = True

    def __init__(self, rng: DeterministicRandom, token_length: int = 32) -> None:
        if token_length < 8:
            raise ConfigurationError("tokens shorter than 8 chars are not tokens")
        self._rng = rng
        self._length = token_length
        self._live: Dict[str, TokenRecord] = {}
        self._journal_write: Optional[Callable[[Dict[str, Any]], None]] = None
        self._mutations = 0
        self._authz_version: Optional[Any] = None

    # -- issuance ----------------------------------------------------------

    def issue(self, kind: TokenKind, subject: str, now: float = 0.0) -> str:
        """Mint a fresh token of *kind* for *subject*."""
        token = self._rng.token(self._length)
        while token in self._live:  # pragma: no cover - astronomically rare
            token = self._rng.token(self._length)
        record = TokenRecord(token, kind, subject, now)
        self._live[token] = record
        self._journal_put(self.to_record(record))
        return token

    # -- validation ----------------------------------------------------------

    def lookup(self, token: Optional[str], kind: TokenKind) -> Optional[TokenRecord]:
        """The live record for *token* if it exists and has *kind*."""
        if token is None:
            return None
        record = self._live.get(token)
        if record is None or record.kind is not kind:
            return None
        return record

    def subject_of(self, token: Optional[str], kind: TokenKind) -> Optional[str]:
        """The principal a live token of *kind* belongs to, else ``None``."""
        record = self.lookup(token, kind)
        return record.subject if record else None

    def is_valid(self, token: Optional[str], kind: TokenKind, subject: Optional[str] = None) -> bool:
        """Whether the token is live, of the kind, and (optionally) the subject."""
        record = self.lookup(token, kind)
        if record is None:
            return False
        return subject is None or record.subject == subject

    # -- revocation ----------------------------------------------------------

    def revoke(self, token: str) -> bool:
        """Invalidate one token; returns whether it was live."""
        revoked = self._live.pop(token, None) is not None
        if revoked:
            self._journal_del(token)
        return revoked

    def revoke_subject(self, subject: str, kind: Optional[TokenKind] = None) -> int:
        """Invalidate all tokens of *subject* (optionally only one kind)."""
        doomed = [
            token
            for token, record in self._live.items()
            if record.subject == subject and (kind is None or record.kind is kind)
        ]
        for token in doomed:
            del self._live[token]
            self._journal_del(token)
        return len(doomed)

    def live_count(self, kind: Optional[TokenKind] = None) -> int:
        if kind is None:
            return len(self._live)
        return sum(1 for record in self._live.values() if record.kind is kind)

    # -- persistence --------------------------------------------------------

    def export_records(self) -> list:
        """JSON-able dump of every live token (cloud persistence)."""
        return [
            {
                "token": record.token,
                "kind": record.kind.value,
                "subject": record.subject,
                "issued_at": record.issued_at,
            }
            for record in self._live.values()
        ]

    def import_records(self, records: list) -> int:
        """Restore tokens from :meth:`export_records`; returns count."""
        for item in records:
            self.apply_record(item)
        return len(records)

    # -- StateStore protocol (duck-typed; see class docstring) ---------------

    def _journal_put(self, record: Dict[str, Any]) -> None:
        """Count the mutation and, when journaled, append an upsert entry."""
        self._mutations += 1
        if self._authz_version is not None:
            self._authz_version.bump()
        if self._journal_write is not None:
            self._journal_write({"store": self.state_name, "op": "put", "record": record})

    def _journal_del(self, key: str) -> None:
        """Count the mutation and, when journaled, append a delete entry."""
        self._mutations += 1
        if self._authz_version is not None:
            self._authz_version.bump()
        if self._journal_write is not None:
            self._journal_write({"store": self.state_name, "op": "del", "key": key})

    def bind_journal(self, write: Optional[Callable[[Dict[str, Any]], None]]) -> None:
        """Attach (or detach, with ``None``) the journal append hook."""
        self._journal_write = write

    def bind_authz_version(self, version: Optional[Any]) -> None:
        """Attach the cloud's authorization epoch (mirrors RecordStoreBase).

        Token issuance/revocation changes who every UserToken/DevToken
        names, so each mutation here must invalidate cached decisions.
        """
        self._authz_version = version

    def to_record(self, obj: TokenRecord) -> Dict[str, Any]:
        """One live token as a snapshot/journal record."""
        return {
            "token": obj.token,
            "kind": obj.kind.value,
            "subject": obj.subject,
            "issued_at": obj.issued_at,
        }

    def from_record(self, record: Dict[str, Any]) -> TokenRecord:
        """Decode one token record."""
        return TokenRecord(
            record["token"],
            TokenKind(record["kind"]),
            record["subject"],
            record["issued_at"],
        )

    def record_key(self, record: Dict[str, Any]) -> str:
        """Tokens are keyed by their own random value."""
        return record["token"]

    def record_count(self) -> int:
        """Number of live tokens."""
        return len(self._live)

    def snapshot_state(self) -> List[Dict[str, Any]]:
        """Every live token record, sorted by token value."""
        return [self.to_record(self._live[token]) for token in sorted(self._live)]

    def restore_state(self, records: List[Dict[str, Any]]) -> None:
        """Apply every record in order (fresh-restore path)."""
        for record in records:
            self.apply_record(record)

    def apply_record(self, record: Dict[str, Any]) -> TokenRecord:
        """Upsert one token (restore / journal replay / clone)."""
        decoded = self.from_record(record)
        self._live[decoded.token] = decoded
        self._journal_put(record)
        return decoded

    def discard_record(self, key: str) -> bool:
        """Remove one token by value."""
        existed = self._live.pop(key, None) is not None
        if existed:
            self._journal_del(key)
        return existed

    def find_record(self, key: str) -> Optional[Dict[str, Any]]:
        """O(1) lookup of one token record."""
        record = self._live.get(key)
        return self.to_record(record) if record is not None else None

    def clone_record(
        self,
        key: str,
        transform: Optional[Callable[[Dict[str, Any]], Optional[Dict[str, Any]]]] = None,
        into: Optional["TokenService"] = None,
    ) -> Any:
        """Copy one token record into *into* (or back into self)."""
        record = self.find_record(key)
        if record is None:
            raise ConfigurationError(f"{self.state_name}: no record for key {key!r}")
        if transform is not None:
            transformed = transform(dict(record))
            if transformed is None:
                return None
            record = transformed
        target = into if into is not None else self
        return target.apply_record(record)

    def clone_into(
        self,
        dst: "TokenService",
        transform: Optional[Callable[[Dict[str, Any]], Optional[Dict[str, Any]]]] = None,
    ) -> int:
        """Copy every token record into *dst*; returns how many landed."""
        cloned = 0
        for record in self.snapshot_state():
            if transform is not None:
                record = transform(dict(record))
                if record is None:
                    continue
            dst.apply_record(record)
            cloned += 1
        return cloned

    def merge_counts(self) -> Dict[str, int]:
        """Per-store size/churn numbers for the metrics seam."""
        return {"records": self.record_count(), "mutations": self._mutations}

    def set_mutation_count(self, mutations: int) -> None:
        """Overwrite the churn counter (warm-start restore only)."""
        self._mutations = mutations

    # -- RNG stream capture (warm-start restore) ------------------------------

    def rng_state(self):
        """The issuing RNG's stream state (picklable)."""
        return self._rng.getstate()

    def restore_rng_state(self, state) -> None:
        """Resume the issuing RNG exactly where a captured service was.

        Restore-by-records replays *past* issuance without consuming the
        stream, so the first token minted after a warm start must come
        from the same stream position the captured cloud had reached —
        otherwise post-restore tokens (and everything derived from them)
        diverge from the original world's.
        """
        self._rng.setstate(state)
