"""Token issuance and validation (UserToken, DevToken, BindToken).

Tokens are the *dynamic* credentials of Table I — "a piece of random
data".  The cloud owns one :class:`TokenService`; everything the paper
treats as unforgeable-because-random goes through it.  Tokens can be
revoked, which is how binding replacement invalidates a device's old
session token (the mechanism that turns bind-replacement into mere
disconnection instead of hijack under DevToken designs, Section VI-B,
device #3).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique
from typing import Dict, Optional

from repro.core.errors import ConfigurationError
from repro.sim.rand import DeterministicRandom


@unique
class TokenKind(Enum):
    """The four token roles of Table I (plus the post-binding token)."""
    USER = "user-token"
    DEVICE = "dev-token"
    BIND = "bind-token"
    POST_BINDING = "post-binding-token"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class TokenRecord:
    """A live token: its kind and the principal it was issued for."""

    token: str
    kind: TokenKind
    subject: str
    issued_at: float


class TokenService:
    """Issues, validates and revokes random tokens."""

    def __init__(self, rng: DeterministicRandom, token_length: int = 32) -> None:
        if token_length < 8:
            raise ConfigurationError("tokens shorter than 8 chars are not tokens")
        self._rng = rng
        self._length = token_length
        self._live: Dict[str, TokenRecord] = {}

    # -- issuance ----------------------------------------------------------

    def issue(self, kind: TokenKind, subject: str, now: float = 0.0) -> str:
        """Mint a fresh token of *kind* for *subject*."""
        token = self._rng.token(self._length)
        while token in self._live:  # pragma: no cover - astronomically rare
            token = self._rng.token(self._length)
        self._live[token] = TokenRecord(token, kind, subject, now)
        return token

    # -- validation ----------------------------------------------------------

    def lookup(self, token: Optional[str], kind: TokenKind) -> Optional[TokenRecord]:
        """The live record for *token* if it exists and has *kind*."""
        if token is None:
            return None
        record = self._live.get(token)
        if record is None or record.kind is not kind:
            return None
        return record

    def subject_of(self, token: Optional[str], kind: TokenKind) -> Optional[str]:
        """The principal a live token of *kind* belongs to, else ``None``."""
        record = self.lookup(token, kind)
        return record.subject if record else None

    def is_valid(self, token: Optional[str], kind: TokenKind, subject: Optional[str] = None) -> bool:
        """Whether the token is live, of the kind, and (optionally) the subject."""
        record = self.lookup(token, kind)
        if record is None:
            return False
        return subject is None or record.subject == subject

    # -- revocation ----------------------------------------------------------

    def revoke(self, token: str) -> bool:
        """Invalidate one token; returns whether it was live."""
        return self._live.pop(token, None) is not None

    def revoke_subject(self, subject: str, kind: Optional[TokenKind] = None) -> int:
        """Invalidate all tokens of *subject* (optionally only one kind)."""
        doomed = [
            token
            for token, record in self._live.items()
            if record.subject == subject and (kind is None or record.kind is kind)
        ]
        for token in doomed:
            del self._live[token]
        return len(doomed)

    def live_count(self, kind: Optional[TokenKind] = None) -> int:
        if kind is None:
            return len(self._live)
        return sum(1 for record in self._live.values() if record.kind is kind)

    # -- persistence --------------------------------------------------------

    def export_records(self) -> list:
        """JSON-able dump of every live token (cloud persistence)."""
        return [
            {
                "token": record.token,
                "kind": record.kind.value,
                "subject": record.subject,
                "issued_at": record.issued_at,
            }
            for record in self._live.values()
        ]

    def import_records(self, records: list) -> int:
        """Restore tokens from :meth:`export_records`; returns count."""
        kinds = {kind.value: kind for kind in TokenKind}
        for item in records:
            self._live[item["token"]] = TokenRecord(
                item["token"], kinds[item["kind"]], item["subject"], item["issued_at"]
            )
        return len(records)
