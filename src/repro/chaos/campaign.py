"""Fleet integration: chaos-enabled, degradation-aware campaigns.

:func:`apply_chaos` wires one :class:`~repro.chaos.faults.FaultPlan`
into a live :class:`~repro.fleet.FleetDeployment`: the fault injector
goes onto the network seam, every household's device and app gets a
:class:`~repro.chaos.resilience.ResilientClient`, and any scheduled
:class:`~repro.chaos.faults.CloudRestart` is armed — the cloud's current
durable state is seeded into a journal (the PR 3 crash machinery) so
the restart recovers through the real
:func:`~repro.cloud.state.journal.recover_from_journal` replay path.

:func:`binding_liveness` is the degradation metric campaigns report
next to attack success: what fraction of households still hold their
binding, and what fraction of shadows the cloud still sees online.
:class:`ChaosSpec` is the picklable knob bundle the sharded parallel
engine forwards to workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.chaos.faults import FaultPlan, plan_from_name
from repro.chaos.injector import FaultInjector
from repro.chaos.resilience import DEFAULT_RESILIENCE, RetryPolicy
from repro.cloud.state.backends import MemoryBackend
from repro.cloud.state.journal import JournalRecovery, meta_entry, recover_from_journal
from repro.fleet import FleetDeployment


@dataclass(frozen=True)
class ChaosSpec:
    """Everything a worker needs to recreate one chaos setup (picklable).

    ``plan`` is a preset name from the catalog; the actual
    :class:`~repro.chaos.faults.FaultPlan` object is materialized inside
    each shard world, so every shard derives its fault RNG from its own
    shard seed and merged results stay worker-count independent.
    """

    plan: str
    intensity: float = 1.0
    resilience: bool = True

    def materialize(self) -> FaultPlan:
        """Resolve the named plan at this spec's intensity."""
        return plan_from_name(self.plan, self.intensity)


class ChaosController:
    """Handle on one fleet's active chaos: injector, clients, restarts."""

    def __init__(
        self, fleet: FleetDeployment, plan: FaultPlan, injector: FaultInjector
    ) -> None:
        self.fleet = fleet
        self.plan = plan
        self.injector = injector
        #: One entry per executed cloud restart (journal replay stats).
        self.recoveries: List[JournalRecovery] = []

    # -- cloud restarts ------------------------------------------------------

    def _arm_restarts(self) -> None:
        """Seed a journal with current state and schedule the crashes."""
        cloud = self.fleet.cloud
        backend = MemoryBackend()
        backend.append(meta_entry(cloud.design.name))
        for name, store in cloud.state_stores().items():
            if not store.durable:
                continue
            for record in store.snapshot_state():
                backend.append({"store": name, "op": "put", "record": record})
        cloud.attach_journal(backend, write_meta=False)
        env = self.fleet.env
        for restart in self.plan.restarts:
            delay = restart.at - env.now
            if delay < 0:
                continue
            env.after(delay, self._restart_cloud)

    def _restart_cloud(self) -> None:
        """Crash the cloud and recover its successor from the journal."""
        fleet = self.fleet
        cloud = fleet.cloud
        backend = cloud.journal_backend
        if backend is None:  # pragma: no cover - defensive
            return
        node_name, public_ip = cloud.node_name, cloud.public_ip
        cloud.shutdown()
        recovery = recover_from_journal(
            fleet.env, fleet.network, fleet.design, backend,
            node_name=node_name, public_ip=public_ip,
        )
        fleet.cloud = recovery.cloud
        self.recoveries.append(recovery)
        fleet.env.observer.count("chaos.cloud_restarts")
        # A restart severs every device's persistent connection: the
        # recovered cloud sees all shadows disconnected until the next
        # heartbeat, so notifying vendors tell each bound owner their
        # device went offline (the EventFeed channel under fault plans,
        # not just under attacks).  Sorted snapshot order keeps the
        # emitted event sequence deterministic.
        if recovery.cloud.design.notifies_user:
            for record in recovery.cloud.bindings.snapshot_state():
                recovery.cloud.notify(
                    record["user_id"],
                    "device-offline",
                    record["device_id"],
                    "cloud restarted; device connection lost",
                )

    # -- reporting -----------------------------------------------------------

    def resilience_stats(self) -> Dict[str, float]:
        """Summed client stats across every household's device and app."""
        totals: Dict[str, float] = {}
        for household in self.fleet.households:
            for owner in (household.device, household.app):
                client = getattr(owner, "_client", None)
                if client is None:
                    continue
                for key, value in client.stats.items():
                    totals[key] = totals.get(key, 0) + value
        return totals

    def summary(self) -> Dict[str, Any]:
        """Picklable run summary: plan, injector stats, restarts, clients."""
        return {
            "plan": self.plan.name,
            "injector": self.injector.summary(),
            "restarts": len(self.recoveries),
            "restart_entries_applied": sum(
                r.entries_applied for r in self.recoveries
            ),
            "resilience": self.resilience_stats(),
        }


def apply_chaos(
    fleet: FleetDeployment,
    spec: ChaosSpec,
    policy: Optional[RetryPolicy] = None,
) -> ChaosController:
    """Activate *spec* on *fleet*; returns the controller handle.

    Install order is part of the determinism contract: the injector's
    RNG forks off the fleet environment by plan name, each client's RNG
    forks by its node name — none of which consumes a draw from the main
    stream, so a chaos run's world is built identically to a calm one.
    """
    plan = spec.materialize()
    injector = FaultInjector(fleet.env, plan, cloud_node=fleet.cloud.node_name)
    fleet.network.add_fault_filter("chaos", injector)
    controller = ChaosController(fleet, plan, injector)
    if spec.resilience:
        chosen = policy if policy is not None else DEFAULT_RESILIENCE
        for household in fleet.households:
            household.device.enable_resilience(chosen)
            household.app.enable_resilience(chosen)
    if plan.restarts:
        controller._arm_restarts()
    return controller


def binding_liveness(fleet: FleetDeployment) -> Dict[str, float]:
    """How alive the fleet's bindings are right now.

    ``bound`` counts households whose cloud binding still names their
    own account; ``online`` counts shadows the cloud currently sees
    online (Figure 2's upper states).  Fractions are per-household, so
    per-shard dicts merge by summing the counts and recomputing.
    """
    bound = online = 0
    cloud = fleet.cloud
    for household in fleet.households:
        device_id = household.device.device_id
        if cloud.bound_user_of(device_id) == household.user_id:
            bound += 1
        if cloud.shadows.get(device_id).state.is_online:
            online += 1
    households = len(fleet.households)
    return {
        "households": households,
        "bound": bound,
        "online": online,
        "bound_fraction": bound / households if households else 0.0,
        "online_fraction": online / households if households else 0.0,
    }


def merge_liveness(per_shard: List[Dict[str, float]]) -> Dict[str, float]:
    """Fold per-shard liveness dicts (sum counts, recompute fractions)."""
    households = int(sum(entry.get("households", 0) for entry in per_shard))
    bound = int(sum(entry.get("bound", 0) for entry in per_shard))
    online = int(sum(entry.get("online", 0) for entry in per_shard))
    return {
        "households": households,
        "bound": bound,
        "online": online,
        "bound_fraction": bound / households if households else 0.0,
        "online_fraction": online / households if households else 0.0,
    }
