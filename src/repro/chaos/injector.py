"""The fault injector: a seeded :class:`FaultPlan` interpreter.

One :class:`FaultInjector` is one plan applied to one simulated world.
It implements the :class:`~repro.net.network.Network` fault-filter seam:
the network consults it before delivering each request (partition,
brownout, loss, latency/timeout — in that fixed, documented order) and
after a successful delivery (duplicate).  Broadcast member order flows
through :meth:`deliver_order` for reordering.

Determinism: every probabilistic decision draws from the injector's own
:class:`~repro.sim.rand.DeterministicRandom`, forked off the
environment's stream by a stable label — so installing chaos never
shifts token generation, device IDs or any other draw in the world, and
the same seed always produces the same fault pattern.  Draws only
happen when a matching rule has a positive probability, so an inert
plan consumes nothing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.chaos.faults import FaultPlan
from repro.core.errors import NetworkError, RequestTimeout
from repro.sim.environment import Environment
from repro.sim.rand import DeterministicRandom


class FaultInjector:
    """Applies one :class:`FaultPlan` to a network's traffic."""

    def __init__(
        self,
        env: Environment,
        plan: FaultPlan,
        cloud_node: str = "cloud",
        rng: Optional[DeterministicRandom] = None,
        observer: Optional[Any] = None,
    ) -> None:
        self.env = env
        self.plan = plan
        self.cloud_node = cloud_node
        self.rng = rng if rng is not None else env.rng.fork(f"chaos:{plan.name}")
        self._observer = observer if observer is not None else env.observer
        #: Local accounting (also mirrored into observer counters).
        self.stats: Dict[str, int] = {
            "requests": 0,
            "dropped": 0,
            "delayed": 0,
            "timeouts": 0,
            "duplicates": 0,
            "reordered": 0,
        }

    # -- group classification ------------------------------------------------

    def group_of(self, node_name: str) -> str:
        """The fault-rule group of a node: cloud / device / app / attacker."""
        if node_name == self.cloud_node:
            return "cloud"
        return node_name.split(":", 1)[0]

    # -- the Network fault-filter seam ---------------------------------------

    def on_request(
        self, src: str, dst: str, now: float, timeout: Optional[float] = None
    ) -> None:
        """Veto or delay one request; raises to prevent delivery.

        Decision order is fixed (partition, brownout, loss, latency) so
        the draw sequence — and therefore the whole run — is a pure
        function of the seed and the request sequence.
        """
        src_group, dst_group = self.group_of(src), self.group_of(dst)
        self.stats["requests"] += 1
        for part in self.plan.partitions:
            if part.active(now) and part.severs(src_group, dst_group):
                self._drop("partition")
                raise NetworkError(
                    f"chaos: {src!r} -> {dst!r} severed by partition "
                    f"{{{', '.join(part.groups)}}}"
                )
        if dst_group == "cloud":
            for brownout in self.plan.brownouts:
                if brownout.active(now):
                    self._drop("brownout")
                    raise NetworkError(
                        f"chaos: cloud brownout until t={brownout.end:g}"
                    )
        latency = 0.0
        for fault in self.plan.link_faults:
            if not fault.active(now) or not fault.matches(src_group, dst_group):
                continue
            if fault.loss > 0.0 and self.rng.uniform(0.0, 1.0) < fault.loss:
                self._drop("loss")
                raise NetworkError(f"chaos: {src!r} -> {dst!r} lost in transit")
            latency += fault.latency
            if fault.jitter > 0.0:
                latency += self.rng.uniform(0.0, fault.jitter)
        if latency > 0.0:
            self.stats["delayed"] += 1
            self._observer.observe("chaos.latency", latency)
            if timeout is not None and latency > timeout:
                self.stats["timeouts"] += 1
                self._observer.count("chaos.timeouts")
                raise RequestTimeout(
                    f"chaos: {src!r} -> {dst!r} took {latency:.3f}s "
                    f"(> {timeout:.3f}s timeout)"
                )

    def should_duplicate(self, src: str, dst: str, now: float) -> bool:
        """Whether a successfully delivered request is re-delivered once."""
        src_group, dst_group = self.group_of(src), self.group_of(dst)
        for fault in self.plan.link_faults:
            if (
                fault.duplicate > 0.0
                and fault.active(now)
                and fault.matches(src_group, dst_group)
                and self.rng.uniform(0.0, 1.0) < fault.duplicate
            ):
                self.stats["duplicates"] += 1
                self._observer.count("chaos.duplicates")
                return True
        return False

    def deliver_order(self, src: str, members: List[str], now: float) -> List[str]:
        """Possibly reorder a broadcast's delivery order (in place safe)."""
        src_group = self.group_of(src)
        for fault in self.plan.link_faults:
            if (
                fault.reorder > 0.0
                and fault.active(now)
                and fault.matches(src_group, fault.dst)
                and self.rng.uniform(0.0, 1.0) < fault.reorder
            ):
                reordered = list(members)
                self.rng.shuffle(reordered)
                self.stats["reordered"] += 1
                self._observer.count("chaos.reordered")
                return reordered
        return members

    # -- reporting -----------------------------------------------------------

    def _drop(self, cause: str) -> None:
        """Account one vetoed delivery (local stats + observer counter)."""
        self.stats["dropped"] += 1
        self._observer.count("chaos.drops", cause=cause)

    def summary(self) -> Dict[str, int]:
        """A copy of the injector's local accounting."""
        return dict(self.stats)
