"""Chaos & resilience: deterministic fault injection for the binding world.

The paper's binding protocols live or die on unreliable home networks:
``Status`` keepalives drive the shadow's online/offline transitions, and
the A2/A3 campaigns are only distinguishable from natural churn if the
simulation can model loss, delay and cloud outages.  This package is the
robustness axis of the reproduction:

* :mod:`repro.chaos.faults` — composable, seeded :class:`FaultPlan`
  objects (per-link loss, latency+jitter, duplicate delivery, reordered
  broadcasts, network partitions, cloud brownouts and journaled cloud
  restarts) plus a named preset catalog;
* :mod:`repro.chaos.injector` — the :class:`FaultInjector` that applies
  a plan through the :class:`~repro.net.network.Network` fault-filter
  seam, drawing every probabilistic decision from its own forked RNG so
  enabling chaos never perturbs the world's other draws;
* :mod:`repro.chaos.resilience` — client-side survival: retry policies
  with exponential backoff + jitter, per-request timeouts and a small
  circuit breaker, packaged as a :class:`ResilientClient` that devices
  and apps route their cloud traffic through;
* :mod:`repro.chaos.campaign` — fleet integration: ``apply_chaos``
  wires a plan plus resilience into a
  :class:`~repro.fleet.FleetDeployment`, schedules journal-backed cloud
  restarts, and measures binding liveness for degradation-aware
  campaign reports.

Everything is deterministic per seed: same seed, same plan, same fault
pattern — including across worker counts in the sharded campaign
engine, because every shard derives its own chaos RNG from its shard
seed (see ``docs/chaos.md``).
"""

from repro.chaos.campaign import (
    ChaosController,
    ChaosSpec,
    apply_chaos,
    binding_liveness,
)
from repro.chaos.faults import (
    Brownout,
    CloudRestart,
    FaultPlan,
    LinkFault,
    Partition,
    plan_from_name,
    plan_names,
    uniform_loss_plan,
)
from repro.chaos.injector import FaultInjector
from repro.chaos.resilience import (
    DEFAULT_RESILIENCE,
    NO_RETRY,
    CircuitBreaker,
    CircuitOpen,
    ResilientClient,
    RetryPolicy,
)

__all__ = [
    "Brownout",
    "ChaosController",
    "ChaosSpec",
    "CircuitBreaker",
    "CircuitOpen",
    "CloudRestart",
    "DEFAULT_RESILIENCE",
    "FaultInjector",
    "FaultPlan",
    "LinkFault",
    "NO_RETRY",
    "Partition",
    "ResilientClient",
    "RetryPolicy",
    "apply_chaos",
    "binding_liveness",
    "plan_from_name",
    "plan_names",
    "uniform_loss_plan",
]
