"""Client resilience: retries, backoff, timeouts and circuit breaking.

The paper's devices reconnect on a fixed heartbeat and give up on the
first network error; under injected faults that wedges shadows offline
for whole sweep periods.  This module packages the standard survival
kit:

* :class:`RetryPolicy` — exponential backoff with jitter and an
  optional per-request timeout, expressed declaratively so a schedule
  can be derived (and asserted deterministic) without sending anything;
* :class:`CircuitBreaker` — a small closed/open/half-open breaker over
  the virtual clock, so a device facing a dead cloud stops hammering it
  and probes again after a cooldown;
* :class:`ResilientClient` — wraps ``network.request`` for one node:
  retries network-level failures per policy, feeds the breaker, and
  reports every retry/giveup/short-circuit through the observer seam.

Backoff delays are *modelled*: requests in this simulation are
synchronous, so a retry happens immediately in wall time while the drawn
delay is accumulated in :attr:`ResilientClient.stats` and the
``resilience.backoff`` histogram (``docs/chaos.md`` discusses the
virtual-latency model).  All jitter draws come from a client-local
forked RNG, keeping retry schedules bit-identical across same-seed
reruns and out of the world's main draw order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.errors import NetworkError, RequestRejected
from repro.core.messages import Message
from repro.sim.rand import DeterministicRandom


class CircuitOpen(NetworkError):
    """A request was short-circuited by an open circuit breaker."""


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative retry/backoff/timeout behaviour for one client.

    ``max_attempts`` counts the initial try; ``delay(n, rng)`` is the
    backoff before retry *n* (1-based): ``base_delay * multiplier**(n-1)``
    capped at ``max_delay``, then jittered by up to ±``jitter`` fraction.
    ``timeout`` (if set) is passed to the network so injected latency
    above it fails the attempt with a
    :class:`~repro.core.errors.RequestTimeout`.
    """

    max_attempts: int = 3
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 15.0
    jitter: float = 0.25
    timeout: Optional[float] = None

    def delay(self, attempt: int, rng: DeterministicRandom) -> float:
        """The backoff before retry *attempt* (1-based), jittered."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter > 0.0:
            raw *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return max(0.0, raw)

    def schedule(self, rng: DeterministicRandom) -> List[float]:
        """The full backoff schedule one exhausted request would draw.

        Deterministic for a given RNG state — the property the chaos
        test-suite pins down across same-seed reruns.
        """
        return [self.delay(attempt, rng) for attempt in range(1, self.max_attempts)]


#: Single attempt, no timeout: behaves exactly like a bare request.
NO_RETRY = RetryPolicy(max_attempts=1, jitter=0.0)

#: The default survival kit chaos campaigns install on devices and apps.
DEFAULT_RESILIENCE = RetryPolicy(
    max_attempts=4, base_delay=0.5, multiplier=2.0, max_delay=15.0,
    jitter=0.25, timeout=5.0,
)


class CircuitBreaker:
    """A minimal closed/open/half-open breaker over virtual time.

    ``failure_threshold`` consecutive network failures open the breaker;
    while open, :meth:`allow` refuses traffic until ``cooldown`` virtual
    seconds pass, then one half-open probe is let through — success
    closes the breaker, failure re-opens it for another cooldown.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, failure_threshold: int = 5, cooldown: float = 30.0) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at: Optional[float] = None
        #: How many times the breaker has tripped open (monotonic).
        self.opened_total = 0

    @property
    def state(self) -> str:
        """The breaker's current state name."""
        return self._state

    def allow(self, now: float) -> bool:
        """Whether a request may go out at time *now*."""
        if self._state == self.OPEN:
            if self._opened_at is not None and now - self._opened_at >= self.cooldown:
                self._state = self.HALF_OPEN
                return True
            return False
        return True

    def record_success(self, now: float) -> None:
        """A request got through: reset failures, close the breaker."""
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = None

    def record_failure(self, now: float) -> None:
        """A network-level failure: count it, trip if over threshold."""
        if self._state == self.HALF_OPEN:
            self._trip(now)
            return
        self._failures += 1
        if self._state == self.CLOSED and self._failures >= self.failure_threshold:
            self._trip(now)

    def _trip(self, now: float) -> None:
        """Open the breaker and start the cooldown window."""
        self._state = self.OPEN
        self._opened_at = now
        self._failures = 0
        self.opened_total += 1


class ResilientClient:
    """Retrying, breaker-guarded wrapper over one node's cloud requests.

    Application-level rejections
    (:class:`~repro.core.errors.RequestRejected`) count as *successful
    delivery* — the network worked; the cloud said no — so they never
    consume retries and they reset the breaker.  Only
    :class:`~repro.core.errors.NetworkError` (loss, partitions,
    brownouts, timeouts, open breaker downstream) is retried.
    """

    def __init__(
        self,
        network: Any,
        node_name: str,
        policy: RetryPolicy,
        rng: DeterministicRandom,
        breaker: Optional[CircuitBreaker] = None,
        role: str = "client",
    ) -> None:
        self.network = network
        self.node_name = node_name
        self.policy = policy
        self.rng = rng
        self.breaker = breaker
        self.role = role
        #: attempts/retries/giveups/short_circuits plus modelled backoff.
        self.stats: Dict[str, float] = {
            "attempts": 0,
            "retries": 0,
            "giveups": 0,
            "short_circuits": 0,
            "backoff_seconds": 0.0,
        }

    def request(self, dst: str, message: Message, encrypted: bool = True) -> Message:
        """Send *message* to *dst* with retries/backoff/breaker applied."""
        env = self.network.env
        observer = env.observer
        if self.breaker is not None and not self.breaker.allow(env.now):
            self.stats["short_circuits"] += 1
            observer.count("resilience.short_circuits", role=self.role)
            raise CircuitOpen(
                f"{self.node_name!r}: circuit open, not calling {dst!r}"
            )
        last_error: Optional[NetworkError] = None
        for attempt in range(1, self.policy.max_attempts + 1):
            if attempt > 1:
                delay = self.policy.delay(attempt - 1, self.rng)
                self.stats["retries"] += 1
                self.stats["backoff_seconds"] += delay
                observer.count("resilience.retries", role=self.role)
                observer.observe("resilience.backoff", delay)
            self.stats["attempts"] += 1
            try:
                response = self.network.request(
                    self.node_name, dst, message, encrypted=encrypted,
                    timeout=self.policy.timeout,
                )
            except RequestRejected:
                # Delivered and answered: the breaker sees a healthy link.
                if self.breaker is not None:
                    self.breaker.record_success(env.now)
                raise
            except NetworkError as exc:
                last_error = exc
                if self.breaker is not None:
                    was_open = self.breaker.state == CircuitBreaker.OPEN
                    self.breaker.record_failure(env.now)
                    if not was_open and self.breaker.state == CircuitBreaker.OPEN:
                        observer.count("resilience.breaker_opened", role=self.role)
                continue
            if self.breaker is not None:
                self.breaker.record_success(env.now)
            return response
        self.stats["giveups"] += 1
        observer.count("resilience.giveups", role=self.role)
        assert last_error is not None  # max_attempts >= 1 guarantees a cause
        raise last_error
