"""Fault plans: the composable vocabulary of network misbehaviour.

A :class:`FaultPlan` is a pure description — no RNG, no clock — of what
should go wrong in a simulated world: directional :class:`LinkFault`
rules (loss / latency+jitter / duplicate delivery / broadcast
reordering), :class:`Partition` windows severing node groups from each
other, :class:`Brownout` windows during which the cloud answers nobody,
and :class:`CloudRestart` points where the cloud crashes and recovers
from its journal (the PR 3 crash machinery).  The
:class:`~repro.chaos.injector.FaultInjector` turns a plan into actual
delivery decisions with a seeded RNG.

Rules match on *node groups*, not node names: ``"device"``, ``"app"``,
``"attacker"`` and ``"cloud"`` (the prefix before ``:`` in a node name;
the cloud's node is special-cased), with ``"*"`` matching anything.
Every plan scales with one *intensity* knob — probabilities are
multiplied and clamped to [0, 1], latencies stretch linearly, and
partition/brownout windows grow from their start — so one preset yields
a whole fault-intensity curve (``benchmarks/bench_chaos.py``).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.errors import ConfigurationError

#: Wildcard group matching any node in a :class:`LinkFault` rule.
ANY_GROUP = "*"


def _clamp01(value: float) -> float:
    """Clamp a probability into [0, 1]."""
    return max(0.0, min(1.0, value))


@dataclass(frozen=True)
class LinkFault:
    """One directional fault rule between two node groups.

    Probabilities are per-request; ``latency`` is a base one-way delay
    in virtual seconds with up to ``jitter`` more drawn uniformly on
    top.  ``duplicate`` re-delivers a successful request once
    (at-least-once semantics); ``reorder`` shuffles broadcast delivery
    order.  The rule is active during ``[start, end)``.
    """

    src: str = ANY_GROUP
    dst: str = ANY_GROUP
    loss: float = 0.0
    latency: float = 0.0
    jitter: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    start: float = 0.0
    end: float = math.inf

    def active(self, now: float) -> bool:
        """Whether the rule applies at time *now*."""
        return self.start <= now < self.end

    def matches(self, src_group: str, dst_group: str) -> bool:
        """Whether the rule covers traffic from *src_group* to *dst_group*."""
        return (self.src in (ANY_GROUP, src_group)) and (
            self.dst in (ANY_GROUP, dst_group)
        )

    def scaled(self, intensity: float) -> "LinkFault":
        """This rule with every probabilistic knob scaled by *intensity*."""
        return dataclasses.replace(
            self,
            loss=_clamp01(self.loss * intensity),
            latency=self.latency * intensity,
            jitter=self.jitter * intensity,
            duplicate=_clamp01(self.duplicate * intensity),
            reorder=_clamp01(self.reorder * intensity),
        )


@dataclass(frozen=True)
class Partition:
    """A window during which a set of node groups is cut off from the rest.

    Traffic crossing the island boundary (either direction) fails with a
    :class:`~repro.core.errors.NetworkError`; traffic wholly inside or
    wholly outside the island is untouched.
    """

    groups: Tuple[str, ...]
    start: float = 0.0
    end: float = math.inf

    def active(self, now: float) -> bool:
        """Whether the partition is in force at time *now*."""
        return self.start <= now < self.end

    def severs(self, src_group: str, dst_group: str) -> bool:
        """Whether traffic between the two groups crosses the island edge."""
        return (src_group in self.groups) != (dst_group in self.groups)

    def scaled(self, intensity: float) -> "Partition":
        """The partition with its window stretched from ``start``."""
        if math.isinf(self.end):
            return self
        duration = (self.end - self.start) * intensity
        return dataclasses.replace(self, end=self.start + duration)


@dataclass(frozen=True)
class Brownout:
    """A window during which the cloud answers no requests at all."""

    start: float
    end: float

    def active(self, now: float) -> bool:
        """Whether the brownout is in force at time *now*."""
        return self.start <= now < self.end

    def scaled(self, intensity: float) -> "Brownout":
        """The brownout with its window stretched from ``start``."""
        duration = (self.end - self.start) * intensity
        return dataclasses.replace(self, end=self.start + duration)


@dataclass(frozen=True)
class CloudRestart:
    """A scheduled cloud crash + journal recovery at time ``at``.

    :func:`~repro.chaos.campaign.apply_chaos` seeds a journal with the
    cloud's current durable state when the plan carries restarts, so the
    successor recovers through the real
    :func:`~repro.cloud.state.journal.recover_from_journal` path.
    """

    at: float


@dataclass(frozen=True)
class FaultPlan:
    """A named, composable, intensity-scalable set of faults."""

    name: str
    description: str = ""
    link_faults: Tuple[LinkFault, ...] = ()
    partitions: Tuple[Partition, ...] = ()
    brownouts: Tuple[Brownout, ...] = ()
    restarts: Tuple[CloudRestart, ...] = ()

    def scaled(self, intensity: float) -> "FaultPlan":
        """The plan at *intensity* (1.0 = as authored, 0.0 = inert).

        Probabilities scale and clamp; latency stretches linearly;
        partition and brownout windows shrink/grow from their start.
        Restarts survive any positive intensity and vanish at zero.
        """
        if intensity < 0.0:
            raise ConfigurationError("fault intensity must be non-negative")
        if intensity == 1.0:
            return self
        return dataclasses.replace(
            self,
            link_faults=tuple(f.scaled(intensity) for f in self.link_faults),
            partitions=tuple(
                p.scaled(intensity) for p in self.partitions if intensity > 0.0
            ),
            brownouts=tuple(
                b.scaled(intensity) for b in self.brownouts if intensity > 0.0
            ),
            restarts=self.restarts if intensity > 0.0 else (),
        )

    def describe(self) -> str:
        """Multi-line human-readable summary of the plan's rules."""
        lines = [f"fault plan {self.name!r}: {self.description}"]
        for fault in self.link_faults:
            knobs = []
            if fault.loss:
                knobs.append(f"loss={fault.loss:.0%}")
            if fault.latency or fault.jitter:
                knobs.append(f"latency={fault.latency:.3f}s+~{fault.jitter:.3f}s")
            if fault.duplicate:
                knobs.append(f"dup={fault.duplicate:.0%}")
            if fault.reorder:
                knobs.append(f"reorder={fault.reorder:.0%}")
            window = "" if math.isinf(fault.end) else f" t=[{fault.start:g},{fault.end:g})"
            lines.append(
                f"  link {fault.src} -> {fault.dst}: {' '.join(knobs) or 'no-op'}"
                + window
            )
        for part in self.partitions:
            lines.append(
                f"  partition {{{', '.join(part.groups)}}} <-x-> rest "
                f"t=[{part.start:g},{part.end:g})"
            )
        for brownout in self.brownouts:
            lines.append(
                f"  cloud brownout t=[{brownout.start:g},{brownout.end:g})"
            )
        for restart in self.restarts:
            lines.append(f"  cloud crash + journal recovery at t={restart.at:g}")
        return "\n".join(lines)


def uniform_loss_plan(probability: float) -> FaultPlan:
    """The legacy knob as a plan: drop every request with *probability*.

    This is what :meth:`~repro.net.network.Network.set_loss` installs
    behind the scenes, so the old single-number interface and the new
    fault-plan machinery share one delivery path.
    """
    return FaultPlan(
        name="uniform-loss",
        description=f"drop every request with probability {probability:g}",
        link_faults=(LinkFault(loss=probability),),
    )


def _preset_lossy_lan() -> FaultPlan:
    """Flaky last-mile Wi-Fi between the home and the cloud."""
    return FaultPlan(
        name="lossy-lan",
        description="flaky home Wi-Fi: 15% loss device/app->cloud, mild latency",
        link_faults=(
            LinkFault(src="device", dst="cloud", loss=0.15, latency=0.02, jitter=0.05),
            LinkFault(src="app", dst="cloud", loss=0.15, latency=0.02, jitter=0.05),
        ),
    )


def _preset_flaky_wan() -> FaultPlan:
    """A congested uplink: some loss, real latency, duplicate delivery."""
    return FaultPlan(
        name="flaky-wan",
        description="congested uplink: 5% loss to the cloud, 0.2s latency, "
                    "3% duplicate delivery",
        link_faults=(
            LinkFault(dst="cloud", loss=0.05, latency=0.2, jitter=0.15,
                      duplicate=0.03),
        ),
    )


def _preset_jittery_backhaul() -> FaultPlan:
    """High-latency backhaul that trips per-request timeouts."""
    return FaultPlan(
        name="jittery-backhaul",
        description="0.4s base latency with 0.4s jitter to the cloud "
                    "(interacts with client timeouts) and reordered broadcasts",
        link_faults=(
            LinkFault(dst="cloud", latency=0.4, jitter=0.4),
            LinkFault(src="app", reorder=0.5),
        ),
    )


def _preset_partition_storm() -> FaultPlan:
    """Recurring windows where the whole home loses its uplink."""
    return FaultPlan(
        name="partition-storm",
        description="homes (devices+apps) cut off from the internet during "
                    "t=[20,50) and t=[80,110)",
        partitions=(
            Partition(groups=("device", "app"), start=20.0, end=50.0),
            Partition(groups=("device", "app"), start=80.0, end=110.0),
        ),
    )


def _preset_cloud_brownout() -> FaultPlan:
    """Cloud-side outage windows: nobody gets an answer."""
    return FaultPlan(
        name="cloud-brownout",
        description="cloud answers nobody during t=[30,75); keepalives "
                    "time the shadows out, then recover",
        brownouts=(Brownout(start=30.0, end=75.0),),
    )


def _preset_cloud_restart() -> FaultPlan:
    """A brownout ending in a crash and a journal-replay recovery."""
    return FaultPlan(
        name="cloud-restart",
        description="brownout t=[50,60) ending in a cloud crash at t=60 "
                    "recovered by journal replay",
        brownouts=(Brownout(start=50.0, end=60.0),),
        restarts=(CloudRestart(at=60.0),),
    )


#: The named preset catalog (``repro chaos list`` renders this).
_PRESETS = {
    plan().name: plan
    for plan in (
        _preset_lossy_lan,
        _preset_flaky_wan,
        _preset_jittery_backhaul,
        _preset_partition_storm,
        _preset_cloud_brownout,
        _preset_cloud_restart,
    )
}


def plan_names() -> Tuple[str, ...]:
    """Every preset plan name, sorted."""
    return tuple(sorted(_PRESETS))


def plan_catalog() -> Dict[str, str]:
    """Preset name -> one-line description (for the CLI catalog)."""
    return {name: _PRESETS[name]().description for name in plan_names()}


def plan_from_name(name: str, intensity: float = 1.0) -> FaultPlan:
    """Look up a preset plan and scale it to *intensity*.

    Raises :class:`~repro.core.errors.ConfigurationError` for unknown
    names, listing the catalog so CLI typos are self-explaining.
    """
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault plan {name!r}; available: {', '.join(plan_names())}"
        ) from None
    return factory().scaled(intensity)
