"""Local service discovery (SSDP-style), used during local binding.

"In some solutions, service discovery protocols like SSDP are used to
broadcast self-descriptions and exchange information between the device
and the app" (Section II-B).  The app multicasts an M-SEARCH on its LAN;
devices respond with a self-description that includes the information
the app needs for binding — which, for DevId designs, is the device ID
itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping

from repro.core.messages import Message
from repro.net.network import Network


@dataclass(frozen=True)
class SsdpSearch(Message):
    """M-SEARCH: who is out there?"""

    search_target: str = "upnp:rootdevice"


@dataclass(frozen=True)
class SsdpDescription(Message):
    """A device's self-description, returned to an M-SEARCH."""

    device_id: str = ""
    model: str = ""
    vendor: str = ""
    services: Mapping[str, str] = field(default_factory=dict)


def ssdp_discover(network: Network, app_node: str, search_target: str = "upnp:rootdevice") -> List[SsdpDescription]:
    """Broadcast an M-SEARCH from *app_node* and collect descriptions.

    Only devices on the same LAN answer — discovery is inherently local,
    which is why remote attackers must obtain device IDs by other means
    (inference or off-site physical interaction, Section III-A).
    """
    exchanges = network.broadcast(app_node, SsdpSearch(search_target=search_target))
    return [
        exchange.response
        for exchange in exchanges
        if isinstance(exchange.response, SsdpDescription)
    ]
