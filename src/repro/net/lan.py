"""Local networks: Wi-Fi LANs with WPA2 gating, a router/NAT and DHCP.

The paper's adversary model hinges on the local network being a strong
boundary: "IoT devices are usually connected in local networks that are
protected by firewalls or encryption like WPA2 ... we assume the
adversary cannot access user's local networks" (Section III-A).  This
module is where that boundary is enforced: joining a LAN requires the
WPA2 passphrase, and only joined nodes get a DHCP lease and local
reachability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.errors import NetworkError, ProtocolError
from repro.net.address import IpAddress


@dataclass(frozen=True)
class DhcpLease:
    """One address assignment on a LAN."""

    node: str
    ip: IpAddress


class Router:
    """The LAN's gateway: NAT to the internet and local switching."""

    def __init__(self, public_ip: IpAddress, subnet_prefix: str = "192.168.1") -> None:
        self.public_ip = public_ip
        self.subnet_prefix = subnet_prefix
        self._next_host = 2  # .1 is the router itself

    def lease(self, node: str) -> DhcpLease:
        """Hand out the next free local address (DHCP)."""
        if self._next_host > 254:
            raise NetworkError("DHCP pool exhausted")
        ip = IpAddress(f"{self.subnet_prefix}.{self._next_host}")
        self._next_host += 1
        return DhcpLease(node, ip)

    @property
    def gateway_ip(self) -> IpAddress:
        return IpAddress(f"{self.subnet_prefix}.1")


class Lan:
    """A WPA2-protected Wi-Fi network behind one router."""

    def __init__(
        self,
        lan_id: str,
        ssid: str,
        passphrase: str,
        public_ip: IpAddress,
        subnet_prefix: str = "192.168.1",
    ) -> None:
        if not passphrase:
            raise ProtocolError("WPA2 passphrase must be non-empty")
        self.lan_id = lan_id
        self.ssid = ssid
        self._passphrase = passphrase
        self.router = Router(public_ip, subnet_prefix)
        self._leases: Dict[str, DhcpLease] = {}

    # -- membership --------------------------------------------------------

    def join(self, node: str, passphrase: str) -> DhcpLease:
        """Associate *node* with the Wi-Fi; wrong passphrase is rejected.

        Re-joining is idempotent and keeps the existing lease.
        """
        if passphrase != self._passphrase:
            raise NetworkError(f"WPA2 handshake failed for {node!r} on {self.ssid!r}")
        if node not in self._leases:
            self._leases[node] = self.router.lease(node)
        return self._leases[node]

    def leave(self, node: str) -> None:
        """Disassociate *node* (e.g. device reset wipes Wi-Fi credentials)."""
        self._leases.pop(node, None)

    def contains(self, node: str) -> bool:
        return node in self._leases

    def lease_of(self, node: str) -> Optional[DhcpLease]:
        return self._leases.get(node)

    def members(self) -> Dict[str, DhcpLease]:
        return dict(self._leases)

    def check_passphrase(self, passphrase: str) -> bool:
        """Used by provisioning to validate credentials without joining."""
        return passphrase == self._passphrase
