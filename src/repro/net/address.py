"""Network addressing: IPv4 and MAC address value types.

MAC addresses matter to the paper beyond plumbing: five of the ten
studied vendors derive the *device ID* from the MAC, whose first three
bytes are the manufacturer OUI — leaving only a 3-byte search space for
an attacker (Section I, Section III-A).  :class:`MacAddress` therefore
exposes the OUI/suffix split and the exact enumeration space.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.errors import ProtocolError

_MAC_RE = re.compile(r"^([0-9a-f]{2}:){5}[0-9a-f]{2}$")
_IP_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")

#: Size of the device-specific portion of a MAC (3 bytes).
MAC_SUFFIX_SPACE = 256 ** 3


@dataclass(frozen=True, order=True)
class IpAddress:
    """A dotted-quad IPv4 address."""

    value: str

    def __post_init__(self) -> None:
        match = _IP_RE.match(self.value)
        if not match or any(int(octet) > 255 for octet in match.groups()):
            raise ProtocolError(f"invalid IPv4 address: {self.value!r}")

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class MacAddress:
    """A 48-bit MAC address, lowercase colon-separated."""

    value: str

    def __post_init__(self) -> None:
        if not _MAC_RE.match(self.value):
            raise ProtocolError(f"invalid MAC address: {self.value!r}")

    @property
    def oui(self) -> str:
        """The vendor-specific first three bytes (``aa:bb:cc``)."""
        return self.value[:8]

    @property
    def suffix(self) -> str:
        """The device-specific last three bytes (``dd:ee:ff``)."""
        return self.value[9:]

    @staticmethod
    def from_parts(oui: str, suffix: str) -> "MacAddress":
        """Build a MAC from an OUI and a device suffix."""
        return MacAddress(f"{oui}:{suffix}")

    @staticmethod
    def search_space_for_oui() -> int:
        """Candidate MACs an attacker must try once the OUI is known."""
        return MAC_SUFFIX_SPACE

    def __str__(self) -> str:
        return self.value
