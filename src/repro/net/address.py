"""Network addressing: IPv4 and MAC address value types.

MAC addresses matter to the paper beyond plumbing: five of the ten
studied vendors derive the *device ID* from the MAC, whose first three
bytes are the manufacturer OUI — leaving only a 3-byte search space for
an attacker (Section I, Section III-A).  :class:`MacAddress` therefore
exposes the OUI/suffix split and the exact enumeration space.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.core.errors import ProtocolError

_MAC_RE = re.compile(r"^([0-9a-f]{2}:){5}[0-9a-f]{2}$")
_IP_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")

#: Size of the device-specific portion of a MAC (3 bytes).
MAC_SUFFIX_SPACE = 256 ** 3


@dataclass(frozen=True, order=True)
class IpAddress:
    """A dotted-quad IPv4 address."""

    value: str

    def __post_init__(self) -> None:
        match = _IP_RE.match(self.value)
        if not match or any(int(octet) > 255 for octet in match.groups()):
            raise ProtocolError(f"invalid IPv4 address: {self.value!r}")

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class MacAddress:
    """A 48-bit MAC address, lowercase colon-separated."""

    value: str

    def __post_init__(self) -> None:
        if not _MAC_RE.match(self.value):
            raise ProtocolError(f"invalid MAC address: {self.value!r}")

    @property
    def oui(self) -> str:
        """The vendor-specific first three bytes (``aa:bb:cc``)."""
        return self.value[:8]

    @property
    def suffix(self) -> str:
        """The device-specific last three bytes (``dd:ee:ff``)."""
        return self.value[9:]

    @staticmethod
    def from_parts(oui: str, suffix: str) -> "MacAddress":
        """Build a MAC from an OUI and a device suffix."""
        return MacAddress(f"{oui}:{suffix}")

    @staticmethod
    def search_space_for_oui() -> int:
        """Candidate MACs an attacker must try once the OUI is known."""
        return MAC_SUFFIX_SPACE

    def __str__(self) -> str:
        return self.value


#: Address blocks a fleet allocator may draw router IPs from, in order:
#: the three RFC 5737 documentation /24s, then the RFC 6598 shared
#: address space (100.64.0.0/10) once those are exhausted — together
#: enough for ~4.2 million households without ever leaving ranges that
#: are guaranteed not to collide with real internet hosts.
FLEET_IP_BLOCKS = (
    ("192.0.2", 0, 0),       # TEST-NET-1: fixed /24
    ("198.51.100", 0, 0),    # TEST-NET-2: fixed /24
    ("203.0.113", 0, 0),     # TEST-NET-3: fixed /24
    ("100", 64, 127),        # shared address space: 100.{64..127}.{0..255}.x
)


class FleetIpAllocator:
    """Hands out unique, always-valid public IPs for fleet routers.

    Replaces the former ``203.0.{113 + index // 200}`` arithmetic, which
    overflowed the third octet past ~28k households.  Host octets run
    1–254 (never .0 or .255), and addresses listed in *reserved* — e.g.
    the attacker host or the cloud — are skipped.
    """

    def __init__(self, reserved: Optional[Iterable[str]] = None) -> None:
        self._reserved = frozenset(reserved or ())
        self._iter = self._addresses()

    def _addresses(self) -> Iterator[str]:
        """Yield every allocatable address across the blocks, in order."""
        for prefix, lo, hi in FLEET_IP_BLOCKS:
            if lo == hi == 0:  # a fixed /24 documentation block
                for host in range(1, 255):
                    yield f"{prefix}.{host}"
            else:  # 100.64.0.0/10: iterate second and third octets too
                for second in range(lo, hi + 1):
                    for third in range(256):
                        for host in range(1, 255):
                            yield f"{prefix}.{second}.{third}.{host}"

    def allocate(self) -> str:
        """Return the next unused address (validated via IpAddress)."""
        for address in self._iter:
            if address in self._reserved:
                continue
            return str(IpAddress(address))
        raise ProtocolError("fleet IP space exhausted (~4.2M households)")
