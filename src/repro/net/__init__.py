"""Network substrate: addressing, LANs, NAT/firewall, discovery, MITM."""

from repro.net.address import (
    FLEET_IP_BLOCKS,
    MAC_SUFFIX_SPACE,
    FleetIpAllocator,
    IpAddress,
    MacAddress,
)
from repro.net.capture import CaptureEntry, PacketCapture
from repro.net.discovery import SsdpDescription, SsdpSearch, ssdp_discover
from repro.net.lan import DhcpLease, Lan, Router
from repro.net.mitm import MitmProxy
from repro.net.network import Network
from repro.net.packet import Exchange, Packet
from repro.net.provisioning import ProvisioningAir, WifiCredentials

__all__ = [
    "CaptureEntry",
    "DhcpLease",
    "Exchange",
    "FLEET_IP_BLOCKS",
    "FleetIpAllocator",
    "IpAddress",
    "Lan",
    "MAC_SUFFIX_SPACE",
    "MacAddress",
    "MitmProxy",
    "Network",
    "Packet",
    "PacketCapture",
    "ProvisioningAir",
    "Router",
    "SsdpDescription",
    "SsdpSearch",
    "WifiCredentials",
    "ssdp_discover",
]
