"""Man-in-the-middle proxy for one's *own* app traffic.

The paper's methodology (Section VI-A): install a MITM proxy with a
trusted CA on the analyst's phone to capture and analyse the companion
app's HTTPS requests, then replay modified requests (Postman) or rewrite
them in flight (Frida).  :class:`MitmProxy` reproduces the capture +
rewrite roles; replay is a plain ``network.request`` from the attacker's
own node.  A proxy only ever sees traffic of the node it is installed
on — it does not break the TLS of third parties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.messages import Message
from repro.net.packet import Packet

RewriteRule = Callable[[Message], Optional[Message]]


@dataclass
class MitmProxy:
    """Capture and optionally rewrite a node's outgoing requests."""

    name: str = "mitm-proxy"
    log: List[Packet] = field(default_factory=list)
    _rules: List[RewriteRule] = field(default_factory=list)

    def add_rewrite(self, rule: RewriteRule) -> None:
        """Install a Frida-style rewrite: return a new message or ``None``
        to pass the original through unchanged."""
        self._rules.append(rule)

    def clear_rewrites(self) -> None:
        self._rules.clear()

    def process(self, packet: Packet) -> Packet:
        """Apply rewrites, then record the (possibly rewritten) packet."""
        message = packet.message
        for rule in self._rules:
            replacement = rule(message)
            if replacement is not None:
                message = replacement
        packet.message = message
        self.log.append(packet)
        return packet

    # -- analysis helpers --------------------------------------------------

    def messages(self) -> List[Message]:
        return [packet.message for packet in self.log]

    def find(self, message_type: type) -> List[Message]:
        """All captured messages of a given type (e.g. ``BindMessage``)."""
        return [m for m in self.messages() if isinstance(m, message_type)]

    def last(self, message_type: type) -> Optional[Message]:
        hits = self.find(message_type)
        return hits[-1] if hits else None
