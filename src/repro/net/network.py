"""The simulated internet: nodes, LAN boundaries, NAT, taps and proxies.

Topology model (matching the paper's Figure 1 world):

* *Internet nodes* (the cloud, a phone on cellular data) have a public
  IP and are reachable from everywhere.
* *LAN nodes* (devices, phones on Wi-Fi) sit behind a router.  They can
  reach the internet via NAT — the receiver observes the router's public
  IP — and each other locally, but nothing outside can reach them.
  Cross-LAN traffic is blocked: this is the WPA2/firewall boundary of
  the adversary model.

Requests are synchronous (HTTP-style): ``request`` delivers the packet
to the destination's handler and returns its response.  Cloud->device
pushes ride on the device's persistent connection at the application
layer (the device polls), never on network-layer reachability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol

from repro.core.errors import (
    FirewallBlocked,
    NetworkError,
    ProtocolError,
    RequestRejected,
)
from repro.core.messages import Message
from repro.net.address import IpAddress
from repro.net.lan import Lan
from repro.net.packet import Exchange, Packet
from repro.obs.trace import TraceContext
from repro.sim.environment import Environment

Handler = Callable[[Packet], Message]
Tap = Callable[[Exchange], None]


class FaultFilter(Protocol):
    """The fault-injection seam: consulted around every delivery.

    Implementations (``repro.chaos.injector.FaultInjector`` is the real
    one) may raise :class:`~repro.core.errors.NetworkError` (or a
    subclass such as :class:`~repro.core.errors.RequestTimeout`) from
    :meth:`on_request` to veto a delivery, report at-least-once
    duplication via :meth:`should_duplicate`, and reorder broadcast
    fan-out via :meth:`deliver_order`.
    """

    def on_request(
        self, src: str, dst: str, now: float, timeout: Optional[float] = None
    ) -> None:  # pragma: no cover - protocol
        """Veto or delay one request; raise NetworkError to drop it."""
        ...

    def should_duplicate(
        self, src: str, dst: str, now: float
    ) -> bool:  # pragma: no cover - protocol
        """Whether a successfully delivered request is delivered again."""
        ...

    def deliver_order(
        self, src: str, members: List[str], now: float
    ) -> List[str]:  # pragma: no cover - protocol
        """The order in which a broadcast reaches *members*."""
        ...


class PacketProxy(Protocol):
    """A man-in-the-middle hook on one node's *own* outgoing traffic."""

    name: str

    def process(self, packet: Packet) -> Packet:  # pragma: no cover - protocol
        """Observe and optionally rewrite the outgoing packet."""
        ...


@dataclass
class _Node:
    name: str
    handler: Optional[Handler]
    wan_ip: Optional[IpAddress] = None
    lan_id: Optional[str] = None


class Network:
    """Registry of nodes and LANs plus the delivery rules between them."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._nodes: Dict[str, _Node] = {}
        self._lans: Dict[str, Lan] = {}
        self._taps: List[Tap] = []
        self._proxies: Dict[str, PacketProxy] = {}
        #: named fault filters, consulted in installation order around
        #: every delivery (the chaos seam; see ``docs/chaos.md``)
        self._fault_filters: Dict[str, FaultFilter] = {}
        # Trace minting state.  Plain monotonic counters — NEVER the
        # seeded simulation RNG — so tracing cannot perturb the world it
        # observes.  The stack tracks the context whose handler is
        # currently running: a request issued from inside a handler (a
        # device calling the cloud while servicing an app's configure,
        # Figure 4b) becomes a *child* span in the inbound chain.
        self._trace_seq = 0
        self._span_seq = 0
        self._trace_stack: List[TraceContext] = []

    # -- topology ----------------------------------------------------------

    def add_internet_node(self, name: str, handler: Optional[Handler], public_ip: str) -> None:
        """Attach a node directly to the internet (e.g. the cloud)."""
        self._ensure_new(name)
        self._nodes[name] = _Node(name, handler, wan_ip=IpAddress(public_ip))

    def add_node(self, name: str, handler: Optional[Handler] = None,
                 wan_ip: Optional[str] = None) -> None:
        """Register a node; *wan_ip* gives it cellular-style uplink.

        A node with neither a WAN IP nor a LAN lease has no
        connectivity (a factory-fresh device).  A phone typically has a
        WAN IP (cellular) and joins LANs as it moves; when on a LAN its
        internet traffic egresses via the router (Wi-Fi preferred).
        """
        self._ensure_new(name)
        self._nodes[name] = _Node(
            name, handler, wan_ip=IpAddress(wan_ip) if wan_ip else None
        )

    def create_lan(
        self,
        lan_id: str,
        ssid: str,
        passphrase: str,
        public_ip: str,
        subnet_prefix: str = "192.168.1",
    ) -> Lan:
        """Create a WPA2 LAN whose router NATs to *public_ip*."""
        if lan_id in self._lans:
            raise ProtocolError(f"LAN {lan_id!r} already exists")
        lan = Lan(lan_id, ssid, passphrase, IpAddress(public_ip), subnet_prefix)
        self._lans[lan_id] = lan
        return lan

    def join_lan(self, node: str, lan_id: str, passphrase: str) -> None:
        """Associate *node* with a LAN (WPA2-checked, DHCP-leased)."""
        entry = self._require(node)
        lan = self._require_lan(lan_id)
        lan.join(node, passphrase)
        entry.lan_id = lan_id

    def leave_lan(self, node: str) -> None:
        """Disassociate *node* from its LAN, if any."""
        entry = self._require(node)
        if entry.lan_id is not None:
            self._lans[entry.lan_id].leave(node)
            entry.lan_id = None

    def set_handler(self, node: str, handler: Optional[Handler]) -> None:
        self._require(node).handler = handler

    def has_node(self, name: str) -> bool:
        """Whether *name* is a registered node."""
        return name in self._nodes

    def remove_node(self, name: str) -> None:
        """Detach a node from the network (e.g. a cloud being restarted).

        The node leaves its LAN first so the LAN's member set stays
        consistent; a name that was never registered is a no-op.
        """
        entry = self._nodes.pop(name, None)
        if entry is None:
            return
        if entry.lan_id is not None:
            self._lans[entry.lan_id].leave(name)
        self._proxies.pop(name, None)

    def lan(self, lan_id: str) -> Lan:
        return self._require_lan(lan_id)

    def find_lan_by_ssid(self, ssid: str) -> Optional[str]:
        """The LAN id broadcasting *ssid*, if any (Wi-Fi scan)."""
        for lan_id, lan in self._lans.items():
            if lan.ssid == ssid:
                return lan_id
        return None

    def lan_of(self, node: str) -> Optional[str]:
        return self._require(node).lan_id

    # -- observation hooks ---------------------------------------------------

    def add_tap(self, tap: Tap) -> None:
        """Register a passive observer of every exchange."""
        self._taps.append(tap)

    def set_proxy(self, node: str, proxy: Optional[PacketProxy]) -> None:
        """Route *node*'s own outgoing requests through a MITM proxy.

        This models the paper's methodology: the analyst configures a
        proxy (with a trusted CA) on *their own* phone to observe and
        rewrite the companion app's traffic.  A proxy never grants
        access to other nodes' traffic.
        """
        self._require(node)
        if proxy is None:
            self._proxies.pop(node, None)
        else:
            self._proxies[node] = proxy

    # -- failure injection --------------------------------------------------

    def add_fault_filter(self, name: str, filt: FaultFilter) -> None:
        """Install (or replace) a named :class:`FaultFilter`.

        Filters run in installation order on every request; replacing a
        name keeps its position so determinism is preserved across
        reconfiguration.
        """
        self._fault_filters[name] = filt

    def remove_fault_filter(self, name: str) -> None:
        """Uninstall a fault filter; unknown names are a no-op."""
        self._fault_filters.pop(name, None)

    def fault_filter(self, name: str) -> Optional[FaultFilter]:
        """The installed filter registered under *name*, if any."""
        return self._fault_filters.get(name)

    def set_loss(self, probability: float) -> None:
        """Drop each request with *probability* (0 disables).

        Models flaky last-mile connectivity; callers see a plain
        :class:`NetworkError`, exactly like a timeout.  Implemented as a
        uniform-loss fault plan installed under the filter name
        ``"loss"``, so the legacy knob and ``repro.chaos`` share one
        delivery path (and one seeded RNG discipline).
        """
        if not 0.0 <= probability <= 1.0:
            raise ProtocolError("loss probability must be within [0, 1]")
        if probability == 0.0:
            self.remove_fault_filter("loss")
            return
        from repro.chaos.faults import uniform_loss_plan
        from repro.chaos.injector import FaultInjector

        plan = uniform_loss_plan(probability)
        self.add_fault_filter("loss", FaultInjector(self.env, plan))

    # -- delivery ------------------------------------------------------------

    def request(
        self,
        src: str,
        dst: str,
        message: Message,
        encrypted: bool = True,
        timeout: Optional[float] = None,
    ) -> Message:
        """Send *message* from *src* to *dst*; return the handler's response.

        Raises :class:`FirewallBlocked` / :class:`NetworkError` for
        unreachable destinations and re-raises any
        :class:`RequestRejected` the destination handler raised.
        *timeout* (virtual seconds) is offered to the fault filters: a
        filter whose modelled latency exceeds it raises
        :class:`~repro.core.errors.RequestTimeout`.
        """
        now = self.env.now
        # Hot path: skip building dict views / Exchange records entirely
        # when no fault filters or taps are installed (the common case in
        # large sharded campaigns).
        filters = self._fault_filters
        tapped = bool(self._taps)
        if filters:
            for filt in filters.values():
                filt.on_request(src, dst, now, timeout=timeout)
        trace = self._next_trace(src)
        packet = self._build_packet(src, dst, message, encrypted)
        packet.trace = trace
        proxy = self._proxies.get(src)
        if proxy is not None:
            packet = proxy.process(packet)
            packet.via_proxy = proxy.name
        destination = self._require(packet.dst)
        if destination.handler is None:
            raise NetworkError(f"node {packet.dst!r} does not accept requests")
        self._trace_stack.append(trace)
        try:
            response = destination.handler(packet)
        except RequestRejected as exc:
            if tapped:
                self._record(Exchange(packet, _rejection(exc), error_code=exc.code))
            raise
        finally:
            self._trace_stack.pop()
        if tapped:
            self._record(Exchange(packet, response))
        for filt in filters.values() if filters else ():
            if filt.should_duplicate(src, dst, now):
                # At-least-once delivery: the same request arrives again;
                # the duplicate's response is recorded but discarded (the
                # caller already has the first answer).  The duplicate
                # carries the SAME trace context — a retry of one cause,
                # not a new cause.
                dup_packet = self._build_packet(src, dst, message, encrypted)
                dup_packet.trace = trace
                if proxy is not None:
                    dup_packet = proxy.process(dup_packet)
                    dup_packet.via_proxy = proxy.name
                self._trace_stack.append(trace)
                try:
                    dup_response = destination.handler(dup_packet)
                except RequestRejected as exc:
                    self._record(
                        Exchange(dup_packet, _rejection(exc), error_code=exc.code)
                    )
                else:
                    self._record(Exchange(dup_packet, dup_response))
                finally:
                    self._trace_stack.pop()
                break
        return response

    def broadcast(self, src: str, message: Message, encrypted: bool = False) -> List[Exchange]:
        """Deliver *message* to every other handler on *src*'s LAN (SSDP-style)."""
        entry = self._require(src)
        if entry.lan_id is None:
            raise NetworkError(f"{src!r} is not on a LAN; cannot broadcast")
        lan = self._lans[entry.lan_id]
        exchanges: List[Exchange] = []
        members = sorted(lan.members())
        for filt in self._fault_filters.values():
            members = filt.deliver_order(src, members, self.env.now)
        # One trace for the whole broadcast; each member delivery is a
        # child hop so discovery fan-out renders as one causal tree.
        broadcast_trace = self._next_trace(src)
        for member in members:
            target = self._nodes.get(member)
            if member == src or target is None or target.handler is None:
                continue
            packet = self._build_packet(src, member, message, encrypted)
            packet.trace = broadcast_trace.child(self._next_span_id())
            self._trace_stack.append(packet.trace)
            try:
                response = target.handler(packet)
                exchange = Exchange(packet, response)
            except RequestRejected as exc:
                exchange = Exchange(packet, _rejection(exc), error_code=exc.code)
            finally:
                self._trace_stack.pop()
            self._record(exchange)
            exchanges.append(exchange)
        return exchanges

    # -- trace-minting state (warm-start restore) -----------------------------

    def trace_state(self) -> Dict[str, int]:
        """The monotonic trace/span counters, for world capture.

        Trace ids land in audit entries and forensic events, so a
        restored world must mint its next id exactly where the captured
        world left off or every post-restore trace id diverges.
        """
        return {"trace_seq": self._trace_seq, "span_seq": self._span_seq}

    def restore_trace_state(self, state: Dict[str, int]) -> None:
        """Resume trace minting from a captured :meth:`trace_state`."""
        self._trace_seq = int(state.get("trace_seq", 0))
        self._span_seq = int(state.get("span_seq", 0))

    # -- internals -------------------------------------------------------------

    def _next_span_id(self) -> str:
        """Mint the next span id from the plain per-network counter."""
        self._span_seq += 1
        return f"s{self._span_seq:06d}"

    def _next_trace(self, src: str) -> TraceContext:
        """The trace context for a request originating at *src* now.

        A fresh root chain when no handler is running; a child of the
        in-flight request's context otherwise (nested call).
        """
        if self._trace_stack:
            return self._trace_stack[-1].child(self._next_span_id())
        self._trace_seq += 1
        return TraceContext(
            trace_id=f"T{self._trace_seq:06d}",
            span_id=self._next_span_id(),
            parent_id=None,
            origin=src,
        )

    def _build_packet(self, src: str, dst: str, message: Message, encrypted: bool) -> Packet:
        source = self._require(src)
        destination = self._require(dst)
        observed_ip = self._observed_ip(source, destination)
        return Packet(src, dst, observed_ip, message, encrypted, self.env.now)

    def _observed_ip(self, source: _Node, destination: _Node) -> IpAddress:
        src_lan = self._lans.get(source.lan_id) if source.lan_id else None
        dst_on_same_lan = (
            destination.lan_id is not None and destination.lan_id == source.lan_id
        )
        if dst_on_same_lan:
            lease = src_lan.lease_of(source.name) if src_lan else None
            if lease is None:  # pragma: no cover - defensive
                raise NetworkError(f"{source.name!r} lost its DHCP lease")
            return lease.ip
        if destination.lan_id is not None:
            # Destination is behind someone else's NAT: unreachable.
            raise FirewallBlocked(
                f"{source.name!r} cannot reach {destination.name!r} behind "
                f"LAN {destination.lan_id!r} (WPA2/NAT boundary)"
            )
        if destination.wan_ip is None:
            # Neither on a LAN nor on the internet: a factory-fresh node.
            raise FirewallBlocked(
                f"{destination.name!r} has no network presence to reach"
            )
        # Destination on the internet.
        if src_lan is not None:
            return src_lan.router.public_ip
        if source.wan_ip is not None:
            return source.wan_ip
        raise NetworkError(f"{source.name!r} has no connectivity")

    def _record(self, exchange: Exchange) -> None:
        for tap in self._taps:
            tap(exchange)

    def _ensure_new(self, name: str) -> None:
        if name in self._nodes:
            raise ProtocolError(f"node {name!r} already registered")

    def _require(self, name: str) -> _Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def _require_lan(self, lan_id: str) -> Lan:
        try:
            return self._lans[lan_id]
        except KeyError:
            raise NetworkError(f"unknown LAN {lan_id!r}") from None


def _rejection(exc: RequestRejected) -> Message:
    from repro.core.messages import Response

    return Response(ok=False, payload={"error": exc.code, "detail": exc.detail})
