"""Wi-Fi provisioning: SmartConfig / Airkiss over the local radio.

Before a wireless device can join the home LAN it must learn the SSID
and WPA2 passphrase.  SmartConfig (TI) and Airkiss (WeChat) encode the
credentials into packet-length patterns that a device in listening mode
can sniff off the air.  The simulation models the *radio locality* of
that channel: a broadcast is heard only by devices listening at the same
physical location, so a remote attacker can neither provision a
victim's device nor sniff the victim's credentials (credential-sniffing
attacks against SmartCfg are explicitly out of scope, Section VIII).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.errors import ProtocolError


@dataclass(frozen=True)
class WifiCredentials:
    """What a provisioning broadcast carries."""

    ssid: str
    passphrase: str


Listener = Callable[[WifiCredentials], None]


class ProvisioningAir:
    """The shared local radio medium for SmartConfig/Airkiss broadcasts."""

    def __init__(self) -> None:
        self._listeners: Dict[str, List[Listener]] = {}

    def listen(self, location: str, listener: Listener) -> Callable[[], None]:
        """Start listening at *location*; returns an unsubscribe callable."""
        if not location:
            raise ProtocolError("a listener needs a physical location")
        self._listeners.setdefault(location, []).append(listener)

        def stop() -> None:
            listeners = self._listeners.get(location, [])
            if listener in listeners:
                listeners.remove(listener)

        return stop

    def broadcast(self, location: str, credentials: WifiCredentials) -> int:
        """SmartConfig broadcast at *location*; returns listeners reached."""
        listeners = list(self._listeners.get(location, []))
        for listener in listeners:
            listener(credentials)
        return len(listeners)

    def listener_count(self, location: str) -> int:
        return len(self._listeners.get(location, []))
