"""Packets: the unit of traffic on the simulated network."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.messages import Message, describe
from repro.net.address import IpAddress
from repro.obs.trace import TraceContext


class Packet:
    """One request travelling from *src* to *dst*.

    ``observed_src_ip`` is the source IP as seen by the receiver — after
    NAT, this is the LAN's router public IP.  Device #7's binding check
    compares exactly this field between the app's and the device's
    requests (Section VI-B).

    ``trace`` is the causal trace context minted by the network at the
    *originating* node of the request chain; nested requests carry child
    contexts sharing the same ``trace_id`` (see ``repro.obs.trace``).

    A ``__slots__`` record rather than a dataclass: one is allocated per
    simulated request, so construction cost is on the kernel hot path.
    """

    __slots__ = (
        "src",
        "dst",
        "observed_src_ip",
        "message",
        "encrypted",
        "time",
        "via_proxy",
        "trace",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        observed_src_ip: IpAddress,
        message: Message,
        encrypted: bool = True,
        time: float = 0.0,
        via_proxy: Optional[str] = None,
        trace: Optional[TraceContext] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.observed_src_ip = observed_src_ip
        self.message = message
        self.encrypted = encrypted
        self.time = time
        self.via_proxy = via_proxy
        self.trace = trace

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Packet):
            return NotImplemented
        return (
            self.src == other.src
            and self.dst == other.dst
            and self.observed_src_ip == other.observed_src_ip
            and self.message == other.message
            and self.encrypted == other.encrypted
            and self.time == other.time
            and self.via_proxy == other.via_proxy
            and self.trace == other.trace
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Packet(src={self.src!r}, dst={self.dst!r}, "
            f"observed_src_ip={self.observed_src_ip!r}, message={self.message!r}, "
            f"encrypted={self.encrypted!r}, time={self.time!r}, "
            f"via_proxy={self.via_proxy!r}, trace={self.trace!r})"
        )

    def summary(self) -> str:
        """Compact one-line rendering for captures and traces."""
        lock = "TLS" if self.encrypted else "plain"
        return (
            f"[t={self.time:.3f}] {self.src} -> {self.dst} "
            f"({self.observed_src_ip}, {lock}) {describe(self.message)}"
        )


@dataclass
class Exchange:
    """A request packet together with the response it produced."""

    request: Packet
    response: Message
    error_code: Optional[str] = None
    extra: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error_code is None
