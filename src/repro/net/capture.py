"""Passive packet capture on the simulated network.

A capture is a network tap: it records every exchange, but the *content*
of TLS-protected packets is only readable by their endpoints — a capture
renders them redacted, exactly like sniffing HTTPS.  The paper notes
that for some vendors "device IDs can be observed from the traffic"
(Section VI-A): those vendors send unencrypted traffic, which a capture
does expose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.core.messages import describe
from repro.net.packet import Exchange


class CaptureEntry:
    """One observed exchange, with visibility rules applied.

    ``visible_summary`` is rendered *lazily*: a capture records every
    exchange on the wire, but most captures are never rendered, so the
    per-packet ``describe()`` string formatting is deferred until the
    summary is first read (then memoized).  Entries constructed with an
    explicit ``visible_summary`` keep it verbatim.
    """

    __slots__ = (
        "time",
        "src",
        "dst",
        "observed_src_ip",
        "encrypted",
        "error_code",
        "_message",
        "_summary",
    )

    def __init__(
        self,
        time: float,
        src: str,
        dst: str,
        observed_src_ip: str,
        encrypted: bool,
        visible_summary: Optional[str] = None,
        error_code: Optional[str] = None,
        message: Any = None,
    ) -> None:
        self.time = time
        self.src = src
        self.dst = dst
        self.observed_src_ip = observed_src_ip
        self.encrypted = encrypted
        self.error_code = error_code
        self._message = message
        self._summary = visible_summary

    @property
    def visible_summary(self) -> str:
        """The wire-visible content (redacted under TLS), rendered lazily."""
        summary = self._summary
        if summary is None:
            summary = (
                "<encrypted>" if self.encrypted else describe(self._message)
            )
            self._summary = summary
        return summary

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CaptureEntry(time={self.time!r}, src={self.src!r}, "
            f"dst={self.dst!r}, observed_src_ip={self.observed_src_ip!r}, "
            f"encrypted={self.encrypted!r}, "
            f"visible_summary={self.visible_summary!r}, "
            f"error_code={self.error_code!r})"
        )


@dataclass
class PacketCapture:
    """Records exchanges; attach via ``network.add_tap(capture.tap)``."""

    name: str = "capture"
    entries: List[CaptureEntry] = field(default_factory=list)
    predicate: Optional[Callable[[Exchange], bool]] = None

    def tap(self, exchange: Exchange) -> None:
        """Network-tap entry point: record one exchange (summary deferred)."""
        if self.predicate is not None and not self.predicate(exchange):
            return
        packet = exchange.request
        self.entries.append(
            CaptureEntry(
                packet.time,
                packet.src,
                packet.dst,
                str(packet.observed_src_ip),
                packet.encrypted,
                None,
                exchange.error_code,
                packet.message,
            )
        )

    def __len__(self) -> int:
        return len(self.entries)

    def clear(self) -> None:
        self.entries.clear()

    def plaintext_entries(self) -> List[CaptureEntry]:
        """Entries whose content was visible on the wire."""
        return [entry for entry in self.entries if not entry.encrypted]

    def between(self, src: str, dst: str) -> List[CaptureEntry]:
        return [e for e in self.entries if e.src == src and e.dst == dst]

    def render(self) -> str:
        """Human-readable dump of the capture."""
        lines = [f"capture {self.name!r}: {len(self.entries)} packets"]
        for entry in self.entries:
            flag = "E" if entry.encrypted else "-"
            err = f" !{entry.error_code}" if entry.error_code else ""
            lines.append(
                f"  [t={entry.time:8.3f}] {flag} {entry.src} -> {entry.dst} "
                f"({entry.observed_src_ip}) {entry.visible_summary}{err}"
            )
        return "\n".join(lines)
