"""Passive packet capture on the simulated network.

A capture is a network tap: it records every exchange, but the *content*
of TLS-protected packets is only readable by their endpoints — a capture
renders them redacted, exactly like sniffing HTTPS.  The paper notes
that for some vendors "device IDs can be observed from the traffic"
(Section VI-A): those vendors send unencrypted traffic, which a capture
does expose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.messages import describe
from repro.net.packet import Exchange


@dataclass
class CaptureEntry:
    """One observed exchange, with visibility rules applied."""

    time: float
    src: str
    dst: str
    observed_src_ip: str
    encrypted: bool
    visible_summary: str
    error_code: Optional[str]


@dataclass
class PacketCapture:
    """Records exchanges; attach via ``network.add_tap(capture.tap)``."""

    name: str = "capture"
    entries: List[CaptureEntry] = field(default_factory=list)
    predicate: Optional[Callable[[Exchange], bool]] = None

    def tap(self, exchange: Exchange) -> None:
        """Network-tap entry point: record one exchange."""
        if self.predicate is not None and not self.predicate(exchange):
            return
        packet = exchange.request
        summary = "<encrypted>" if packet.encrypted else describe(packet.message)
        self.entries.append(
            CaptureEntry(
                time=packet.time,
                src=packet.src,
                dst=packet.dst,
                observed_src_ip=str(packet.observed_src_ip),
                encrypted=packet.encrypted,
                visible_summary=summary,
                error_code=exchange.error_code,
            )
        )

    def __len__(self) -> int:
        return len(self.entries)

    def clear(self) -> None:
        self.entries.clear()

    def plaintext_entries(self) -> List[CaptureEntry]:
        """Entries whose content was visible on the wire."""
        return [entry for entry in self.entries if not entry.encrypted]

    def between(self, src: str, dst: str) -> List[CaptureEntry]:
        return [e for e in self.entries if e.src == src and e.dst == dst]

    def render(self) -> str:
        """Human-readable dump of the capture."""
        lines = [f"capture {self.name!r}: {len(self.entries)} packets"]
        for entry in self.entries:
            flag = "E" if entry.encrypted else "-"
            err = f" !{entry.error_code}" if entry.error_code else ""
            lines.append(
                f"  [t={entry.time:8.3f}] {flag} {entry.src} -> {entry.dst} "
                f"({entry.observed_src_ip}) {entry.visible_summary}{err}"
            )
        return "\n".join(lines)
