"""Wire messages exchanged between the device, the app, and the cloud.

The paper reduces remote binding to three primitive messages —
``Status``, ``Bind`` and ``Unbind`` (Table I) — plus non-binding traffic
(login, control, data) that does not change shadow states.  This module
defines *all* of them as immutable dataclasses.  Attack code forges
instances of these very classes and injects them through the simulated
network, exactly as the paper forged HTTP requests with Postman/Frida.

Design notes:

* Messages are plain values.  Authentication and authorization decisions
  belong to the cloud's policy layer, never to the message itself.
* Every message that a vendor design can legitimately produce can also
  be produced by an attacker with the right knowledge; there is no
  back-channel "is_forged" flag.  Whether an attack works must fall out
  of the cloud-side checks alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Any, Mapping, Optional

from repro.core.notation import MessageKind


@unique
class Origin(Enum):
    """Which party a message claims to originate from.

    The claim is part of the wire format (e.g. a device endpoint vs. an
    app endpoint); it is *not* authenticated by itself.
    """

    DEVICE = "device"
    APP = "app"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Message:
    """Base class for every wire message."""

    @property
    def kind(self) -> Optional[MessageKind]:
        """The binding primitive this message corresponds to, if any."""
        return None


# ---------------------------------------------------------------------------
# Account traffic (not a binding primitive)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LoginRequest(Message):
    """User password login: ``(UserId, UserPw)`` -> ``UserToken``."""

    user_id: str
    user_pw: str


@dataclass(frozen=True)
class LoginResponse(Message):
    """Successful login; carries the session ``UserToken``."""

    user_id: str
    user_token: str


@dataclass(frozen=True)
class DevTokenRequest(Message):
    """Type-1 auth (Figure 3a): the app asks the cloud for a ``DevToken``.

    The token is then delivered to the device over the *local* network
    during configuration, and the device uses it in its status messages.
    """

    user_token: str
    device_id: str


@dataclass(frozen=True)
class BindTokenRequest(Message):
    """Capability design (Figure 4c): the app asks for a ``BindToken``.

    The token is handed to the device locally; the device submits it back
    to the cloud to confirm the binding, proving local co-presence.
    """

    user_token: str


@dataclass(frozen=True)
class TokenResponse(Message):
    """Carries a freshly issued token (``DevToken`` or ``BindToken``)."""

    token: str


# ---------------------------------------------------------------------------
# The three binding primitives (Table I)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StatusMessage(Message):
    """``Status``: registration or heartbeat, sent by the device.

    Authentication material depends on the vendor design: ``dev_token``
    designs put the token in the (encrypted) message; ``dev_id`` designs
    send the static identifier; public-key designs sign the body.
    """

    device_id: Optional[str] = None
    dev_token: Optional[str] = None
    signature: Optional[str] = None
    model: str = ""
    firmware_version: str = ""
    telemetry: Mapping[str, Any] = field(default_factory=dict)
    is_registration: bool = False

    @property
    def kind(self) -> MessageKind:
        return MessageKind.STATUS


@dataclass(frozen=True)
class BindMessage(Message):
    """``Bind``: creates a user<->device binding in the cloud.

    Exactly one of the paper's three shapes is populated:

    * ACL, app-initiated (Figure 4a): ``device_id`` + ``user_token``
    * ACL, device-initiated (Figure 4b): ``device_id`` + ``user_id`` +
      ``user_pw`` (the user credential was delivered to the device during
      local configuration — the practice Section VII warns against)
    * capability-based (Figure 4c): ``bind_token``
    """

    device_id: Optional[str] = None
    user_token: Optional[str] = None
    user_id: Optional[str] = None
    user_pw: Optional[str] = None
    bind_token: Optional[str] = None
    origin: Origin = Origin.APP

    @property
    def kind(self) -> MessageKind:
        return MessageKind.BIND


@dataclass(frozen=True)
class UnbindMessage(Message):
    """``Unbind``: revokes a binding.

    Type 1 carries ``(DevId, UserToken)``; Type 2 carries only ``DevId``
    (sent by the device during reset).  Type 3 — replacing the binding via
    a new ``Bind`` — is a policy behaviour, not a distinct message.
    """

    device_id: str = ""
    user_token: Optional[str] = None
    origin: Origin = Origin.APP

    @property
    def kind(self) -> MessageKind:
        return MessageKind.UNBIND


# ---------------------------------------------------------------------------
# Post-binding traffic (does not change shadow states)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ControlMessage(Message):
    """User -> cloud -> device command (e.g. turn a plug on)."""

    user_token: str
    device_id: str
    command: str
    arguments: Mapping[str, Any] = field(default_factory=dict)
    post_binding_token: Optional[str] = None


@dataclass(frozen=True)
class ScheduleUpdate(Message):
    """User -> cloud: store a schedule (the paper's smart-lock example)."""

    user_token: str
    device_id: str
    schedule: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class DeviceFetch(Message):
    """Device -> cloud: poll for pending commands / schedules.

    This is the channel the paper's A1 *stealing* attack exploits on
    device #10: a forged device fetch returns the user's private schedule.
    Authentication material mirrors :class:`StatusMessage`.
    """

    device_id: Optional[str] = None
    dev_token: Optional[str] = None
    signature: Optional[str] = None
    post_binding_token: Optional[str] = None


@dataclass(frozen=True)
class QueryRequest(Message):
    """User -> cloud: read device state / telemetry / schedule."""

    user_token: str
    device_id: str
    what: str = "telemetry"


@dataclass(frozen=True)
class EventPollRequest(Message):
    """User -> cloud: fetch new notifications from my event feed."""

    user_token: str


@dataclass(frozen=True)
class BindingInfoRequest(Message):
    """User -> cloud: read my own binding's metadata.

    In device-initiated designs the post-binding token is returned to
    the *device*; the bound user's app fetches its copy here ("a random
    token will be returned to both the user and the device",
    Section IV-B).
    """

    user_token: str
    device_id: str


@dataclass(frozen=True)
class ShareRequest(Message):
    """Owner -> cloud: grant another account access to a device
    (many-to-one binding, Section III-B)."""

    user_token: str
    device_id: str
    grantee: str


@dataclass(frozen=True)
class ShareRevoke(Message):
    """Owner -> cloud: withdraw a previously granted share."""

    user_token: str
    device_id: str
    grantee: str


@dataclass(frozen=True)
class Response(Message):
    """Generic success response with an optional payload."""

    ok: bool = True
    payload: Mapping[str, Any] = field(default_factory=dict)


def describe(message: Message) -> str:
    """One-line, paper-style rendering of a message, e.g. ``Bind:(DevId,UserToken)``.

    Used by traces (Figure 1/3/4 benches) and the audit log.
    """
    if isinstance(message, StatusMessage):
        if message.dev_token is not None:
            return "Status:DevToken"
        if message.signature is not None:
            return "Status:Signed"
        return "Status:DevId"
    if isinstance(message, BindMessage):
        if message.bind_token is not None:
            return "Bind:BindToken"
        if message.user_pw is not None:
            return "Bind:(DevId,UserId,UserPw)"
        return "Bind:(DevId,UserToken)"
    if isinstance(message, UnbindMessage):
        if message.user_token is None:
            return "Unbind:DevId"
        return "Unbind:(DevId,UserToken)"
    if isinstance(message, LoginRequest):
        return "Login:(UserId,UserPw)"
    if isinstance(message, ControlMessage):
        return f"Control:{message.command}"
    if isinstance(message, ScheduleUpdate):
        return "ScheduleUpdate"
    if isinstance(message, DeviceFetch):
        return "DeviceFetch"
    if isinstance(message, QueryRequest):
        return f"Query:{message.what}"
    if isinstance(message, BindingInfoRequest):
        return "BindingInfo"
    if isinstance(message, EventPollRequest):
        return "EventPoll"
    if isinstance(message, ShareRequest):
        return "Share:grant"
    if isinstance(message, ShareRevoke):
        return "Share:revoke"
    return type(message).__name__
