"""Exception hierarchy for the remote-binding reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without catching programming errors.
Cloud-side request failures additionally derive from
:class:`RequestRejected`, carrying a machine-readable ``code`` so that
tests and the attack framework can assert on the *reason* a request was
rejected (the paper identifies attack failures from response messages,
Section VIII).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all library errors."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly (e.g. time moved backwards)."""


class NetworkError(ReproError):
    """A packet could not be delivered at all (no route, host down)."""


class RequestTimeout(NetworkError):
    """A request's modelled latency exceeded the caller's timeout.

    Raised by the network when an installed fault filter accumulates
    more virtual latency than the per-request ``timeout`` the caller
    passed (see ``docs/chaos.md``); to the client this is just another
    retriable network failure.
    """


class FirewallBlocked(NetworkError):
    """Delivery was blocked by a LAN boundary (WPA2/NAT gate).

    The paper's adversary model assumes the attacker cannot access the
    victim's local network; this error is how the simulation enforces it.
    """


class ProtocolError(ReproError):
    """A message was malformed for the endpoint it was sent to."""


class RequestRejected(ReproError):
    """The cloud (or a device) rejected a request.

    Attributes:
        code: short machine-readable reason, e.g. ``"bad-user-token"``,
            ``"not-bound-user"``, ``"device-offline"``, ``"ip-mismatch"``.
    """

    def __init__(self, code: str, detail: str = "") -> None:
        self.code = code
        self.detail = detail
        super().__init__(f"{code}: {detail}" if detail else code)


class AuthenticationFailed(RequestRejected):
    """Authentication (user or device) failed."""


class AuthorizationFailed(RequestRejected):
    """The principal is authenticated but lacks permission."""


class BindingConflict(RequestRejected):
    """A binding operation conflicted with the existing binding state."""


class UnknownDevice(RequestRejected):
    """The referenced device ID is not in the cloud registry."""

    def __init__(self, device_id: str) -> None:
        super().__init__("unknown-device", f"device {device_id!r} is not registered")
        self.device_id = device_id


class ConfigurationError(ReproError):
    """A vendor design / scenario was configured inconsistently."""


class AttackPreconditionError(ReproError):
    """An attack was launched in a scenario state it does not target.

    The taxonomy (Table II) ties each attack to targeted shadow states;
    running e.g. a device-unbinding attack against a device that was
    never bound is an experiment-script bug, not an attack failure.
    """
