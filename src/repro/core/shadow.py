"""The device-shadow state machine (Figure 2 of the paper).

A *device shadow* is the cloud's view of one physical device: whether it
is online (authenticated status messages are arriving) and whether it is
bound (a user<->device binding exists).  The shadow does **not** decide
whether a message is legitimate — that is the policy layer's job; the
shadow only records the consequences of accepted events.

The paper numbers six transitions in Figure 2:

* (1) initial -> online  — device authentication (``Status``)
* (6) bound  -> control — device authentication (``Status``)
* (2) initial -> bound   — binding creation before device auth (``Bind``)
* (4) online  -> control — binding creation after device auth (``Bind``)
* (3) bound   -> initial — binding revocation (``Unbind``)
* (5) control -> online  — binding revocation (``Unbind``)

plus the implicit offline transitions when status messages stop
(online -> initial, control -> bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import SimulationError
from repro.core.states import ShadowEvent, ShadowState, from_flags

#: The full transition relation.  Missing (state, event) pairs are
#: self-loops: e.g. a heartbeat while already online keeps the state.
TRANSITIONS: Dict[Tuple[ShadowState, ShadowEvent], ShadowState] = {
    (ShadowState.INITIAL, ShadowEvent.STATUS_RECEIVED): ShadowState.ONLINE,   # (1)
    (ShadowState.BOUND, ShadowEvent.STATUS_RECEIVED): ShadowState.CONTROL,    # (6)
    (ShadowState.INITIAL, ShadowEvent.BIND_CREATED): ShadowState.BOUND,       # (2)
    (ShadowState.ONLINE, ShadowEvent.BIND_CREATED): ShadowState.CONTROL,      # (4)
    (ShadowState.BOUND, ShadowEvent.BIND_REVOKED): ShadowState.INITIAL,       # (3)
    (ShadowState.CONTROL, ShadowEvent.BIND_REVOKED): ShadowState.ONLINE,      # (5)
    (ShadowState.ONLINE, ShadowEvent.STATUS_TIMEOUT): ShadowState.INITIAL,
    (ShadowState.CONTROL, ShadowEvent.STATUS_TIMEOUT): ShadowState.BOUND,
}

#: Figure 2's transition numbering, for rendering the figure.
TRANSITION_LABELS: Dict[Tuple[ShadowState, ShadowEvent], str] = {
    (ShadowState.INITIAL, ShadowEvent.STATUS_RECEIVED): "(1)",
    (ShadowState.INITIAL, ShadowEvent.BIND_CREATED): "(2)",
    (ShadowState.BOUND, ShadowEvent.BIND_REVOKED): "(3)",
    (ShadowState.ONLINE, ShadowEvent.BIND_CREATED): "(4)",
    (ShadowState.CONTROL, ShadowEvent.BIND_REVOKED): "(5)",
    (ShadowState.BOUND, ShadowEvent.STATUS_RECEIVED): "(6)",
}


def next_state(state: ShadowState, event: ShadowEvent) -> ShadowState:
    """Pure transition function; unlisted pairs are self-loops."""
    return TRANSITIONS.get((state, event), state)


@dataclass
class TransitionRecord:
    """One recorded transition, for traces and audit."""

    time: float
    event: ShadowEvent
    before: ShadowState
    after: ShadowState

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[t={self.time:.3f}] {self.before} --{self.event}--> {self.after}"


@dataclass
class DeviceShadow:
    """Mutable cloud-side shadow of one device.

    Besides the Figure 2 state, the shadow carries the bookkeeping the
    cloud needs to relay traffic and to evaluate policy checks: who the
    bound user is, when the device was last seen, and which connection
    ("session") currently represents the device — the latter is what the
    A3-4 attack manipulates on single-connection clouds.
    """

    device_id: str
    state: ShadowState = ShadowState.INITIAL
    bound_user: Optional[str] = None
    last_seen: Optional[float] = None
    connection_id: Optional[str] = None
    reported_model: str = ""
    reported_firmware: str = ""
    history: List[TransitionRecord] = field(default_factory=list)
    #: optional hook fired after each *real* transition (observability);
    #: set by :class:`~repro.cloud.shadows.ShadowStore` when instrumented
    on_transition: Optional[Callable[["DeviceShadow", TransitionRecord], None]] = field(
        default=None, repr=False, compare=False
    )

    # -- event application ---------------------------------------------

    def apply(self, event: ShadowEvent, time: float = 0.0) -> ShadowState:
        """Apply *event* at simulation *time* and return the new state."""
        before = self.state
        after = next_state(before, event)
        record: Optional[TransitionRecord] = None
        if after is not before:
            record = TransitionRecord(time, event, before, after)
            self.history.append(record)
        self.state = after
        self._check_invariants()
        if record is not None and self.on_transition is not None:
            self.on_transition(self, record)
        return after

    def mark_status(self, time: float, connection_id: Optional[str] = None) -> ShadowState:
        """Record an accepted status message (registration or heartbeat)."""
        self.last_seen = time
        if connection_id is not None:
            self.connection_id = connection_id
        return self.apply(ShadowEvent.STATUS_RECEIVED, time)

    def mark_offline(self, time: float) -> ShadowState:
        """Record a status timeout (device considered disconnected)."""
        self.connection_id = None
        return self.apply(ShadowEvent.STATUS_TIMEOUT, time)

    def mark_bound(self, user_id: str, time: float) -> ShadowState:
        """Record binding creation with *user_id*."""
        self.bound_user = user_id
        return self.apply(ShadowEvent.BIND_CREATED, time)

    def mark_unbound(self, time: float) -> ShadowState:
        """Record binding revocation."""
        self.bound_user = None
        return self.apply(ShadowEvent.BIND_REVOKED, time)

    # -- queries ---------------------------------------------------------

    @property
    def is_online(self) -> bool:
        return self.state.is_online

    @property
    def is_bound(self) -> bool:
        return self.state.is_bound

    def _check_invariants(self) -> None:
        """The state flags must agree with the bookkeeping fields."""
        if self.state.is_bound and self.bound_user is None:
            raise SimulationError(
                f"shadow {self.device_id}: state {self.state} but no bound user"
            )
        if not self.state.is_bound and self.bound_user is not None:
            raise SimulationError(
                f"shadow {self.device_id}: state {self.state} but bound to {self.bound_user}"
            )
        if from_flags(self.state.is_online, self.state.is_bound) is not self.state:
            raise SimulationError("flag/state mismatch")  # pragma: no cover - defensive
