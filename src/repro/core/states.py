"""Shadow states and transition events (the vocabulary of Figure 2).

The cloud tracks two booleans per device shadow — *online* and *bound* —
giving four states.  Transitions are driven by the reception (or timeout)
of the primitive messages.
"""

from __future__ import annotations

from enum import Enum, unique


@unique
class ShadowState(Enum):
    """The four states of a device shadow (Figure 2)."""

    INITIAL = "initial"  # offline, unbound
    ONLINE = "online"    # online,  unbound
    BOUND = "bound"      # offline, bound
    CONTROL = "control"  # online,  bound

    @property
    def is_online(self) -> bool:
        """Whether the cloud currently considers the device connected."""
        return self in (ShadowState.ONLINE, ShadowState.CONTROL)

    @property
    def is_bound(self) -> bool:
        """Whether a user<->device binding exists in the cloud."""
        return self in (ShadowState.BOUND, ShadowState.CONTROL)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@unique
class ShadowEvent(Enum):
    """Atomic events that move a shadow between states.

    ``STATUS_RECEIVED`` / ``STATUS_TIMEOUT`` implement the paper's rule
    that a device is online while status (registration/heartbeat)
    messages keep arriving and offline once they stop.
    """

    STATUS_RECEIVED = "status-received"
    STATUS_TIMEOUT = "status-timeout"
    BIND_CREATED = "bind-created"
    BIND_REVOKED = "bind-revoked"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def from_flags(online: bool, bound: bool) -> ShadowState:
    """Map the (online, bound) flag pair to the corresponding state."""
    if online and bound:
        return ShadowState.CONTROL
    if online:
        return ShadowState.ONLINE
    if bound:
        return ShadowState.BOUND
    return ShadowState.INITIAL
