"""Formal analysis of the Figure 2 state machine.

This module treats the shadow state machine as a finite transition
system and provides the small amount of model checking the reproduction
relies on:

* reachability (every state is reachable from ``initial``);
* path enumeration (the two orders of reaching ``control`` that the
  paper calls out: bind-then-authenticate and authenticate-then-bind);
* exhaustive (state, event) exploration, which the attack-surface
  analysis (Table II) builds on;
* rendering of the machine as text (the reproduction of Figure 2).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.core.shadow import TRANSITION_LABELS, TRANSITIONS, next_state
from repro.core.states import ShadowEvent, ShadowState

Path = Tuple[ShadowEvent, ...]


def reachable_states(start: ShadowState = ShadowState.INITIAL) -> FrozenSet[ShadowState]:
    """All states reachable from *start* under any event sequence."""
    seen: Set[ShadowState] = {start}
    frontier = deque([start])
    while frontier:
        state = frontier.popleft()
        for event in ShadowEvent:
            nxt = next_state(state, event)
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return frozenset(seen)


def shortest_paths(
    start: ShadowState, goal: ShadowState, max_length: int = 8
) -> List[Path]:
    """All loop-free shortest event sequences from *start* to *goal*.

    Self-loop events are excluded, so a path is a sequence of *effective*
    transitions.  Used to reproduce the paper's observation that the
    control state is reached via exactly two orders.
    """
    if start is goal:
        return [()]
    best: List[Path] = []
    frontier: deque[Tuple[ShadowState, Path, FrozenSet[ShadowState]]] = deque(
        [(start, (), frozenset([start]))]
    )
    found_length = None
    while frontier:
        state, path, visited = frontier.popleft()
        if found_length is not None and len(path) >= found_length:
            break
        if len(path) >= max_length:
            continue
        for event in ShadowEvent:
            nxt = next_state(state, event)
            if nxt is state or nxt in visited:
                continue
            new_path = path + (event,)
            if nxt is goal:
                best.append(new_path)
                found_length = len(new_path)
            else:
                frontier.append((nxt, new_path, visited | {nxt}))
    return best


def run(events: Iterable[ShadowEvent], start: ShadowState = ShadowState.INITIAL) -> ShadowState:
    """Fold an event sequence over the transition function."""
    state = start
    for event in events:
        state = next_state(state, event)
    return state


def transition_table() -> Dict[Tuple[ShadowState, ShadowEvent], ShadowState]:
    """The complete (state, event) -> state table including self-loops."""
    return {
        (state, event): next_state(state, event)
        for state in ShadowState
        for event in ShadowEvent
    }


def effective_transitions() -> Sequence[Tuple[ShadowState, ShadowEvent, ShadowState]]:
    """Only the state-changing transitions (the arrows of Figure 2)."""
    return [
        (state, event, target)
        for (state, event), target in sorted(
            TRANSITIONS.items(), key=lambda item: (item[0][0].value, item[0][1].value)
        )
    ]


def check_paper_properties() -> Dict[str, bool]:
    """Verify the structural properties the paper states about Figure 2.

    Returns a mapping property-name -> bool; the test suite asserts all
    of them, and ``bench_fig2_state_machine`` prints them.
    """
    control_paths = shortest_paths(ShadowState.INITIAL, ShadowState.CONTROL)
    via_bound = (ShadowEvent.BIND_CREATED, ShadowEvent.STATUS_RECEIVED)
    via_online = (ShadowEvent.STATUS_RECEIVED, ShadowEvent.BIND_CREATED)
    return {
        "all-four-states-reachable": reachable_states() == frozenset(ShadowState),
        "control-reachable-in-two-steps": all(len(p) == 2 for p in control_paths),
        "exactly-two-orders-to-control": sorted(
            control_paths, key=lambda p: [e.value for e in p]
        )
        == sorted([via_bound, via_online], key=lambda p: [e.value for e in p]),
        "bind-before-auth-path": run(via_bound) is ShadowState.CONTROL,
        "auth-before-bind-path": run(via_online) is ShadowState.CONTROL,
        "unbind-from-control-keeps-online": run(
            via_online + (ShadowEvent.BIND_REVOKED,)
        )
        is ShadowState.ONLINE,
        "timeout-from-control-keeps-binding": run(
            via_online + (ShadowEvent.STATUS_TIMEOUT,)
        )
        is ShadowState.BOUND,
        "full-reset-returns-to-initial": run(
            via_online + (ShadowEvent.BIND_REVOKED, ShadowEvent.STATUS_TIMEOUT)
        )
        is ShadowState.INITIAL,
    }


def render_figure_2() -> str:
    """Text rendering of Figure 2: the numbered shadow state machine."""
    lines = [
        "Figure 2: State machine of a device shadow",
        "  states: initial(offline,unbound) online(online,unbound)",
        "          bound(offline,bound)     control(online,bound)",
        "",
    ]
    for state, event, target in effective_transitions():
        label = TRANSITION_LABELS.get((state, event), "   ")
        lines.append(f"  {label:>3} {state.value:<8} --{event.value:<16}--> {target.value}")
    lines.append("")
    lines.append("  (1)(6): device authentication   (2)(4): binding creation")
    lines.append("  (3)(5): binding revocation       unlabeled: status timeout")
    return "\n".join(lines)
