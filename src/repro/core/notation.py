"""Table I of the paper: the notation used throughout the model.

The paper compresses every remote-binding design into a small vocabulary
of message types and identifier kinds (its Table I).  This module is the
single source of truth for that vocabulary; the analysis layer renders
the table from here (``benchmarks/bench_table1_notation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique
from typing import Tuple


@unique
class MessageKind(Enum):
    """The three primitive message types that drive shadow transitions.

    Control/data traffic exists in the simulation but — exactly as in the
    paper — does not participate in binding state transitions.
    """

    STATUS = "Status"
    BIND = "Bind"
    UNBIND = "Unbind"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@unique
class CredentialKind(Enum):
    """Identifier/credential kinds from Table I."""

    DEV_ID = "DevId"
    DEV_TOKEN = "DevToken"
    BIND_TOKEN = "BindToken"
    USER_TOKEN = "UserToken"
    USER_ID = "UserId"
    USER_PW = "UserPw"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class NotationEntry:
    """One row of Table I."""

    symbol: str
    description: str


#: The rows of Table I, in the paper's order.
TABLE_I: Tuple[NotationEntry, ...] = (
    NotationEntry("Status", "Messages to report device status (sent by the device)"),
    NotationEntry("Bind", "Messages to create bindings in the cloud"),
    NotationEntry("Unbind", "Messages to revoke bindings in the cloud"),
    NotationEntry("DevId", "A piece of definite data for device authentication"),
    NotationEntry("DevToken", "A piece of random data for device authentication"),
    NotationEntry("BindToken", "A piece of random data for the authorization in binding creation"),
    NotationEntry("UserToken", "A piece of random data for user authentication"),
    NotationEntry("UserId", "Identifier (e.g. email address) of user account"),
    NotationEntry("UserPw", "Password of user account"),
)


def render_table_i() -> str:
    """Render Table I as a fixed-width text table (one row per entry)."""
    width = max(len(entry.symbol) for entry in TABLE_I)
    lines = ["TABLE I: Notations"]
    for entry in TABLE_I:
        lines.append(f"  {entry.symbol:<{width}}  {entry.description}")
    return "\n".join(lines)
