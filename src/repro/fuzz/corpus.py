"""The witness corpus: serialization, loading, deterministic replay.

Corpus files live in ``tests/fixtures/fuzz_corpus/`` (one JSON file per
witness, named after the witness) and are a *regression contract*:
every witness ever minimized must keep reproducing its recorded
normalized trace and oracle verdict on every design revision, or CI
fails.  Replay needs only the executor — not hypothesis — so the gate
runs in minimal environments.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.errors import ConfigurationError
from repro.cloud.policy import VendorDesign
from repro.fuzz.executor import execute_sequence
from repro.fuzz.oracles import differential_divergence
from repro.fuzz.witness import Witness

#: canonical corpus location, relative to the repository root
DEFAULT_CORPUS = Path("tests/fixtures/fuzz_corpus")


def all_designs() -> List[VendorDesign]:
    """The 10 studied vendors plus the 3 secure baselines."""
    from repro.secure.designs import SECURE_BASELINES
    from repro.vendors.profiles import STUDIED_VENDORS

    return list(STUDIED_VENDORS) + list(SECURE_BASELINES)


def design_named(name: str) -> VendorDesign:
    """Lookup across vendors and baselines; raises on unknown names."""
    for design in all_designs():
        if design.name == name:
            return design
    known = ", ".join(d.name for d in all_designs())
    raise ConfigurationError(f"unknown design {name!r} (known: {known})")


# ---------------------------------------------------------------------------
# save / load
# ---------------------------------------------------------------------------


def witness_path(witness: Witness, directory: Union[str, Path]) -> Path:
    """Canonical file path for a witness inside a corpus directory."""
    return Path(directory) / f"{witness.name}.json"


def save_witness(witness: Witness, directory: Union[str, Path]) -> Path:
    """Write one witness as pretty, diff-stable JSON; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = witness_path(witness, directory)
    path.write_text(
        json.dumps(witness.to_data(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_witness(path: Union[str, Path]) -> Witness:
    """Parse one witness JSON file; raises ConfigurationError on damage."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ConfigurationError(f"cannot read witness {path}: {exc}") from exc
    return Witness.from_data(data)


def load_corpus(path: Union[str, Path]) -> List[Witness]:
    """All witnesses under *path* (a directory) or just *path* (a file)."""
    path = Path(path)
    if path.is_file():
        return [load_witness(path)]
    if not path.is_dir():
        raise ConfigurationError(f"no corpus at {path}")
    return [load_witness(p) for p in sorted(path.glob("*.json"))]


# ---------------------------------------------------------------------------
# replay
# ---------------------------------------------------------------------------


@dataclass
class ReplayResult:
    """One witness's replay verdict."""

    witness: str
    kind: str
    ok: bool
    problems: List[str] = field(default_factory=list)

    def render(self) -> str:
        """One status line (plus indented problems on mismatch)."""
        status = "ok" if self.ok else "MISMATCH"
        line = f"{self.witness:<48} [{self.kind}] {status}"
        for problem in self.problems:
            line += f"\n    {problem}"
        return line


def replay_witness(witness: Witness, seed: Optional[int] = None) -> ReplayResult:
    """Re-execute a witness; it must fail again, identically.

    *seed* overrides the recorded world seed — traces are normalized
    (roles and codes only), so a witness must replay bit-identically
    under any seed; corpus tests exploit this to prove seed independence.
    """
    run_seed = witness.seed if seed is None else seed
    problems: List[str] = []
    if witness.kind == "differential":
        group = [design_named(name) for name in witness.designs]
        finding = differential_divergence(group, witness.sequence, seed=run_seed)
        if finding is None:
            problems.append("recorded divergence no longer reproduces")
        else:
            for key in ("kind", "step", "step_name"):
                if finding.get(key) != witness.finding.get(key):
                    problems.append(
                        f"divergence {key} changed: recorded "
                        f"{witness.finding.get(key)!r}, got {finding.get(key)!r}"
                    )
            if sorted(finding.get("designs", [])) != sorted(
                witness.finding.get("designs", [])
            ):
                problems.append(
                    f"diverging pair changed: recorded "
                    f"{witness.finding.get('designs')}, got {finding.get('designs')}"
                )
    else:
        report = execute_sequence(
            design_named(witness.design), witness.sequence, seed=run_seed
        )
        keys = [list(k) for k in report.finding_keys()]
        if keys != witness.finding_keys:
            problems.append(
                f"oracle verdict changed: recorded {witness.finding_keys}, "
                f"got {keys}"
            )
        if witness.trace and report.trace != witness.trace:
            for index, (old, new) in enumerate(zip(witness.trace, report.trace)):
                if old != new:
                    problems.append(
                        f"trace diverges at step {index}: recorded {old}, got {new}"
                    )
                    break
            else:
                problems.append(
                    f"trace length changed: recorded {len(witness.trace)}, "
                    f"got {len(report.trace)}"
                )
    return ReplayResult(
        witness=witness.name, kind=witness.kind, ok=not problems,
        problems=problems,
    )


def replay_corpus(
    path: Union[str, Path] = DEFAULT_CORPUS,
    seed: Optional[int] = None,
) -> List[ReplayResult]:
    """Replay every witness under *path*; empty corpus is an error."""
    witnesses = load_corpus(path)
    if not witnesses:
        raise ConfigurationError(f"corpus at {path} holds no witnesses")
    return [replay_witness(w, seed=seed) for w in witnesses]


def replay_matrix(
    path: Union[str, Path] = DEFAULT_CORPUS,
    seed: int = 0,
) -> Dict[str, Dict[str, List[List[str]]]]:
    """Every (single-design) witness sequence replayed over all 13 designs.

    Returns ``{witness: {design: finding_keys}}`` — the cross-design
    behaviour fingerprint ``tools/check_design_matrix.py`` pins, so a
    policy regression anywhere in the matrix (not just on the design a
    witness was found on) trips CI.
    """
    matrix: Dict[str, Dict[str, List[List[str]]]] = {}
    for witness in load_corpus(path):
        if witness.kind == "differential":
            continue
        row: Dict[str, List[List[str]]] = {}
        for design in all_designs():
            report = execute_sequence(design, witness.sequence, seed=seed)
            row[design.name] = [list(k) for k in report.finding_keys()]
        matrix[witness.name] = row
    return matrix
