"""Hypothesis strategies over the fuzz step vocabulary.

The import of :mod:`hypothesis` is deferred and gated: the fuzz
*executor* and *corpus replay* must work without hypothesis installed
(CI's replay gate only needs deterministic re-execution), while
generation (:func:`sequence_strategy`) is what needs the library.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.errors import ConfigurationError
from repro.fuzz.steps import VOCABULARY


def require_hypothesis():
    """Import hypothesis or explain how to get it."""
    try:
        import hypothesis  # noqa: F401 - presence probe
    except ImportError:  # pragma: no cover - test env always has it
        raise ConfigurationError(
            "sequence generation needs the 'hypothesis' package; "
            "install the test extra: pip install -e .[test]"
        ) from None
    return hypothesis


def sequence_strategy(
    max_size: int = 12,
    min_size: int = 1,
    vocabulary: Optional[Sequence[str]] = None,
):
    """Lists of step names, shrink-ordered per :data:`VOCABULARY`.

    ``sampled_from`` shrinks toward earlier vocabulary entries and
    ``lists`` toward shorter sequences, so a minimal counterexample is
    the shortest sequence of the most boring steps that still trips an
    oracle — exactly what a witness should look like.
    """
    require_hypothesis()
    from hypothesis import strategies as st

    steps: List[str] = list(vocabulary if vocabulary is not None else VOCABULARY)
    unknown = [s for s in steps if s not in VOCABULARY]
    if unknown:
        raise ConfigurationError(f"unknown fuzz step(s): {unknown}")
    return st.lists(st.sampled_from(steps), min_size=min_size, max_size=max_size)
