"""Concrete sequence execution: fuzz steps through ``CloudService.handle_packet``.

The executor owns one fully wired :class:`~repro.scenario.Deployment`
(victim bound and in control — the paper's control state), a
:class:`~repro.attacks.attacker.RemoteAttacker`, a second registered
account, and the stale-token bookkeeping.  Each symbolic step from
:mod:`repro.fuzz.steps` becomes the exact wire message that design's
protocol uses, sent from the acting principal's own network node, so
ground-truth labelling (attacker traffic originates at attacker nodes)
keeps working for detector scoring.

Outcomes are *normalized*: no tokens, device IDs or vendor names appear
in a step outcome, only roles and rejection codes.  That is what makes
a witness trace comparable across designs (the differential oracle) and
bit-identical across world seeds (the corpus regression gate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.attacks.attacker import RemoteAttacker
from repro.cloud.policy import VendorDesign
from repro.core.errors import ProtocolError, RequestRejected
from repro.core.messages import (
    BindMessage,
    ControlMessage,
    LoginRequest,
    LoginResponse,
    Message,
    Origin,
    ShareRequest,
    ShareRevoke,
    UnbindMessage,
)
from repro.fuzz.steps import VOCABULARY, craft_block, principal_of
from repro.obs.observer import Observer
from repro.scenario import Deployment

#: The second legitimate account (registered on top of the deployment's
#: victim and attacker accounts) and its internet-side node.
SECOND_USER = "carol@example.com"
SECOND_PW = "carol-pw-789"
SECOND_NODE = "app:second"
SECOND_IP = "198.51.100.88"


@dataclass
class StepContext:
    """Raw (non-normalized) facts the oracles need about one step."""

    step: str
    principal: str
    acting_user: str
    owner_before: str
    owner_after: str
    authorized_before: bool
    owner_events_before: int
    owner_events_after: int


@dataclass
class FuzzReport:
    """Everything one executed sequence produced."""

    design: str
    seed: int
    sequence: List[str]
    trace: List[Dict[str, Any]]
    violations: List[Dict[str, Any]] = field(default_factory=list)
    divergences: List[Dict[str, Any]] = field(default_factory=list)
    model_steps: int = 0
    probe: Optional[Dict[str, Any]] = None

    def findings(self) -> List[Dict[str, Any]]:
        """Safety violations and model divergences, in step order."""
        merged = [dict(v, oracle="safety") for v in self.violations]
        merged.extend(dict(d, oracle="model") for d in self.divergences)
        merged.sort(key=lambda f: (f.get("step", -1), f["kind"]))
        return merged

    def finding_keys(self) -> List[Tuple[str, str, str]]:
        """Deduplication keys: ``(oracle, kind, step name)``."""
        keys: List[Tuple[str, str, str]] = []
        for f in self.findings():
            key = (f["oracle"], f["kind"], f.get("step_name", ""))
            if key not in keys:
                keys.append(key)
        return keys

    def to_data(self) -> Dict[str, Any]:
        return {
            "design": self.design,
            "seed": self.seed,
            "sequence": list(self.sequence),
            "trace": [dict(outcome) for outcome in self.trace],
            "violations": [dict(v) for v in self.violations],
            "divergences": [dict(d) for d in self.divergences],
            "model_steps": self.model_steps,
            "probe": dict(self.probe) if self.probe else None,
        }


class SequenceExecutor:
    """One world, ready to execute fuzz sequences against one design."""

    def __init__(
        self,
        design: VendorDesign,
        seed: int = 0,
        observer: Optional[Observer] = None,
    ) -> None:
        self.design = design
        self.seed = seed
        self.deployment = Deployment(design, seed=seed, observer=observer)
        self.cloud = self.deployment.cloud
        self.network = self.deployment.network
        self.device_id = self.deployment.victim.device.device_id
        # The second legitimate account reaches the cloud from its own
        # internet host (cellular-style, no LAN of its own).
        self.cloud.accounts.register(SECOND_USER, SECOND_PW, self.deployment.env.now)
        self.network.add_internet_node(SECOND_NODE, None, SECOND_IP)
        self.setup_ok = self.deployment.victim_full_setup()
        self.attacker = RemoteAttacker(self.deployment)
        self.attacker.learn_victim_device_id(self.device_id)
        self.stale_token: Optional[str] = None
        self.second_token: Optional[str] = None
        self._roles = {
            self.deployment.victim.user_id: "owner",
            self.deployment.attacker_party.user_id: "attacker",
            SECOND_USER: "second",
        }
        self._users = {
            "owner": self.deployment.victim.user_id,
            "attacker": self.deployment.attacker_party.user_id,
            # The stale-token holder is the attacker replaying a leaked
            # session — same human, same host.
            "stale": self.deployment.attacker_party.user_id,
            "second": SECOND_USER,
            "world": "",
        }

    # ------------------------------------------------------------------
    # normalization helpers
    # ------------------------------------------------------------------

    def owner_role(self) -> str:
        """Current binding owner as a role name (empty = unbound)."""
        return self._roles.get(self.cloud.bound_user_of(self.device_id) or "", "")

    def _owner_user(self) -> str:
        return self.cloud.bound_user_of(self.device_id) or ""

    def _snapshot(self) -> Dict[str, str]:
        return {
            "owner": self.owner_role(),
            "shadow": self.cloud.shadow_state(self.device_id),
        }

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(self, sequence: Sequence[str]) -> FuzzReport:
        """Run *sequence* through all three oracles; see :mod:`repro.fuzz.oracles`."""
        from repro.fuzz.oracles import ModelTracker, SafetyOracle

        tracker = ModelTracker(self.design)
        safety = SafetyOracle()
        trace: List[Dict[str, Any]] = []
        for index, step in enumerate(sequence):
            outcome, context = self.run_step(index, step)
            trace.append(outcome)
            safety.observe(index, outcome, context)
            tracker.observe(index, outcome)
        probe = tracker.finish(self)
        return FuzzReport(
            design=self.design.name,
            seed=self.seed,
            sequence=list(sequence),
            trace=trace,
            violations=safety.violations,
            divergences=tracker.divergences,
            model_steps=tracker.applied,
            probe=probe,
        )

    def run_step(self, index: int, step: str) -> Tuple[Dict[str, Any], StepContext]:
        """Execute one step; returns (normalized outcome, oracle context)."""
        if step not in VOCABULARY:
            raise ValueError(f"unknown fuzz step {step!r}")
        principal = principal_of(step)
        acting_user = self._users[principal]
        owner_before = self._owner_user()
        events_before = (
            len(self.cloud.events.all_events(owner_before)) if owner_before else 0
        )
        authorized_before = bool(acting_user) and (
            owner_before == acting_user
            or self.cloud.shares.is_granted(self.device_id, acting_user)
        )
        sent, accepted, code = self._dispatch(index, step)
        after = self._snapshot()
        outcome = {
            "step": step,
            "sent": sent,
            "accepted": accepted,
            "code": code,
            "owner": after["owner"],
            "shadow": after["shadow"],
        }
        owner_after = self._owner_user()
        context = StepContext(
            step=step,
            principal=principal,
            acting_user=acting_user,
            owner_before=owner_before,
            owner_after=owner_after,
            authorized_before=authorized_before,
            owner_events_before=events_before,
            owner_events_after=(
                len(self.cloud.events.all_events(owner_before)) if owner_before else 0
            ),
        )
        return outcome, context

    def probe_hijack(self, tag: str = "final") -> Dict[str, Any]:
        """Does the attacker have a *working* control path right now?

        Mirrors the abstract model's ``attacker_controls``: the cloud
        must accept the attacker's command *and* the victim's physical
        device must execute it (a locked-out device never fetches it).
        """
        marker = f"hijack-probe-{tag}"
        try:
            accepted, _code = self.attacker.control_victim_device(marker)
        except (RequestRejected, ProtocolError):
            accepted = False
        if not accepted:
            return {"accepted": False, "executed": False}
        self.deployment.run_heartbeats(2)
        executed = any(
            c.command == marker
            for c in self.deployment.victim.device.executed_commands
        )
        return {"accepted": True, "executed": executed}

    # ------------------------------------------------------------------
    # step dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, index: int, step: str) -> Tuple[bool, bool, str]:
        """Returns ``(sent, accepted, code)`` for one step."""
        block = craft_block(self.design, step)
        if block is not None and principal_of(step) != "owner":
            return False, False, block
        handler = getattr(self, "_step_" + step.replace("-", "_"))
        return handler(index)

    def _wire(self, node: str, message: Message) -> Tuple[bool, bool, str]:
        try:
            response = self.network.request(node, self.cloud.node_name, message)
        except RequestRejected as exc:
            return True, False, exc.code
        except ProtocolError:
            return True, False, "protocol-error"
        del response
        return True, True, ""

    # -- world ----------------------------------------------------------

    def _step_advance(self, index: int) -> Tuple[bool, bool, str]:
        self.deployment.run_heartbeats(1)
        return True, True, ""

    def _step_advance_long(self, index: int) -> Tuple[bool, bool, str]:
        design = self.design
        self.deployment.run(design.offline_timeout + design.heartbeat_interval + 0.5)
        return True, True, ""

    # -- owner ----------------------------------------------------------

    @property
    def _owner_app(self):
        return self.deployment.victim.app

    def _step_owner_login(self, index: int) -> Tuple[bool, bool, str]:
        try:
            self._owner_app.login()
        except RequestRejected as exc:
            return True, False, exc.code
        return True, True, ""

    def _step_owner_logout(self, index: int) -> Tuple[bool, bool, str]:
        token = self._owner_app.user_token
        if token is None:
            return False, False, "not-logged-in"
        revoked = self.cloud.accounts.logout(token)
        # The attacker captured this session earlier; it is stale now.
        self.stale_token = token
        self._owner_app.user_token = None
        return True, revoked, "" if revoked else "already-invalid"

    def _step_owner_bind(self, index: int) -> Tuple[bool, bool, str]:
        app = self._owner_app
        if app.user_token is None:
            return False, False, "not-logged-in"
        device = self.deployment.victim.device
        if self.design.ip_match_required:
            device.press_button()
        try:
            bound = app.bind_device(device)
        except (RequestRejected, ProtocolError) as exc:
            code = exc.code if isinstance(exc, RequestRejected) else "protocol-error"
            return True, False, code
        return True, bound, "" if bound else "rejected"

    def _step_owner_unbind(self, index: int) -> Tuple[bool, bool, str]:
        token = self._owner_app.user_token
        if token is None:
            return False, False, "not-logged-in"
        return self._wire(
            self._owner_app.node_name,
            UnbindMessage(device_id=self.device_id, user_token=token),
        )

    def _step_owner_control(self, index: int) -> Tuple[bool, bool, str]:
        if self._owner_app.user_token is None:
            return False, False, "not-logged-in"
        try:
            self._owner_app.control(self.device_id, f"owner-cmd-{index}")
        except RequestRejected as exc:
            return True, False, exc.code
        except ProtocolError:
            return True, False, "protocol-error"
        return True, True, ""

    def _step_owner_share(self, index: int) -> Tuple[bool, bool, str]:
        token = self._owner_app.user_token
        if token is None:
            return False, False, "not-logged-in"
        return self._wire(
            self._owner_app.node_name,
            ShareRequest(user_token=token, device_id=self.device_id,
                         grantee=SECOND_USER),
        )

    def _step_owner_share_revoke(self, index: int) -> Tuple[bool, bool, str]:
        token = self._owner_app.user_token
        if token is None:
            return False, False, "not-logged-in"
        return self._wire(
            self._owner_app.node_name,
            ShareRevoke(user_token=token, device_id=self.device_id,
                        grantee=SECOND_USER),
        )

    # -- attacker --------------------------------------------------------

    def _step_attacker_login(self, index: int) -> Tuple[bool, bool, str]:
        try:
            self.attacker.login()
        except RequestRejected as exc:
            return True, False, exc.code
        return True, True, ""

    def _attacker_send(self, message: Message) -> Tuple[bool, bool, str]:
        accepted, code, response = self.attacker.send(message)
        self.attacker.note_bind_response(response)
        return True, accepted, "" if accepted else code

    def _step_attacker_bind(self, index: int) -> Tuple[bool, bool, str]:
        return self._attacker_send(self.attacker.forge_bind())

    def _step_attacker_unbind1(self, index: int) -> Tuple[bool, bool, str]:
        return self._attacker_send(self.attacker.forge_unbind_type1())

    def _step_attacker_unbind2(self, index: int) -> Tuple[bool, bool, str]:
        return self._attacker_send(self.attacker.forge_unbind_type2())

    def _step_attacker_status(self, index: int) -> Tuple[bool, bool, str]:
        return self._attacker_send(self.attacker.forge_status())

    def _step_attacker_fetch(self, index: int) -> Tuple[bool, bool, str]:
        return self._attacker_send(self.attacker.forge_fetch())

    def _step_attacker_control(self, index: int) -> Tuple[bool, bool, str]:
        try:
            accepted, code = self.attacker.control_victim_device(
                f"attacker-cmd-{index}"
            )
        except RequestRejected as exc:
            return True, False, exc.code
        return True, accepted, "" if accepted else code

    # -- stale-token holder ---------------------------------------------

    def _stale_send(self, message: Message) -> Tuple[bool, bool, str]:
        if self.stale_token is None:
            return False, False, "no-stale-token"
        return self._wire(self.attacker.node, message)

    def _step_stale_bind(self, index: int) -> Tuple[bool, bool, str]:
        if self.stale_token is None:
            return False, False, "no-stale-token"
        return self._stale_send(
            BindMessage(device_id=self.device_id, user_token=self.stale_token)
        )

    def _step_stale_unbind(self, index: int) -> Tuple[bool, bool, str]:
        return self._stale_send(
            UnbindMessage(device_id=self.device_id, user_token=self.stale_token)
        )

    def _step_stale_control(self, index: int) -> Tuple[bool, bool, str]:
        return self._stale_send(
            ControlMessage(
                user_token=self.stale_token or "",
                device_id=self.device_id,
                command=f"stale-cmd-{index}",
            )
        )

    # -- second legitimate user -------------------------------------------

    def _step_second_login(self, index: int) -> Tuple[bool, bool, str]:
        try:
            response = self.network.request(
                SECOND_NODE, self.cloud.node_name,
                LoginRequest(SECOND_USER, SECOND_PW),
            )
        except RequestRejected as exc:
            return True, False, exc.code
        if isinstance(response, LoginResponse):
            self.second_token = response.user_token
        return True, True, ""

    def _step_second_bind(self, index: int) -> Tuple[bool, bool, str]:
        from repro.cloud.policy import BindSender

        if self.design.bind_sender is BindSender.DEVICE:
            # Household member types her credentials into the device.
            message = BindMessage(
                device_id=self.device_id,
                user_id=SECOND_USER,
                user_pw=SECOND_PW,
                origin=Origin.DEVICE,
            )
        else:
            if self.second_token is None:
                return False, False, "not-logged-in"
            message = BindMessage(
                device_id=self.device_id, user_token=self.second_token
            )
        return self._wire(SECOND_NODE, message)

    def _step_second_unbind(self, index: int) -> Tuple[bool, bool, str]:
        if self.second_token is None:
            return False, False, "not-logged-in"
        return self._wire(
            SECOND_NODE,
            UnbindMessage(device_id=self.device_id, user_token=self.second_token),
        )

    def _step_second_control(self, index: int) -> Tuple[bool, bool, str]:
        if self.second_token is None:
            return False, False, "not-logged-in"
        return self._wire(
            SECOND_NODE,
            ControlMessage(
                user_token=self.second_token,
                device_id=self.device_id,
                command=f"second-cmd-{index}",
            ),
        )


def execute_sequence(
    design: VendorDesign,
    sequence: Sequence[str],
    seed: int = 0,
    observer: Optional[Observer] = None,
) -> FuzzReport:
    """Build a fresh world and run *sequence* — the one-call entry point."""
    return SequenceExecutor(design, seed=seed, observer=observer).execute(sequence)
