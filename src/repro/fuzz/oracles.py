"""The fuzzer's three oracles.

(a) **Model conformance** (:class:`ModelTracker`) — while a sequence
    stays inside the Figure-2 abstraction's vocabulary (attacker moves
    plus neutral steps), the concrete cloud must agree with
    :func:`repro.analysis.protocol_model._apply` about which moves are
    accepted and who owns the binding afterwards, and at the end about
    whether the attacker's control path actually works.

(b) **Cross-design differential** (:func:`equivalence_fingerprint`,
    :func:`differential_divergence`) — two designs whose compiled
    :class:`~repro.cloud.pdp.spec.PolicySpec` and behaviour knobs are
    identical must produce identical normalized traces for every
    sequence; a difference means an enforcement point consulted
    something the policy layer does not declare.

(c) **Safety invariants** (:class:`SafetyOracle`) — properties that must
    hold on *every* design, weak or not, because violating them is the
    paper's attack surface itself: no stale session may act, no control
    without a binding or share, no device-protocol forgery accepted,
    and no binding may change hands silently.

Known abstraction gaps are encoded here rather than papered over: the
model's ``forge-status`` returns ``None`` to mean "no security-relevant
effect" (not wire rejection), so only owner-invariance is compared for
that move; and the model only describes revoking the *victim's*
binding, so the tracker retires once the abstract owner is the
attacker and an unbind move arrives.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.protocol_model import (
    ATTACKER,
    NOBODY,
    VICTIM,
    AbstractState,
    _apply,
    _attacker_moves,
)
from repro.cloud.pdp.spec import PolicySpec
from repro.cloud.policy import VendorDesign
from repro.fuzz.steps import (
    CONTROL_STEPS,
    DEVICE_PROTOCOL_STEPS,
    MODEL_MOVES,
    MODEL_NEUTRAL,
)

#: Abstract owner -> normalized trace role.
_OWNER_ROLE = {VICTIM: "owner", ATTACKER: "attacker", NOBODY: ""}


# ---------------------------------------------------------------------------
# (c) safety invariants
# ---------------------------------------------------------------------------


class SafetyOracle:
    """Design-independent invariants, checked after every step."""

    def __init__(self) -> None:
        self.violations: List[Dict[str, Any]] = []

    def _record(self, kind: str, index: int, outcome: Dict[str, Any],
                detail: str) -> None:
        self.violations.append({
            "kind": kind,
            "step": index,
            "step_name": outcome["step"],
            "code": outcome["code"],
            "detail": detail,
        })

    def observe(self, index: int, outcome: Dict[str, Any], context) -> None:
        """Check all four invariants against one executed step."""
        step = outcome["step"]
        accepted = outcome["sent"] and outcome["accepted"]
        if accepted and context.principal == "stale":
            self._record(
                "stale-token-accepted", index, outcome,
                "a request authenticated by a logged-out session token "
                "was accepted (Section V-B: tokens must die at logout)",
            )
        if accepted and step in CONTROL_STEPS and not context.authorized_before:
            self._record(
                "control-without-binding", index, outcome,
                f"{context.principal} was neither the bound user nor a "
                "sharee when the cloud accepted its command",
            )
        if accepted and step in DEVICE_PROTOCOL_STEPS:
            self._record(
                "forged-device-accepted", index, outcome,
                "a device-protocol message from the attacker's own host "
                "passed device authentication (Figure 3 forgery)",
            )
        if (
            context.owner_before
            and context.owner_after != context.owner_before
            and context.acting_user != context.owner_before
            and context.owner_events_after <= context.owner_events_before
        ):
            self._record(
                "silent-ownership-transfer", index, outcome,
                "the binding left its owner through someone else's "
                "request and the owner was never notified",
            )


# ---------------------------------------------------------------------------
# (a) Figure-2 model conformance
# ---------------------------------------------------------------------------


class ModelTracker:
    """Lock-step comparison with the abstract protocol model.

    Active only while every executed step is one of the model's moves
    (or neutral); the first out-of-vocabulary step, recorded
    divergence, or out-of-abstraction situation retires the tracker —
    the model makes no claims beyond that point.
    """

    def __init__(self, design: VendorDesign) -> None:
        self.design = design
        self.state = AbstractState()
        self.moves = _attacker_moves(design)
        self.active = True
        self.applied = 0
        self.divergences: List[Dict[str, Any]] = []

    def _record(self, kind: str, index: int, step: str, detail: str) -> None:
        self.divergences.append({
            "kind": kind,
            "step": index,
            "step_name": step,
            "detail": detail,
        })
        self.active = False

    def observe(self, index: int, outcome: Dict[str, Any]) -> None:
        """Advance the abstract state and compare it with one outcome."""
        if not self.active:
            return
        step = outcome["step"]
        if step in MODEL_NEUTRAL:
            return
        move = MODEL_MOVES.get(step)
        if move is None:
            self.active = False  # sequence left the model's vocabulary
            return
        if move.startswith("unbind") and self.state.owner == ATTACKER:
            # The abstraction only describes revoking the victim's
            # binding; an attacker revoking their own is out of scope.
            self.active = False
            return
        craftable = move in self.moves
        if not outcome["sent"]:
            if craftable:
                self._record(
                    "craftability", index, step,
                    f"the model says {move!r} is forgeable against "
                    f"{self.design.name} but the executor could not "
                    f"craft it ({outcome['code']})",
                )
            return
        predicted = _apply(self.design, self.state, move) if craftable else None
        if predicted is not None:
            self.state = predicted
        self.applied += 1
        expected_owner = _OWNER_ROLE[self.state.owner]
        if outcome["owner"] != expected_owner:
            self._record(
                "owner-state", index, step,
                f"after {move!r} the model predicts owner "
                f"{expected_owner or 'nobody'!r} but the cloud reports "
                f"{outcome['owner'] or 'nobody'!r}",
            )
            return
        if move != "forge-status" and (predicted is not None) != outcome["accepted"]:
            self._record(
                "acceptance", index, step,
                f"the model predicts {move!r} is "
                f"{'accepted' if predicted is not None else 'rejected'} "
                f"but the cloud "
                f"{'accepted' if outcome['accepted'] else 'rejected'} it "
                f"(code {outcome['code']!r})",
            )

    def finish(self, executor) -> Optional[Dict[str, Any]]:
        """End-of-sequence hijack probe vs ``attacker_controls``."""
        if not self.active or self.applied == 0:
            return None
        probe = executor.probe_hijack()
        if probe["executed"] != self.state.attacker_controls:
            self._record(
                "hijack-reachability", len(executor.deployment.victim.device
                                           .executed_commands), "(probe)",
                f"the model says attacker_controls="
                f"{self.state.attacker_controls} but a concrete command "
                f"{'executed' if probe['executed'] else 'did not execute'} "
                "on the victim's device",
            )
        return probe


# ---------------------------------------------------------------------------
# (b) cross-design differential
# ---------------------------------------------------------------------------

#: Behaviour knobs the enforcement points consult *outside* the compiled
#: PolicySpec rules; two designs are claimed equivalent only when both
#: the spec and these agree.
_BEHAVIOUR_KNOBS = (
    "device_type",
    "firmware_available",
    "status_yields_user_data",
    "notifies_user",
    "single_connection_per_device",
    "post_binding_token",
    "heartbeat_interval",
    "offline_timeout",
    "bind_window_seconds",
)


def equivalence_fingerprint(design: VendorDesign) -> str:
    """sha256 identity of everything that may influence a fuzz trace.

    Identity knobs (name, ID scheme/OUI/serial shape, label printing,
    analyst knowledge) are deliberately excluded: they change device-ID
    strings, which normalized traces never contain.
    """
    spec = PolicySpec.from_design(design).to_data()
    spec.pop("name", None)
    body = {
        "spec": spec,
        "behaviour": {
            knob: getattr(design, knob) for knob in _BEHAVIOUR_KNOBS
        },
        "device_auth": design.device_auth.value,
        "bind_schema": design.bind_schema.value,
        "bind_sender": design.bind_sender.value,
    }
    canonical = json.dumps(body, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def differential_groups(
    designs: Sequence[VendorDesign],
) -> List[List[VendorDesign]]:
    """Designs partitioned by fingerprint; only groups of two or more."""
    by_print: Dict[str, List[VendorDesign]] = {}
    for design in designs:
        by_print.setdefault(equivalence_fingerprint(design), []).append(design)
    return [group for group in by_print.values() if len(group) > 1]


def differential_divergence(
    group: Sequence[VendorDesign],
    sequence: Sequence[str],
    seed: int = 0,
) -> Optional[Dict[str, Any]]:
    """Run *sequence* on every design in an equivalence *group*.

    Returns ``None`` when all normalized traces agree, else a finding
    naming the two designs and the first differing step.
    """
    from repro.fuzz.executor import execute_sequence

    baseline = None
    baseline_design = None
    for design in group:
        report = execute_sequence(design, sequence, seed=seed)
        trace = report.trace
        if baseline is None:
            baseline, baseline_design = trace, design.name
            continue
        if trace == baseline:
            continue
        for index, (left, right) in enumerate(zip(baseline, trace)):
            if left != right:
                return {
                    "kind": "differential",
                    "step": index,
                    "step_name": sequence[index],
                    "designs": [baseline_design, design.name],
                    "left": left,
                    "right": right,
                    "detail": (
                        f"{baseline_design} and {design.name} compile to "
                        "the same PolicySpec and behaviour knobs but "
                        f"diverge at step {index} ({sequence[index]})"
                    ),
                }
        return {  # pragma: no cover - traces are same-length by construction
            "kind": "differential",
            "step": len(baseline),
            "step_name": "",
            "designs": [baseline_design, design.name],
            "left": None,
            "right": None,
            "detail": "trace length mismatch",
        }
    return None
