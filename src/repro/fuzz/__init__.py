"""Generative protocol fuzzing for the remote-binding design space.

Five small layers:

* :mod:`repro.fuzz.steps` — the symbolic step vocabulary,
* :mod:`repro.fuzz.strategies` — hypothesis strategies over it,
* :mod:`repro.fuzz.executor` — concrete execution of a sequence in a
  fresh simulated world,
* :mod:`repro.fuzz.oracles` — model-conformance, cross-design
  differential, and safety oracles,
* :mod:`repro.fuzz.witness` / :mod:`repro.fuzz.corpus` — shrinking,
  serialization, and deterministic replay of counterexamples.

See ``docs/fuzzing.md`` for the operator's guide.
"""

from repro.fuzz.corpus import (
    DEFAULT_CORPUS,
    ReplayResult,
    all_designs,
    design_named,
    load_corpus,
    load_witness,
    replay_corpus,
    replay_matrix,
    replay_witness,
    save_witness,
)
from repro.fuzz.executor import FuzzReport, SequenceExecutor, execute_sequence
from repro.fuzz.oracles import (
    ModelTracker,
    SafetyOracle,
    differential_divergence,
    differential_groups,
    equivalence_fingerprint,
)
from repro.fuzz.steps import VOCABULARY, craft_block, principal_of
from repro.fuzz.strategies import sequence_strategy
from repro.fuzz.witness import (
    Witness,
    fuzz_design,
    fuzz_differential,
    witness_from_report,
)

__all__ = [
    "DEFAULT_CORPUS",
    "FuzzReport",
    "ModelTracker",
    "ReplayResult",
    "SafetyOracle",
    "SequenceExecutor",
    "VOCABULARY",
    "Witness",
    "all_designs",
    "craft_block",
    "design_named",
    "differential_divergence",
    "differential_groups",
    "equivalence_fingerprint",
    "execute_sequence",
    "fuzz_design",
    "fuzz_differential",
    "load_corpus",
    "load_witness",
    "principal_of",
    "replay_corpus",
    "replay_matrix",
    "replay_witness",
    "save_witness",
    "sequence_strategy",
    "witness_from_report",
]
