"""Search, shrink, and package counterexamples as witnesses.

A *witness* is one minimized failing sequence plus everything needed to
replay it deterministically and to check that it still fails for the
same reason: the design (or design pair, for differential findings),
the world seed, the normalized trace, and the oracle finding.

Shrinking is hypothesis's own: :func:`hypothesis.find` returns the
*minimal* example satisfying the predicate, so every witness is already
as short and as boring as the vocabulary ordering allows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from random import Random
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple
from zlib import crc32

from repro.cloud.policy import VendorDesign
from repro.fuzz.executor import FuzzReport, execute_sequence
from repro.fuzz.oracles import differential_divergence, differential_groups
from repro.fuzz.strategies import require_hypothesis, sequence_strategy

#: serialization format version for corpus files
SCHEMA_VERSION = 1


@dataclass
class Witness:
    """One minimized, replayable counterexample."""

    name: str
    kind: str                      # "safety" | "model" | "differential"
    designs: List[str]             # one design, or the diverging pair
    seed: int
    sequence: List[str]
    finding: Dict[str, Any]
    finding_keys: List[List[str]] = field(default_factory=list)
    trace: List[Dict[str, Any]] = field(default_factory=list)
    found_by: str = ""

    @property
    def design(self) -> str:
        return self.designs[0]

    def to_data(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "kind": self.kind,
            "designs": list(self.designs),
            "seed": self.seed,
            "sequence": list(self.sequence),
            "finding": dict(self.finding),
            "finding_keys": [list(key) for key in self.finding_keys],
            "trace": [dict(outcome) for outcome in self.trace],
            "found_by": self.found_by,
        }

    @classmethod
    def from_data(cls, data: Dict[str, Any]) -> "Witness":
        """Inverse of :meth:`to_data`; rejects unknown schema versions."""
        from repro.core.errors import ConfigurationError

        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise ConfigurationError(
                f"witness {data.get('name', '?')!r}: schema {schema!r} "
                f"(this build reads schema {SCHEMA_VERSION})"
            )
        return cls(
            name=data["name"],
            kind=data["kind"],
            designs=list(data["designs"]),
            seed=int(data["seed"]),
            sequence=list(data["sequence"]),
            finding=dict(data["finding"]),
            finding_keys=[list(k) for k in data.get("finding_keys", [])],
            trace=[dict(o) for o in data.get("trace", [])],
            found_by=data.get("found_by", ""),
        )


def _design_rng(seed: int, design_name: str) -> Random:
    """Per-design deterministic generator stream."""
    return Random(seed ^ crc32(design_name.encode("utf-8")))


def _settings(max_examples: int):
    from hypothesis import HealthCheck, settings

    return settings(
        database=None,
        deadline=None,
        max_examples=max_examples,
        suppress_health_check=list(HealthCheck),
    )


def witness_from_report(
    report: FuzzReport,
    new_keys: Sequence[Tuple[str, str, str]],
    found_by: str = "",
) -> Witness:
    """Package a minimal failing report as a witness for its first new key."""
    oracle, kind, step_name = new_keys[0]
    finding = next(
        f for f in report.findings()
        if (f["oracle"], f["kind"], f.get("step_name", "")) == new_keys[0]
    )
    name = "-".join(
        part for part in (
            report.design.lower().replace(" ", "-"),
            kind,
            step_name,
        ) if part
    )
    return Witness(
        name=name,
        kind=oracle,
        designs=[report.design],
        seed=report.seed,
        sequence=list(report.sequence),
        finding=finding,
        finding_keys=[list(k) for k in report.finding_keys()],
        trace=report.trace,
        found_by=found_by,
    )


def fuzz_design(
    design: VendorDesign,
    seed: int = 0,
    max_examples: int = 150,
    max_size: int = 12,
    deadline: Optional[float] = None,
    known: Optional[Iterable[Tuple[str, str, str]]] = None,
    found_by: str = "",
) -> List[Witness]:
    """Find one minimal witness per distinct finding key on *design*.

    Repeatedly asks hypothesis for the minimal sequence producing a
    finding key not yet in *known*; each round either yields one new
    witness (and adds its keys to the exclusion set) or proves the
    design dry at this budget.  *deadline* is a ``time.monotonic()``
    timestamp acting as a wall-clock safety net — determinism comes
    from the seed and ``max_examples``, which bound each round.
    """
    require_hypothesis()
    from hypothesis import find
    from hypothesis.errors import NoSuchExample

    seen = set(tuple(k) for k in (known or ()))
    rng = _design_rng(seed, design.name)
    witnesses: List[Witness] = []
    while deadline is None or time.monotonic() < deadline:
        def trips_new_oracle(sequence: List[str]) -> bool:
            report = execute_sequence(design, sequence, seed=seed)
            return any(tuple(k) not in seen for k in report.finding_keys())

        try:
            minimal = find(
                sequence_strategy(max_size=max_size),
                trips_new_oracle,
                settings=_settings(max_examples),
                random=rng,
            )
        except NoSuchExample:
            break
        report = execute_sequence(design, minimal, seed=seed)
        new_keys = [
            tuple(k) for k in report.finding_keys() if tuple(k) not in seen
        ]
        if not new_keys:  # pragma: no cover - find() guarantees one
            break
        seen.update(new_keys)
        witnesses.append(witness_from_report(report, new_keys, found_by=found_by))
    return witnesses


def fuzz_differential(
    designs: Sequence[VendorDesign],
    seed: int = 0,
    max_examples: int = 80,
    max_size: int = 10,
    deadline: Optional[float] = None,
    found_by: str = "",
) -> List[Witness]:
    """Hunt trace divergences inside each spec-equivalence group."""
    require_hypothesis()
    from hypothesis import find
    from hypothesis.errors import NoSuchExample

    witnesses: List[Witness] = []
    for group in differential_groups(designs):
        if deadline is not None and time.monotonic() >= deadline:
            break
        group_name = "+".join(d.name for d in group)
        rng = _design_rng(seed, group_name)

        def diverges(sequence: List[str]) -> bool:
            return differential_divergence(group, sequence, seed=seed) is not None

        try:
            minimal = find(
                sequence_strategy(max_size=max_size),
                diverges,
                settings=_settings(max_examples),
                random=rng,
            )
        except NoSuchExample:
            continue
        finding = differential_divergence(group, minimal, seed=seed)
        assert finding is not None
        pair = finding["designs"]
        witnesses.append(Witness(
            name="-vs-".join(p.lower().replace(" ", "-") for p in pair)
                 + f"-{finding['step_name']}",
            kind="differential",
            designs=list(pair),
            seed=seed,
            sequence=list(minimal),
            finding=finding,
            finding_keys=[["differential", finding["kind"],
                           finding["step_name"]]],
            trace=[],
            found_by=found_by,
        ))
    return witnesses
