"""The fuzzer's step vocabulary: abstract, design-independent protocol moves.

A fuzz *sequence* is a list of step names.  Each step names one move by
one principal — the four principals of the remote-binding threat model
plus the world itself:

* ``owner``    — the victim (Alice): the legitimate bound user,
* ``attacker`` — a remote stranger (Mallory) with a valid account of the
  same vendor who knows the victim's device ID (Section III-A),
* ``stale``    — the stale-token holder: Mallory replaying a session
  token the owner already logged out of,
* ``second``   — a second legitimate account (Carol), e.g. a household
  member the owner may or may not have shared the device with,
* ``advance``  — virtual time passing (heartbeats, liveness sweeps).

Steps are symbolic so the same sequence replays against any of the 13
designs: the executor (:mod:`repro.fuzz.executor`) translates each step
into the concrete wire message shapes that design uses, exactly as the
attack battery does.  Device-protocol steps are craft-gated by the
paper's capability asymmetry (firmware knowledge), mirroring
:func:`repro.analysis.protocol_model._attacker_moves`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cloud.policy import BindSchema, BindSender, VendorDesign

#: Every step the strategies may emit, in shrink order (hypothesis
#: shrinks ``sampled_from`` toward earlier entries, so the neutral
#: world steps come first).
VOCABULARY: Tuple[str, ...] = (
    # world
    "advance",
    "advance-long",
    # owner (victim)
    "owner-login",
    "owner-logout",
    "owner-bind",
    "owner-unbind",
    "owner-control",
    "owner-share",
    "owner-share-revoke",
    # second legitimate user
    "second-login",
    "second-bind",
    "second-unbind",
    "second-control",
    # stale-token holder
    "stale-bind",
    "stale-unbind",
    "stale-control",
    # remote attacker
    "attacker-login",
    "attacker-bind",
    "attacker-unbind1",
    "attacker-unbind2",
    "attacker-status",
    "attacker-fetch",
    "attacker-control",
)

#: Steps the Figure-2 model checker has a move for
#: (:func:`repro.analysis.protocol_model._apply`).
MODEL_MOVES = {
    "attacker-bind": "bind",
    "attacker-unbind1": "unbind-type1",
    "attacker-unbind2": "unbind-type2",
    "attacker-status": "forge-status",
}

#: Steps that neither the model checker tracks nor perturb the facts it
#: abstracts (ownership, liveness): time passing and logins.
MODEL_NEUTRAL = frozenset({"advance", "advance-long", "attacker-login"})

#: Device-protocol steps: accepting one from a non-device host is a
#: forgery the vendor's device authentication failed to stop.
DEVICE_PROTOCOL_STEPS = frozenset(
    {"attacker-status", "attacker-fetch", "attacker-unbind2"}
)

#: Steps that ask the cloud to relay a command (the control invariant).
CONTROL_STEPS = frozenset(
    {"owner-control", "second-control", "stale-control", "attacker-control"}
)


def principal_of(step: str) -> str:
    """The acting principal (``owner``/``attacker``/``stale``/``second``/``world``)."""
    for prefix in ("owner", "attacker", "stale", "second"):
        if step.startswith(prefix + "-"):
            return prefix
    return "world"


def craft_block(design: VendorDesign, step: str) -> Optional[str]:
    """Why *step* cannot even be crafted against *design*, or ``None``.

    Encodes the paper's forgery asymmetry: app-protocol messages are
    always craftable (MITM of the attacker's own phone), device-protocol
    messages need firmware-derived knowledge, and capability bindings
    cannot be forged remotely at all (the BindToken must travel through
    the physical device).
    """
    if step in DEVICE_PROTOCOL_STEPS and not design.firmware_available:
        return "no-device-protocol-knowledge"
    if step in ("attacker-bind", "stale-bind", "second-bind"):
        if design.bind_schema is BindSchema.CAPABILITY:
            return "capability-binding-not-forgeable"
        if step == "attacker-bind" and (
            design.bind_sender is BindSender.DEVICE
            and not design.firmware_available
        ):
            return "no-device-protocol-knowledge"
        if step == "stale-bind" and design.bind_sender is BindSender.DEVICE:
            # The stale holder replays captured *app* traffic; there is
            # no app-submitted Bind on device-initiated designs.
            return "no-app-bind-on-this-design"
    return None
