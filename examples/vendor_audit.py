#!/usr/bin/env python
"""Vendor audit: regenerate the paper's Table III and Section VII findings.

Runs the full A1-A4-3 attack battery against all ten studied vendor
designs (each attempt in a fresh simulated world), prints the computed
Table III, compares it cell-for-cell with the published table, and then
lints every design against the paper's lessons learned.

Run:
    python examples/vendor_audit.py
"""

from repro.analysis import (
    evaluate_all_vendors,
    render_agreement,
    render_findings,
    render_table_ii,
    render_table_iii,
)
from repro.vendors import STUDIED_VENDORS


def main() -> None:
    print(render_table_ii())
    print()

    print("running the attack battery against all 10 vendors "
          "(90 attack attempts, each in a fresh world)...")
    evaluations = evaluate_all_vendors(seed=3)
    print()
    print(render_table_iii(evaluations))
    print()
    print(render_agreement(evaluations))

    print()
    print("Section VII lessons-learned lint:")
    for design in STUDIED_VENDORS:
        print()
        print(render_findings(design))


if __name__ == "__main__":
    main()
