#!/usr/bin/env python
"""Quickstart: the complete remote-binding life cycle (paper's Figure 1).

Builds a simulated three-party world — one vendor cloud, a user (Alice)
with her phone, home Wi-Fi and a brand-new smart plug — then walks the
full life cycle: login, Wi-Fi provisioning, local configuration,
binding creation, remote control, and binding revocation.

Run:
    python examples/quickstart.py
"""

from repro import Deployment, vendor
from repro.analysis.traces import trace_lifecycle


def main() -> None:
    design = vendor("Belkin")  # a DevToken, app-initiated-binding vendor
    world = Deployment(design, seed=7)
    alice = world.victim

    print(f"vendor design: {design.name} ({design.device_type})")
    print(f"device authentication: {design.device_auth}")
    print(f"device id: {alice.device.device_id}")
    print()

    # --- Figure 1, step by step -------------------------------------------
    print("step 1: user authentication")
    alice.app.login()

    print("step 2: local configuration (SmartConfig + DevToken delivery)")
    alice.device.power_on()
    alice.app.provision_wifi(alice.ssid, alice.wifi_passphrase)
    alice.app.local_configure(alice.device)
    print(f"  shadow state: {world.shadow_state()}")   # online

    print("step 3: binding creation")
    alice.app.bind_device(alice.device)
    print(f"  shadow state: {world.shadow_state()}")   # control
    print(f"  bound user:   {world.bound_user()}")

    print("step 4: remote control")
    alice.app.control(alice.device.device_id, "on")
    world.run_heartbeats(1)
    print(f"  plug is on:   {alice.device.state['on']}")
    reading = alice.app.query(alice.device.device_id).payload["telemetry"]
    print(f"  telemetry:    {reading}")

    print("step 5: binding revocation")
    alice.app.remove_device(alice.device.device_id)
    print(f"  shadow state: {world.shadow_state()}")   # online (unbound)

    # --- the same flow as a wire trace (Figure 1) ---------------------------
    print()
    print(trace_lifecycle(design, seed=8))


if __name__ == "__main__":
    main()
