#!/usr/bin/env python
"""The A1 cascade: forged sensor data drives physical actuators.

Section V-B: "when an air conditioning system is associated with a
temperature sensor, fake data of the sensor may turn on or turn off the
air conditioning system."  This example builds exactly that home — a
temperature sensor plus an AC smart plug wired together by an
IFTTT-style rule — and shows one forged status message flipping the AC,
with no attack against the AC at all.

Run:
    python examples/automation_cascade.py
"""

from repro import Deployment
from repro.app.automation import AutomationEngine, Rule
from repro.attacks import RemoteAttacker
from repro.cloud.policy import DeviceAuthMode, VendorDesign


def main() -> None:
    # A DevId vendor with public firmware: the A1-exposed corner.
    design = VendorDesign(
        name="CascadeVendor", device_type="smart-plug",
        device_auth=DeviceAuthMode.DEV_ID,
        device_auth_known=DeviceAuthMode.DEV_ID,
        firmware_available=True,
        id_scheme="serial-number",
    )
    world = Deployment(design, seed=17)
    alice = world.victim

    print("setting up Alice's home: AC plug + temperature sensor...")
    assert world.victim_full_setup()
    sensor = world.add_victim_device("temp-sensor", label="sensor")
    assert world.setup_victim_device(sensor)
    ac_plug = alice.device

    engine = AutomationEngine(world.env, alice.app)
    engine.add_rule(Rule(
        name="cool-when-hot",
        trigger_device=sensor.device_id, metric="temperature_c",
        op=">", threshold=28.0,
        action_device=ac_plug.device_id, command="on",
    ))
    print(f"rule installed: IF {sensor.device_id}.temperature_c > 28 "
          f"THEN {ac_plug.device_id}.on")

    world.run_heartbeats(1)
    engine.evaluate_once()
    reading = alice.app.query(sensor.device_id).payload["telemetry"]
    print(f"\nambient reading: {reading['temperature_c']}°C -> "
          f"AC on: {ac_plug.state['on']} (rule silent)")

    print("\nattacker forges ONE sensor status with a 45°C reading...")
    mallory = RemoteAttacker(world)
    mallory.login()
    mallory.learn_victim_device_id(sensor.device_id)
    accepted, code, _ = mallory.send(
        mallory.forge_status({"temperature_c": 45.0})
    )
    print(f"  cloud answer: {'accepted' if accepted else code}")

    firings = engine.evaluate_once()
    world.run_heartbeats(1)
    print(f"  rule fired: {[f.rule for f in firings]} "
          f"(observed {firings[0].observed}°C)")
    print(f"  AC plug is now on: {ac_plug.state['on']}")
    print("\nthe attacker never touched the AC — the automation did, "
          "trusting cloud telemetry (Section V-B's cascade effect)")


if __name__ == "__main__":
    main()
