#!/usr/bin/env python
"""Device hijacking demo: the paper's A4 attacks, step by step.

Recreates the two hijacking stories of Section VI-B:

* device #9 (E-Link Smart camera): A4-1 — one forged Bind replaces the
  victim's binding and, because the camera authenticates with its
  static DevId, the cloud happily relays the attacker's commands to it;
* device #8 (TP-LINK bulb): A4-3 — a forged ``Unbind:DevId`` knocks the
  victim's binding out, then a forged device-initiated Bind takes over.

Both attacks run fully remotely: the attacker never touches the
victim's LAN (the simulation's firewall would refuse).

Run:
    python examples/device_hijack_demo.py
"""

from repro import Deployment, vendor
from repro.attacks import RemoteAttacker


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def hijack_elink() -> None:
    banner("A4-1 on E-Link Smart (IP camera): bind-replacement hijack")
    world = Deployment(vendor("E-Link Smart"), seed=11)
    mallory = RemoteAttacker(world)
    mallory.login()

    print("victim sets up her camera...")
    assert world.victim_full_setup()
    print(f"  shadow: {world.shadow_state()}, bound to {world.bound_user()}")

    print("attacker knows the camera's 6-digit serial (leaked/enumerated)")
    mallory.learn_victim_device_id(world.victim.device.device_id)

    print("attacker sends one forged Bind:(DevId, attacker's UserToken)...")
    accepted, code, response = mallory.send(mallory.forge_bind())
    print(f"  cloud answer: {'accepted' if accepted else code}")
    print(f"  binding now belongs to: {world.bound_user()}")

    print("attacker starts the camera stream remotely...")
    mallory.control_victim_device("stream")
    world.run_heartbeats(2)
    executed = world.victim.device.executed_commands[-1]
    print(f"  victim's camera executed {executed.command!r} "
          f"issued by {executed.issued_by!r}")
    print(f"  camera streaming: {world.victim.device.state['streaming']}")


def hijack_tplink() -> None:
    banner("A4-3 on TP-LINK (smart bulb): unbind-then-bind hijack")
    world = Deployment(vendor("TP-LINK"), seed=11)
    mallory = RemoteAttacker(world)
    mallory.login()

    print("victim sets up her bulb...")
    assert world.victim_full_setup()
    print(f"  shadow: {world.shadow_state()}, bound to {world.bound_user()}")

    mallory.learn_victim_device_id(world.victim.device.device_id)
    print("step 1: forged Unbind:DevId (the reset-style endpoint)...")
    accepted, code, _ = mallory.send(mallory.forge_unbind_type2())
    print(f"  cloud answer: {'accepted' if accepted else code}")
    print(f"  shadow: {world.shadow_state()} (victim disconnected)")

    print("step 2: forged device-initiated Bind with the attacker's account...")
    accepted, code, _ = mallory.send(mallory.forge_bind())
    print(f"  cloud answer: {'accepted' if accepted else code}")
    print(f"  binding now belongs to: {world.bound_user()}")

    print("attacker flips the victim's lights...")
    mallory.control_victim_device("on")
    world.run_heartbeats(2)
    print(f"  bulb is on: {world.victim.device.state['on']}")


def defence_dlink() -> None:
    banner("Why the same forgery fails on D-LINK: post-binding token")
    world = Deployment(vendor("D-LINK"), seed=11)
    mallory = RemoteAttacker(world)
    mallory.login()
    assert world.victim_full_setup()
    mallory.learn_victim_device_id(world.victim.device.device_id)

    accepted, code, _ = mallory.send(mallory.forge_bind())
    print(f"forged Bind in the control state: "
          f"{'accepted' if accepted else f'rejected ({code})'}")
    ok, code = mallory.control_victim_device("on")
    print(f"attacker's control attempt: {'accepted' if ok else f'rejected ({code})'}")
    print("the device never received the attacker's post-binding token, so")
    print("even a successful occupation cannot become a hijack (Section IV-B)")


if __name__ == "__main__":
    hijack_elink()
    hijack_tplink()
    defence_dlink()
