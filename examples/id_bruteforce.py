#!/usr/bin/env python
"""Device-ID inference: search spaces and a live enumeration sweep.

Quantifies the adversary model's first assumption (Section III-A): weak
device IDs can be inferred or enumerated.  Prints the enumerability
table for the schemes the studied vendors use, then runs a live sweep
against a simulated OZWI-style cloud, showing how ID enumeration turns
directly into the scalable binding-DoS of Section V-C.

Run:
    python examples/id_bruteforce.py
"""

from repro import Deployment, vendor
from repro.attacks import RemoteAttacker, enumerate_ids
from repro.identity import (
    MacDeviceId,
    RandomDeviceId,
    SerialDeviceId,
    analyze,
    infer_scheme,
    render_report,
)


def main() -> None:
    schemes = [
        SerialDeviceId(digits=6),      # the Fredi baby-monitor incident
        SerialDeviceId(digits=7),      # the hijacked-camera incident
        MacDeviceId("50:c7:bf"),       # MAC-derived (5 of 10 vendors)
        RandomDeviceId(hex_chars=32),  # the safe alternative
    ]
    print(render_report([analyze(s) for s in schemes]))
    print()

    print("live enumeration sweep against an OZWI-style cloud "
          "(7-digit sequential serials):")
    world = Deployment(vendor("OZWI"), seed=2)
    mallory = RemoteAttacker(world)
    mallory.login()

    # reconnaissance: infer the scheme from the attacker's OWN unit
    own_id = world.attacker_party.device.device_id
    guess = infer_scheme([own_id])
    print(f"  attacker's own serial: {own_id}")
    print(f"  inferred scheme: {guess.detail}")
    print(f"  enumerable: {guess.enumerable}")
    stats = enumerate_ids(mallory, world.id_scheme, max_probes=64)
    print(f"  probed {stats.attempted} candidate IDs "
          f"({stats.virtual_seconds:.3f}s at 3000 req/s)")
    print(f"  registered devices found: {stats.found}")
    for device_id in stats.found:
        owner = world.cloud.bound_user_of(device_id)
        print(f"  {device_id}: now bound to {owner}  <- scalable binding DoS")
    print()
    print("the victim can no longer set up her own camera:")
    print(f"  victim setup succeeds: {world.victim_full_setup()}")


if __name__ == "__main__":
    main()
