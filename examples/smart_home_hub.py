#!/usr/bin/env python
"""Four-party smart home: Zigbee devices behind an IP hub.

The paper's Section VIII asks whether its three-party analysis extends
to hub architectures.  This example answers by construction: the hub is
the "device" of the remote-binding model, so one hijacked hub hands the
attacker every sensor and switch in the house.

Run:
    python examples/smart_home_hub.py
"""

from repro import Deployment
from repro.attacks import RemoteAttacker
from repro.cloud.policy import DeviceAuthMode, VendorDesign
from repro.core.messages import ControlMessage
from repro.hub import ZigbeeAir, ZigbeeContactSensor, ZigbeeSwitch, pair_child


def main() -> None:
    design = VendorDesign(
        name="HubVendor", device_type="zigbee-hub",
        device_auth=DeviceAuthMode.DEV_ID,
        device_auth_known=DeviceAuthMode.DEV_ID,
        firmware_available=True,
        rebind_replaces_existing=True,   # the A4-1 flaw, now on a hub
        id_scheme="serial-number",
    )
    world = Deployment(design, seed=23)
    alice = world.victim

    print("Alice binds her hub and pairs a door sensor + a light switch...")
    assert world.victim_full_setup()
    hub = alice.device
    mesh = ZigbeeAir()
    hub.attach_mesh(mesh)
    door = ZigbeeContactSensor(world.env, mesh, alice.location)
    light = ZigbeeSwitch(world.env, mesh, alice.location)
    assert pair_child(hub, door)
    assert pair_child(hub, light)
    print(f"  paired children: {hub.paired_children()}")

    door.set_open(True)
    door.report()
    light.report()
    world.run_heartbeats(1)
    telemetry = alice.app.query(hub.device_id).payload["telemetry"]
    print(f"  cloud sees: {telemetry['children']}")

    alice.app.control(hub.device_id, "child",
                      {"target": light.short_address, "command": "on"})
    world.run_heartbeats(1)
    print(f"  Alice turns the light on remotely: {light.state['on']}")

    print("\nMallory hijacks the HUB with one forged Bind (A4-1)...")
    mallory = RemoteAttacker(world)
    mallory.login()
    mallory.learn_victim_device_id(hub.device_id)
    accepted, code, _ = mallory.send(mallory.forge_bind())
    print(f"  cloud answer: {'accepted' if accepted else code}")
    print(f"  hub now bound to: {world.bound_user()}")

    mallory.send(ControlMessage(
        user_token=mallory.app.user_token, device_id=hub.device_id,
        command="child",
        arguments={"target": light.short_address, "command": "off"},
    ))
    world.run_heartbeats(2)
    print(f"  Mallory switches Alice's light off: on={light.state['on']}")
    print("\none hub binding = the entire mesh: the three-party attacks")
    print("amplify in the four-party architecture (Section VIII)")


if __name__ == "__main__":
    main()
