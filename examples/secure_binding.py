#!/usr/bin/env python
"""Secure binding: the paper's recommended designs, working and attacked.

Walks the capability-based binding flow (Samsung-SmartThings style,
Figure 4c) that the paper recommends, then runs the full Table III
attack battery against all three secure baselines and prints the
verdicts — including the honest caveat of Section IV-B: ACL binding,
however strong its tokens, still admits binding occupation (A2); only
capability binding closes everything.

Run:
    python examples/secure_binding.py
"""

from repro import Deployment
from repro.secure import SECURE_CAPABILITY, verify_all_baselines


def main() -> None:
    print("capability-based binding, end to end:")
    world = Deployment(SECURE_CAPABILITY, seed=13)
    alice = world.victim

    alice.app.login()
    alice.device.power_on()
    alice.app.provision_wifi(alice.ssid, alice.wifi_passphrase)
    alice.app.local_configure(alice.device)
    print(f"  1. device authenticated:     shadow = {world.shadow_state()}")

    bound = alice.app.bind_device(alice.device)
    print(f"  2. BindToken fetched by app, delivered locally, submitted by device")
    print(f"     binding created: {bound}, bound user = {world.bound_user()}")
    print(f"     device holds the post-binding token: "
          f"{alice.device.post_binding_token is not None}")

    alice.app.control(alice.device.device_id, "on")
    world.run_heartbeats(1)
    print(f"  3. remote control works:     plug on = {alice.device.state['on']}")

    print()
    print("attack battery against the three recommended designs:")
    for verdict in verify_all_baselines(seed=13):
        print()
        print(verdict.render())


if __name__ == "__main__":
    main()
