#!/usr/bin/env python3
"""SLO-instrumentation overhead gate: the calm path must stay free.

The RED/SLO record points added to ``CloudService.handle_packet`` and
``PolicyDecisionPoint.decide`` live strictly behind the precomputed
``observer is not NULL_OBSERVER`` flag, so an uninstrumented run must
pay nothing beyond one boolean test per packet.  This gate proves that
three ways:

1. **Paired timing** — the same calm fleet workload run under
   ``NULL_OBSERVER`` with the stock entry point vs. with the guard
   bypassed entirely (``handle_packet`` patched straight to the
   pre-instrumentation ``_handle_and_record``).  The overhead ratio
   must stay under 2%, with an absolute per-request slack floor so
   scheduler noise on a ~20ms workload cannot fail the build on its
   own: a measured delta below 0.25us/request is noise, not cost.
2. **Structural check** — ``Observer.on_request``/``on_pdp_decide``
   are patched to raise, then an uninstrumented fleet runs end to end:
   if any calm-path code reaches the new hooks, the run explodes.  An
   instrumented control run (hooks restored) must then actually record
   RED series, proving the instrument is live rather than dead.
3. **Kernel-baseline sanity** — the pinned ``BENCH_kernel.json``
   thresholds must exist and its ``after`` latencies must still sit
   inside them, so this gate composes with (not replaces) the kernel
   regression gate.

Usage: python tools/check_slo_overhead.py [--out report.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.cloud.service import CloudService  # noqa: E402
from repro.fleet import FleetDeployment  # noqa: E402
from repro.obs import Observability  # noqa: E402
from repro.obs.observer import Observer  # noqa: E402
from repro.vendors import vendor  # noqa: E402

VENDOR = "OZWI"
HOUSEHOLDS = 16
SECONDS = 300.0
SEED = 7
TRIALS = 8
#: Relative gate: instrumented-but-unobserved vs. guard-bypassed.
MAX_OVERHEAD_RATIO = 0.02
#: Absolute noise floor: deltas under this per request are not signal.
NOISE_FLOOR_US_PER_REQUEST = 0.25

KERNEL_BENCH = ROOT / "benchmarks/output/BENCH_kernel.json"


def _one_run(observer=None):
    """Build + run one calm fleet; returns (wall_seconds, requests)."""
    fleet = FleetDeployment(
        vendor(VENDOR), households=HOUSEHOLDS, seed=SEED, observer=observer
    )
    started = time.perf_counter()
    fleet.setup_all()
    fleet.run(SECONDS)
    wall = time.perf_counter() - started
    return wall, len(fleet.cloud.audit), fleet


def paired_overhead():
    """Best-of-N interleaved A/B: stock guard vs. guard bypassed.

    Both arms get a warmup run, and the A/B order alternates between
    trials so allocator/cache drift cannot systematically favour one
    arm.  Best-of (min) is the standard noise-robust statistic for a
    fixed deterministic workload.
    """
    original = CloudService.handle_packet

    def stock_run():
        return _one_run()

    def bypass_run():
        # Bypass arm: dispatch straight to the pre-instrumentation
        # handler, skipping even the `if self._observed` test.
        CloudService.handle_packet = CloudService._handle_and_record
        try:
            return _one_run()
        finally:
            CloudService.handle_packet = original

    stock, bypassed = [], []
    requests = 0
    stock_run()
    bypass_run()
    for trial in range(TRIALS):
        arms = (
            (stock_run, stock), (bypass_run, bypassed)
        ) if trial % 2 == 0 else (
            (bypass_run, bypassed), (stock_run, stock)
        )
        for run, samples in arms:
            wall, requests, _ = run()
            samples.append(wall)
    best_stock = min(stock)
    best_bypass = min(bypassed)
    ratio = (best_stock - best_bypass) / best_bypass if best_bypass else 0.0
    delta_us = (
        (best_stock - best_bypass) * 1e6 / requests if requests else 0.0
    )
    return {
        "trials": TRIALS,
        "requests_per_run": requests,
        "stock_seconds": round(best_stock, 6),
        "bypassed_seconds": round(best_bypass, 6),
        "overhead_ratio": round(ratio, 6),
        "overhead_us_per_request": round(delta_us, 4),
        "max_overhead_ratio": MAX_OVERHEAD_RATIO,
        "noise_floor_us_per_request": NOISE_FLOOR_US_PER_REQUEST,
        "ok": ratio <= MAX_OVERHEAD_RATIO
        or delta_us <= NOISE_FLOOR_US_PER_REQUEST,
    }


def structural_check():
    """The calm path must never reach the hooks; the hot path must."""

    def boom(*args, **kwargs):
        raise AssertionError(
            "SLO hook fired on the NULL_OBSERVER calm path"
        )

    saved = (Observer.on_request, Observer.on_pdp_decide)
    Observer.on_request = boom
    Observer.on_pdp_decide = boom
    try:
        _one_run()  # any hook call raises -> the gate fails loudly
        never_fired = True
    finally:
        Observer.on_request, Observer.on_pdp_decide = saved
    obs = Observability(trace_messages=False)
    _one_run(observer=obs)
    endpoint = obs.red.total_requests()
    pdp = obs.pdp_red.total_requests()
    return {
        "calm_path_hooks_fired": not never_fired,
        "observed_endpoint_requests": endpoint,
        "observed_pdp_decisions": pdp,
        "ok": never_fired and endpoint > 0 and pdp > 0,
    }


def kernel_baseline_check():
    """The pinned kernel artifact must exist and stay self-consistent."""
    if not KERNEL_BENCH.exists():
        return {"ok": False, "error": f"{KERNEL_BENCH} missing"}
    data = json.loads(KERNEL_BENCH.read_text(encoding="utf-8"))
    after = data.get("after", {})
    thresholds = data.get("thresholds", {})
    rows = {}
    ok = bool(after) and bool(thresholds)
    for key, bound_key in (
        ("handle_p50_us", "max_handle_p50_us"),
        ("handle_p99_us", "max_handle_p99_us"),
    ):
        measured = after.get(key)
        bound = thresholds.get(bound_key)
        within = (
            measured is not None and bound is not None and measured <= bound
        )
        rows[key] = {"measured": measured, "bound": bound, "ok": within}
        ok = ok and within
    return {"ok": ok, "latency": rows}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="write the full JSON report here",
    )
    args = parser.parse_args(argv)

    report = {
        "config": {
            "vendor": VENDOR,
            "households": HOUSEHOLDS,
            "seconds": SECONDS,
            "seed": SEED,
        },
        "paired": paired_overhead(),
        "structural": structural_check(),
        "kernel_baseline": kernel_baseline_check(),
    }
    paired = report["paired"]
    print(
        f"  {'ok  ' if paired['ok'] else 'FAIL'} paired overhead: "
        f"{paired['overhead_ratio']:+.2%} "
        f"({paired['overhead_us_per_request']:+.3f}us/request over "
        f"{paired['requests_per_run']} requests, best of {TRIALS}; "
        f"gate <= {MAX_OVERHEAD_RATIO:.0%} or "
        f"<= {NOISE_FLOOR_US_PER_REQUEST}us/request)"
    )
    structural = report["structural"]
    print(
        f"  {'ok  ' if structural['ok'] else 'FAIL'} structural: "
        f"calm path never reached the hooks; observed run recorded "
        f"{structural['observed_endpoint_requests']} endpoint + "
        f"{structural['observed_pdp_decisions']} pdp series entries"
    )
    kernel = report["kernel_baseline"]
    print(
        f"  {'ok  ' if kernel['ok'] else 'FAIL'} kernel baseline: "
        + (kernel.get("error")
           or ", ".join(
               f"{k}={row['measured']} (<= {row['bound']})"
               for k, row in kernel["latency"].items()
           ))
    )
    failed = [k for k in ("paired", "structural", "kernel_baseline")
              if not report[k]["ok"]]
    report["ok"] = not failed
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"  report written to {args.out}")
    if failed:
        print(f"\nFAIL: slo overhead gate: {', '.join(failed)}")
        return 1
    print("\nslo overhead gate: calm path clean, instruments live")
    return 0


if __name__ == "__main__":
    sys.exit(main())
