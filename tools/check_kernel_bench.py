#!/usr/bin/env python3
"""Kernel-bench regression gate: fail CI when BENCH_kernel.json regresses.

Reads the artifact ``benchmarks/bench_sim_kernel.py`` just wrote and
compares the freshly measured ``after`` numbers against the pinned
``thresholds`` section (baseline / ``regression_factor`` for throughput,
baseline * factor for latency).  A >2x regression on the event loop,
the packet path or the cloud handle percentiles — or a decision cache
that stopped hitting — fails the build.

Usage: python tools/check_kernel_bench.py [path/to/BENCH_kernel.json]
"""

from __future__ import annotations

import json
import pathlib
import sys

DEFAULT = pathlib.Path(__file__).resolve().parent.parent / (
    "benchmarks/output/BENCH_kernel.json"
)

#: (after-key, threshold-key, direction); "min" = measured must be >=,
#: "max" = measured must be <=.
GATES = [
    ("events_per_sec", "min_events_per_sec", "min"),
    ("timer_events_per_sec", "min_timer_events_per_sec", "min"),
    ("packets_per_sec", "min_packets_per_sec", "min"),
    ("handle_p50_us", "max_handle_p50_us", "max"),
    ("handle_p99_us", "max_handle_p99_us", "max"),
]


def check(path: pathlib.Path) -> int:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"FAIL: {path} missing — run benchmarks/bench_sim_kernel.py first")
        return 1
    after = data.get("after", {})
    thresholds = data.get("thresholds", {})
    if not after or not thresholds:
        print(f"FAIL: {path} has no after/thresholds sections")
        return 1

    failures = []
    for after_key, threshold_key, direction in GATES:
        measured = after.get(after_key)
        bound = thresholds.get(threshold_key)
        if measured is None or bound is None:
            failures.append(f"{after_key}: not measured (after/threshold missing)")
            continue
        ok = measured >= bound if direction == "min" else measured <= bound
        mark = "ok  " if ok else "FAIL"
        op = ">=" if direction == "min" else "<="
        print(f"  {mark} {after_key} = {measured} ({op} {bound})")
        if not ok:
            failures.append(f"{after_key} = {measured}, bound {op} {bound}")

    floor = thresholds.get("min_decision_cache_hit_rate", 0.0)
    cache = data.get("decision_cache", {})
    if not cache:
        failures.append("decision_cache: no campaigns measured")
    for name, stats in sorted(cache.items()):
        rate = stats.get("hit_rate", 0.0)
        ok = rate >= floor
        print(f"  {'ok  ' if ok else 'FAIL'} decision_cache.{name}.hit_rate = {rate} (>= {floor})")
        if not ok:
            failures.append(f"decision_cache.{name}.hit_rate = {rate} < {floor}")

    if failures:
        print(f"\nFAIL: {len(failures)} kernel-bench regression(s):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nkernel-bench gate: all measurements within thresholds")
    return 0


if __name__ == "__main__":
    target = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT
    sys.exit(check(target))
