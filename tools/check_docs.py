"""Docs lint: every link resolves, every named CLI command exists.

Two checks over ``README.md`` and ``docs/*.md``:

* every *relative* markdown link (``[text](path)``) must point at a
  file or directory that exists in the repository (anchors and
  ``http(s)``/``mailto`` links are skipped; a ``path#anchor`` link is
  checked for the file part);
* every ``repro`` CLI subcommand the docs mention — ``python -m repro
  <sub>`` or inline ``repro <sub>`` code spans — must be a real
  subcommand of :func:`repro.cli.build_parser`, so the docs can never
  advertise a command the CLI does not have.

Run directly (``python tools/check_docs.py``) or via the tier-1 suite
(``tests/test_docs.py``); CI runs both.  Exit code 0 = clean.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: [text](target) — excluding images; target captured up to ) or space
_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")

#: ``python -m repro <sub>`` in any code block or prose
_MODULE_CMD = re.compile(r"python(?:3)?\s+-m\s+repro\s+([a-z][a-z0-9-]*)")

#: inline code spans like ``repro campaign --pool`` or `repro detect`
_INLINE_CMD = re.compile(r"`+\s*repro\s+([a-z][a-z0-9-]*)")


def doc_files() -> List[pathlib.Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def cli_subcommands() -> set:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.cli import build_parser

    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return set(action.choices)
    raise AssertionError("repro.cli.build_parser grew no subparsers?")


def _display(path: pathlib.Path) -> str:
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def check_links(path: pathlib.Path) -> List[str]:
    errors = []
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        for target in _LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"{_display(path)}:{number}: broken link "
                    f"-> {target}"
                )
    return errors


def check_cli_mentions(path: pathlib.Path, subcommands: set) -> List[str]:
    errors = []
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        mentioned = set(_MODULE_CMD.findall(line)) | set(_INLINE_CMD.findall(line))
        for name in mentioned - subcommands:
            errors.append(
                f"{_display(path)}:{number}: docs name a "
                f"'repro {name}' subcommand the CLI does not have "
                f"(known: {', '.join(sorted(subcommands))})"
            )
    return errors


def run_checks() -> List[str]:
    subcommands = cli_subcommands()
    errors: List[str] = []
    for path in doc_files():
        errors.extend(check_links(path))
        errors.extend(check_cli_mentions(path, subcommands))
    return errors


def main() -> int:
    errors = run_checks()
    for error in errors:
        print(error, file=sys.stderr)
    checked = ", ".join(_display(p) for p in doc_files())
    if errors:
        print(f"{len(errors)} docs problem(s) in: {checked}", file=sys.stderr)
        return 1
    print(f"docs clean: {checked}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
