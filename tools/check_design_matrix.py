#!/usr/bin/env python3
"""Design-matrix regression gate: fail CI when a Table-III cell changes.

Replays the full A1–A4 attack battery over every studied vendor *and*
every secure baseline (13 designs) and compares both the per-attack
outcomes and the condensed Table III cells against the pinned fixture
``tools/design_matrix_fixture.json``.  Any drift — an attack that starts
succeeding, stops succeeding, or changes its reported cell — fails the
build; the authorization refactor must never move a matrix cell.

The gate also replays every fuzz-corpus witness sequence over all 13
designs and compares the oracle finding keys against
``tools/fuzz_matrix_fixture.json`` — so a policy regression anywhere in
the matrix that fuzzing has *ever* caught (not only on the design the
witness was minimized on) fails the build too.

Usage:
    PYTHONPATH=src python tools/check_design_matrix.py            # gate
    PYTHONPATH=src python tools/check_design_matrix.py --update   # re-pin
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.analysis.evaluator import VendorEvaluation  # noqa: E402
from repro.attacks.runner import run_all_attacks  # noqa: E402
from repro.fuzz.corpus import replay_matrix  # noqa: E402
from repro.secure.designs import SECURE_BASELINES  # noqa: E402
from repro.vendors.profiles import STUDIED_VENDORS  # noqa: E402

TOOLS = pathlib.Path(__file__).resolve().parent
FIXTURE = TOOLS / "design_matrix_fixture.json"
FUZZ_FIXTURE = TOOLS / "fuzz_matrix_fixture.json"
CORPUS = TOOLS.parent / "tests" / "fixtures" / "fuzz_corpus"

#: Battery seed pinned into the fixture (outcomes must be seed-stable,
#: but the gate replays the exact recorded configuration).
SEED = 0


def compute_matrix(seed: int = SEED) -> dict:
    """Attack outcomes + Table III cells for all 13 designs."""
    designs = {}
    for design in list(STUDIED_VENDORS) + list(SECURE_BASELINES):
        reports = run_all_attacks(design, seed=seed)
        evaluation = VendorEvaluation(design, reports)
        designs[design.name] = {
            "cells": evaluation.cells(),
            "outcomes": {
                attack_id: report.outcome.value
                for attack_id, report in reports.items()
            },
        }
    return {"seed": seed, "designs": designs}


def compute_fuzz_matrix(seed: int = SEED) -> dict:
    """Every corpus witness sequence replayed over all 13 designs."""
    return {"seed": seed, "witnesses": replay_matrix(CORPUS, seed=seed)}


def check(path: pathlib.Path) -> int:
    try:
        pinned = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"FAIL: {path} missing — run with --update to pin the fixture")
        return 1
    computed = compute_matrix(pinned.get("seed", SEED))

    failures = []
    pinned_designs = pinned.get("designs", {})
    for name in sorted(set(pinned_designs) | set(computed["designs"])):
        want = pinned_designs.get(name)
        got = computed["designs"].get(name)
        if want is None:
            failures.append(f"{name}: not in fixture (re-pin with --update)")
            continue
        if got is None:
            failures.append(f"{name}: design disappeared from the catalog")
            continue
        drift = []
        for section in ("cells", "outcomes"):
            for key in sorted(set(want[section]) | set(got[section])):
                pinned_value = want[section].get(key)
                value = got[section].get(key)
                if value != pinned_value:
                    drift.append(f"{section}.{key}: {pinned_value!r} -> {value!r}")
        if drift:
            failures.append(f"{name}: " + "; ".join(drift))
            print(f"  FAIL {name}: " + "; ".join(drift))
        else:
            print(f"  ok   {name}")

    if failures:
        print(f"\nFAIL: {len(failures)} design(s) drifted from the pinned matrix:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\ndesign-matrix gate: all {len(pinned_designs)} designs match the fixture")
    return 0


def check_fuzz(path: pathlib.Path) -> int:
    try:
        pinned = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"FAIL: {path} missing — run with --update to pin the fixture")
        return 1
    computed = compute_fuzz_matrix(pinned.get("seed", SEED))

    failures = []
    pinned_rows = pinned.get("witnesses", {})
    computed_rows = computed["witnesses"]
    for name in sorted(set(pinned_rows) | set(computed_rows)):
        want = pinned_rows.get(name)
        got = computed_rows.get(name)
        if want is None:
            failures.append(f"{name}: new witness not pinned (--update)")
            continue
        if got is None:
            failures.append(f"{name}: witness missing from the corpus")
            continue
        drift = []
        for design in sorted(set(want) | set(got)):
            if want.get(design) != got.get(design):
                drift.append(
                    f"{design}: {want.get(design)!r} -> {got.get(design)!r}"
                )
        if drift:
            failures.append(f"{name}: " + "; ".join(drift))
            print(f"  FAIL {name}: " + "; ".join(drift))
        else:
            print(f"  ok   {name}")

    if failures:
        print(f"\nFAIL: {len(failures)} fuzz-matrix row(s) drifted:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"\nfuzz-matrix gate: all {len(pinned_rows)} witness rows match the fixture"
    )
    return 0


def update(path: pathlib.Path, fuzz_path: pathlib.Path) -> int:
    matrix = compute_matrix()
    path.write_text(json.dumps(matrix, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"pinned {len(matrix['designs'])} designs to {path}")
    fuzz = compute_fuzz_matrix()
    fuzz_path.write_text(json.dumps(fuzz, indent=2, sort_keys=True) + "\n",
                         encoding="utf-8")
    print(f"pinned {len(fuzz['witnesses'])} witness rows to {fuzz_path}")
    return 0


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fixture", nargs="?", type=pathlib.Path, default=FIXTURE)
    parser.add_argument("--fuzz-fixture", type=pathlib.Path,
                        default=FUZZ_FIXTURE)
    parser.add_argument("--update", action="store_true",
                        help="re-pin the fixtures from the current tree")
    options = parser.parse_args(argv)
    if options.update:
        return update(options.fixture, options.fuzz_fixture)
    status = check(options.fixture)
    return status or check_fuzz(options.fuzz_fixture)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
